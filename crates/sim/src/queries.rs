//! Query-workload evaluation.
//!
//! The paper *estimates* query performance from directory metadata ("the
//! total number of chunks in the index [divided] by the number of words
//! with long lists", Figure 10) because "measuring query performance for a
//! policy is difficult since the typical workload depends on the
//! information retrieval model" (§5.2.1). This module closes that gap by
//! **executing** query workloads for both models it describes:
//!
//! * **vector-space IRM** — "a query may be derived from a document;
//!   consequently the query often contains many words (more than 100) and
//!   the words tend to be frequently appearing words". We sample whole
//!   synthetic documents (fresh RNG stream, same distribution) and use
//!   their word sets as queries.
//! * **boolean IRM** — "a query contains a few words (less than 10) and
//!   the words tend to be the less frequently appearing words since
//!   frequently appearing words do not discriminate strongly". We sample
//!   2–8 words biased away from the head of the frequency distribution.
//!
//! Each query's reads are traced and timed on the disk model, one batch
//! per query (queries are independent random accesses; coalescing across
//! queries would be unrealistic).

use crate::params::SimParams;
use invidx_core::index::DualIndex;
use invidx_core::types::{Result, WordId};
use invidx_corpus::doc::{CorpusGenerator, CorpusParams};
use invidx_disk::exercise;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A set of queries, each a list of distinct word ids.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// The retrieval model the workload emulates.
    pub model: RetrievalModel,
    /// The queries.
    pub queries: Vec<Vec<WordId>>,
}

/// The two retrieval models of the paper's §1/§5.2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetrievalModel {
    /// Many frequent words per query (document-derived).
    VectorSpace,
    /// Few, infrequent words per query.
    Boolean,
}

impl QueryWorkload {
    /// Build a vector-space workload: each query is the word set of a
    /// fresh synthetic document drawn from the corpus distribution.
    pub fn vector_space(corpus: &CorpusParams, n_queries: usize, seed: u64) -> Self {
        let params = CorpusParams {
            days: 1,
            docs_per_weekday: n_queries,
            weekly_profile: [1.0; 7],
            interrupted_day: None,
            min_doc_chars: 0,
            seed,
            ..corpus.clone()
        };
        let mut generator = CorpusGenerator::new(params);
        let day = generator.next_day().expect("one day");
        let queries = day
            .docs
            .into_iter()
            .take(n_queries)
            .map(|d| d.word_ranks.into_iter().map(WordId).collect())
            .collect();
        Self { model: RetrievalModel::VectorSpace, queries }
    }

    /// Build a boolean workload: `n_queries` queries of 2–8 words, biased
    /// toward *infrequent* words — "the words tend to be the less
    /// frequently appearing words since frequently appearing words do not
    /// discriminate strongly between documents". Ranks are drawn
    /// log-uniformly between 50 and the vocabulary size, putting most mass
    /// deep in the tail (bucket-resident or rare words) while still
    /// occasionally touching mid-frequency words.
    pub fn boolean(corpus: &CorpusParams, n_queries: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (lo, hi) = (50.0f64, corpus.vocab_ranks as f64);
        let mut queries = Vec::with_capacity(n_queries);
        for _ in 0..n_queries {
            let n = rng.random_range(2..=8);
            let mut words: Vec<WordId> = Vec::with_capacity(n);
            while words.len() < n {
                let u: f64 = rng.random();
                let rank = (lo * (hi / lo).powf(u)).round() as u64;
                if !words.contains(&WordId(rank)) {
                    words.push(WordId(rank));
                }
            }
            queries.push(words);
        }
        Self { model: RetrievalModel::Boolean, queries }
    }

    /// Total words across queries.
    pub fn total_words(&self) -> usize {
        self.queries.iter().map(Vec::len).sum()
    }
}

/// Measured cost of executing a workload against an index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryCost {
    /// The retrieval model.
    pub model: RetrievalModel,
    /// Queries executed.
    pub queries: u64,
    /// Query words that had any postings.
    pub hit_words: u64,
    /// Query words found in buckets / long lists.
    pub short_words: u64,
    /// Query words found in long lists.
    pub long_words: u64,
    /// Read operations issued.
    pub read_ops: u64,
    /// Blocks read.
    pub read_blocks: u64,
    /// Postings retrieved.
    pub postings: u64,
    /// Modeled seconds on the disk model (each query an independent
    /// batch).
    pub modeled_seconds: f64,
}

impl QueryCost {
    /// Average read operations per query.
    pub fn ops_per_query(&self) -> f64 {
        self.read_ops as f64 / self.queries.max(1) as f64
    }

    /// Average modeled milliseconds per query.
    pub fn ms_per_query(&self) -> f64 {
        1e3 * self.modeled_seconds / self.queries.max(1) as f64
    }
}

/// Execute a workload against a live index, tracing and timing all reads.
///
/// Bucket reads are charged one operation per distinct bucket touched per
/// query (buckets are on disk; the paper assumes they are memory-resident
/// *during updates*, but a cold query must fetch the bucket region for the
/// word). Long-list reads come straight from the traced chunk reads.
pub fn execute(
    index: &DualIndex,
    params: &SimParams,
    workload: &QueryWorkload,
) -> Result<QueryCost> {
    let mut cost = QueryCost {
        model: workload.model,
        queries: workload.queries.len() as u64,
        hit_words: 0,
        short_words: 0,
        long_words: 0,
        read_ops: 0,
        read_blocks: 0,
        postings: 0,
        modeled_seconds: 0.0,
    };
    index.array().start_trace();
    for query in &workload.queries {
        let mut bucket_reads: Vec<(usize, invidx_core::WordId)> = Vec::new();
        for &word in query {
            match index.location(word) {
                invidx_core::WordLocation::Long => {
                    cost.long_words += 1;
                    cost.hit_words += 1;
                    cost.postings += index.postings(word)?.len() as u64;
                }
                invidx_core::WordLocation::Short => {
                    cost.short_words += 1;
                    cost.hit_words += 1;
                    cost.postings += index.postings(word)?.len() as u64;
                    let b = index.buckets().bucket_of(word);
                    if !bucket_reads.iter().any(|&(seen, _)| seen == b) {
                        bucket_reads.push((b, word));
                    }
                }
                _ => {}
            }
        }
        // Charge one bucket-region read per distinct bucket touched: the
        // bucket array is striped across disks; bucket i sits at a fixed
        // offset in its disk's stripe. With a block cache configured the
        // charge is suppressed when the bucket's blocks are resident.
        for (_, word) in bucket_reads {
            index.charge_bucket_read(word)?;
        }
        index.array().end_batch();
    }
    let trace = index.array().take_trace();
    cost.read_ops = trace.ops.len() as u64;
    cost.read_blocks = trace.ops.iter().map(|op| op.blocks).sum();
    let timing = exercise(&trace, &params.exercise_config());
    cost.modeled_seconds = timing.total_seconds();
    Ok(cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{build_dual_index, Experiment};
    use invidx_core::policy::Policy;

    #[test]
    fn workloads_have_expected_shapes() {
        let corpus = CorpusParams::tiny();
        let v = QueryWorkload::vector_space(&corpus, 20, 1);
        assert_eq!(v.queries.len(), 20);
        let avg = v.total_words() as f64 / 20.0;
        assert!(avg > 20.0, "vector queries should be long, got {avg}");
        let b = QueryWorkload::boolean(&corpus, 20, 1);
        assert_eq!(b.queries.len(), 20);
        for q in &b.queries {
            assert!((2..=8).contains(&q.len()));
            assert!(q.iter().all(|w| w.0 >= 50));
        }
    }

    #[test]
    fn whole_style_beats_update_optimized_on_queries() {
        let params = SimParams::tiny();
        let exp = Experiment::prepare(params.clone()).unwrap();
        let workload = QueryWorkload::vector_space(&params.corpus, 30, 99);
        let run = |policy| {
            let (index, _) = build_dual_index(&params, policy, &exp.batches).unwrap();
            index.array().take_trace(); // drop the build trace
            execute(&index, &params, &workload).unwrap()
        };
        let whole = run(Policy::query_optimized());
        let new0 = run(Policy::update_optimized());
        assert_eq!(whole.postings, new0.postings, "same answers regardless of policy");
        assert!(
            whole.read_ops < new0.read_ops,
            "whole {} ops vs new0 {} ops",
            whole.read_ops,
            new0.read_ops
        );
        assert!(whole.modeled_seconds < new0.modeled_seconds);
        assert!(whole.ops_per_query() > 0.0);
        assert!(whole.ms_per_query() > 0.0);
    }

    #[test]
    fn boolean_queries_touch_more_buckets_than_long_lists() {
        let params = SimParams::tiny();
        let exp = Experiment::prepare(params.clone()).unwrap();
        let (index, _) = build_dual_index(&params, Policy::balanced(), &exp.batches).unwrap();
        index.array().take_trace();
        let boolean = execute(&index, &params, &QueryWorkload::boolean(&params.corpus, 50, 5))
            .unwrap();
        // "We would expect many query words to reside in buckets for this
        // model" — infrequent words are mostly short.
        assert!(
            boolean.short_words > boolean.long_words,
            "short {} vs long {}",
            boolean.short_words,
            boolean.long_words
        );
    }
}
