//! # invidx-sim — the paper's experiment pipeline
//!
//! Figure 3 of the paper: `News → Invert Index → Compute Buckets →
//! Compute Disks → Exercise Disks → Statistics`. Each stage is decoupled
//! from the next by an explicit data format (batch updates, long-update
//! traces, I/O traces), "which permits varying parameters of a process to
//! study the effects on the corresponding data transformation" (§4.5).
//!
//! * [`params`] — Table 4 experimental parameters;
//! * [`buckets`] — the compute-buckets process + Figure 1/7 statistics;
//! * [`disks`] — the compute-disks process + Figure 8/9/10 metrics;
//! * [`experiment`] — orchestration (bucket stage runs once; policies are
//!   evaluated against the shared long-update trace) and the integrated
//!   [`invidx_core::DualIndex`] runner used for cross-validation;
//! * [`report`] — figure/table rendering (TSV + aligned text).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod buckets;
pub mod disks;
pub mod experiment;
pub mod params;
pub mod queries;
pub mod report;

pub use buckets::{animate_bucket, BatchCategories, BucketPipeline, BucketSample, BucketStageOutput};
pub use disks::{compute_disks, BatchDiskStats, DiskStage, DiskStageOutput};
pub use experiment::{build_dual_index, run_dual_index, Experiment, PolicyRun};
pub use queries::{execute as execute_queries, QueryCost, QueryWorkload, RetrievalModel};
pub use params::SimParams;
pub use report::{write_artifact, Figure, Series, TextTable};
