//! Result reporting: series and tables for the figure/table binaries.
//!
//! Figures are emitted as TSV series (x, then one column per curve) so the
//! shapes can be eyeballed or gnuplotted; tables render as aligned text in
//! the layout the paper uses.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One named curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (the paper uses policy labels like `"new z"`).
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build from y-values with x = 1..=n (the "index after update" axis).
    pub fn from_updates(name: impl Into<String>, ys: impl IntoIterator<Item = f64>) -> Self {
        Self {
            name: name.into(),
            points: ys.into_iter().enumerate().map(|(i, y)| ((i + 1) as f64, y)).collect(),
        }
    }
}

/// A figure: several curves over a shared x-axis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier, e.g. `"figure08"`.
    pub id: String,
    /// Axis/metric description.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as TSV: a header row, then one row per distinct x, one
    /// column per series (empty cell where a series lacks the x).
    pub fn to_tsv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        let mut out = String::new();
        let _ = write!(out, "# {}: {}\n# x = {}, y = {}\n", self.id, self.title, self.x_label, self.y_label);
        out.push_str(&self.x_label.replace(['\t', '\n'], " "));
        for s in &self.series {
            out.push('\t');
            out.push_str(&s.name.replace(['\t', '\n'], " "));
        }
        out.push('\n');
        for &x in &xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.points.iter().find(|&&(px, _)| px == x) {
                    Some(&(_, y)) => {
                        let _ = write!(out, "\t{y:.6}");
                    }
                    None => out.push('\t'),
                }
            }
            out.push('\n');
        }
        out
    }

    /// A compact sparkline-ish summary for terminals: per series, the
    /// first, min, max, and last y values.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        for s in &self.series {
            let ys: Vec<f64> = s.points.iter().map(|&(_, y)| y).collect();
            if ys.is_empty() {
                let _ = writeln!(out, "  {:24} (empty)", s.name);
                continue;
            }
            let min = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let max = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let _ = writeln!(
                out,
                "  {:24} first {:>12.3}  min {:>12.3}  max {:>12.3}  last {:>12.3}",
                s.name,
                ys[0],
                min,
                max,
                ys[ys.len() - 1]
            );
        }
        out
    }
}

/// A text table in the paper's style.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextTable {
    /// Identifier, e.g. `"table5"`.
    pub id: String,
    /// Caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:<width$}", c, width = widths[i]);
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as TSV.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// Write a result artifact into `results/` under the repository root (or
/// the given directory), returning the path written.
pub fn write_artifact(dir: &std::path::Path, name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_from_updates_is_one_based() {
        let s = Series::from_updates("a", [1.0, 2.0]);
        assert_eq!(s.points, vec![(1.0, 1.0), (2.0, 2.0)]);
    }

    #[test]
    fn figure_tsv_aligns_series() {
        let f = Figure {
            id: "fig".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series { name: "a".into(), points: vec![(1.0, 10.0), (2.0, 20.0)] },
                Series { name: "b".into(), points: vec![(2.0, 5.0)] },
            ],
        };
        let tsv = f.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[2], "x\ta\tb");
        assert_eq!(lines[3], "1\t10.000000\t");
        assert_eq!(lines[4], "2\t20.000000\t5.000000");
        assert!(f.summary().contains("fig"));
    }

    #[test]
    fn write_artifact_creates_file() {
        let dir = std::env::temp_dir().join(format!("invidx-report-{}", std::process::id()));
        let path = write_artifact(&dir, "probe.tsv", "a\tb\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\tb\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summary_handles_empty_series() {
        let f = Figure {
            id: "x".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series { name: "void".into(), points: vec![] }],
        };
        assert!(f.summary().contains("(empty)"));
        // TSV with no points has only headers.
        assert_eq!(f.to_tsv().lines().count(), 3);
    }

    #[test]
    fn table_renders_aligned() {
        let t = TextTable {
            id: "t1".into(),
            title: "demo".into(),
            headers: vec!["Allocation".into(), "k".into(), "Read".into()],
            rows: vec![
                vec!["constant".into(), "700".into(), "1.86".into()],
                vec!["proportional".into(), "1.2".into(), "1.21".into()],
            ],
        };
        let text = t.render();
        assert!(text.contains("Allocation    k    Read"));
        let tsv = t.to_tsv();
        assert_eq!(tsv.lines().count(), 3);
    }
}
