//! Experiment orchestration: the paper's Figure 3 pipeline, end to end.
//!
//! ```text
//! News -> Invert Index -> Compute Buckets -> Compute Disks -> Exercise Disks
//!            batches        long updates       I/O traces       timings
//! ```
//!
//! "One of the most important [advantages] is the decoupling of each
//! process from the subsequent process, which permits varying parameters of
//! a process to study the effects on the corresponding data
//! transformation" — [`Experiment`] runs the corpus and bucket stages
//! *once* and then evaluates any number of policies against the cached
//! long-update trace, exactly as the paper's experimental design intends.
//!
//! [`run_dual_index`] runs the same workload through the real
//! [`invidx_core::DualIndex`] instead of the staged pipeline; integration
//! tests assert the two produce identical I/O traces.

use crate::buckets::{BucketPipeline, BucketStageOutput};
use crate::disks::{compute_disks, DiskStageOutput};
use crate::params::SimParams;
use invidx_core::index::{BatchReport, DualIndex};
use invidx_core::policy::Policy;
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, Result, WordId};
use invidx_corpus::{generate_batches, BatchUpdate, CorpusStats};
use invidx_disk::{exercise, sparse_array, ExerciseResult, IoTrace};
use std::collections::HashMap;

/// One policy's complete measurements.
#[derive(Debug)]
pub struct PolicyRun {
    /// The policy evaluated.
    pub policy: Policy,
    /// Compute-disks output (trace + per-batch metrics).
    pub disks: DiskStageOutput,
    /// Exercise-disks output (timings).
    pub exercise: ExerciseResult,
}

/// A prepared experiment: corpus inverted, buckets computed.
pub struct Experiment {
    /// Parameters in force.
    pub params: SimParams,
    /// The inverted batches (the "invert index" stage output).
    pub batches: Vec<BatchUpdate>,
    /// Table 1 statistics of the generated corpus.
    pub corpus_stats: CorpusStats,
    /// The compute-buckets stage output (shared across policies).
    pub buckets: BucketStageOutput,
}

impl Experiment {
    /// Generate the corpus and run the bucket stage.
    pub fn prepare(params: SimParams) -> Result<Self> {
        let (batches, corpus_stats) = {
            let _span = invidx_obs::span("invert_index");
            generate_batches(params.corpus.clone())
        };
        invidx_obs::event!("stage_invert", {
            "batches": batches.len(),
            "documents": corpus_stats.documents,
            "postings": corpus_stats.total_postings,
        });
        let buckets = {
            let _span = invidx_obs::span("compute_buckets");
            BucketPipeline::new(params.buckets, params.bucket_size)?.run(&batches)?
        };
        invidx_obs::event!("stage_buckets", {
            "long_updates": buckets.total_updates(),
        });
        Ok(Self { params, batches, corpus_stats, buckets })
    }

    /// Run compute-disks + exercise-disks for one policy.
    pub fn run_policy(&self, policy: Policy) -> Result<PolicyRun> {
        let disks = {
            let _span = invidx_obs::span("compute_disks");
            compute_disks(&self.params, policy, &self.buckets.long_updates)?
        };
        let exercise = {
            let _span = invidx_obs::span("exercise_disks");
            exercise(&disks.trace, &self.params.exercise_config())
        };
        invidx_obs::event!("policy_run", {
            "policy": policy.to_string(),
            "trace_ops": disks.trace.count(|_| true),
            "total_seconds": exercise.total_seconds(),
        });
        Ok(PolicyRun { policy, disks, exercise })
    }

    /// Run several policies, skipping (and reporting) any that exhaust the
    /// configured disks — the paper's "fill 0 is not shown since our disks
    /// were not large enough" case.
    pub fn run_policies(&self, policies: &[Policy]) -> Vec<(Policy, Result<PolicyRun>)> {
        policies.iter().map(|&p| (p, self.run_policy(p))).collect()
    }
}

/// Build a real [`DualIndex`] from batch updates (synthesizing monotone
/// document ids per word), returning the live index and its per-batch
/// reports. The array has tracing enabled; take or inspect the trace via
/// [`DualIndex::array`] (trace control takes `&self`).
pub fn build_dual_index(
    params: &SimParams,
    policy: Policy,
    batches: &[BatchUpdate],
) -> Result<(DualIndex, Vec<BatchReport>)> {
    let array = sparse_array(params.disks, params.blocks_per_disk, params.block_size);
    array.start_trace();
    let mut index = DualIndex::create(array, params.index_config(policy))?;
    let mut counters: HashMap<WordId, u32> = HashMap::new();
    let mut reports = Vec::with_capacity(batches.len());
    for batch in batches {
        for &(w, count) in &batch.pairs {
            let word = WordId(w);
            let c = counters.entry(word).or_insert(0);
            let list = PostingList::from_sorted((*c..*c + count).map(DocId).collect());
            *c += count;
            index.insert_list(word, &list)?;
        }
        reports.push(index.flush_batch()?);
    }
    Ok((index, reports))
}

/// Run the same workload through the real [`DualIndex`] (single-process,
/// no staging) and return its per-batch reports and I/O trace.
pub fn run_dual_index(
    params: &SimParams,
    policy: Policy,
    batches: &[BatchUpdate],
) -> Result<(Vec<BatchReport>, IoTrace)> {
    let (index, reports) = build_dual_index(params, policy, batches)?;
    Ok((reports, index.array().take_trace()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_and_dual_index_traces_are_identical() {
        // The staged pipeline (buckets -> disks) must produce exactly the
        // I/O trace the integrated index produces: same policies, same
        // allocation sequence, same operation order.
        let params = SimParams::tiny();
        let exp = Experiment::prepare(params.clone()).unwrap();
        for policy in [Policy::update_optimized(), Policy::query_optimized(), Policy::balanced()]
        {
            let staged = exp.run_policy(policy).unwrap();
            let (_, integrated) = run_dual_index(&params, policy, &exp.batches).unwrap();
            assert_eq!(
                staged.disks.trace, integrated,
                "trace divergence under policy {policy}"
            );
        }
    }

    #[test]
    fn dual_index_reports_match_bucket_stage_categories() {
        let params = SimParams::tiny();
        let exp = Experiment::prepare(params.clone()).unwrap();
        let (reports, _) = run_dual_index(&params, Policy::balanced(), &exp.batches).unwrap();
        assert_eq!(reports.len(), exp.buckets.categories.len());
        for (r, c) in reports.iter().zip(&exp.buckets.categories) {
            assert_eq!(r.new_words, c.new_words);
            assert_eq!(r.bucket_words, c.bucket_words);
            assert_eq!(r.long_words, c.long_words);
            assert_eq!(r.evictions, c.evictions);
        }
    }

    #[test]
    fn exercise_times_are_positive_and_cumulative() {
        let params = SimParams::tiny();
        let exp = Experiment::prepare(params.clone()).unwrap();
        let run = exp.run_policy(Policy::balanced()).unwrap();
        assert_eq!(run.exercise.batch_seconds.len(), exp.batches.len());
        assert!(run.exercise.total_seconds() > 0.0);
        for w in run.exercise.cumulative_seconds.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
