//! The "compute buckets" process (paper §4.3).
//!
//! "Takes the sequence of batch updates as inputs, runs the bucket
//! algorithm described in Section 2 on the sequence (we use a modular
//! arithmetic hash function for h(w)), and generates a single trace file of
//! updates to long lists. Each update in the file indicates the word
//! involved and the number of postings to be added to the corresponding
//! long list on disk. (Note that the postings for an update can come from
//! the new postings in a batch or from previous postings in a bucket.)"
//!
//! Also produced here: the per-update word-category fractions of Figure 7
//! (new / bucket / long) and the Figure 1 single-bucket animation.

use invidx_core::bucket::BucketStore;
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, Result, WordId};
use invidx_corpus::BatchUpdate;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-batch word-category statistics (Figure 7's raw data).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BatchCategories {
    /// Word-occurrence pairs in the update.
    pub words: u64,
    /// Postings in the update.
    pub postings: u64,
    /// Previously unseen words.
    pub new_words: u64,
    /// Words already in a bucket.
    pub bucket_words: u64,
    /// Words with long lists.
    pub long_words: u64,
    /// Evictions (bucket overflows promoting a word to long).
    pub evictions: u64,
}

impl BatchCategories {
    /// Fraction of pairs that are new words.
    pub fn frac_new(&self) -> f64 {
        self.new_words as f64 / self.words.max(1) as f64
    }

    /// Fraction of pairs that are bucket words.
    pub fn frac_bucket(&self) -> f64 {
        self.bucket_words as f64 / self.words.max(1) as f64
    }

    /// Fraction of pairs that are long words.
    pub fn frac_long(&self) -> f64 {
        self.long_words as f64 / self.words.max(1) as f64
    }
}

/// Output of the compute-buckets stage.
#[derive(Debug, Clone)]
pub struct BucketStageOutput {
    /// One entry per batch: the long-list updates it generates, as
    /// `(word, postings)` pairs in emission order. Reuses [`BatchUpdate`]
    /// so the Figure 5 trace text format round-trips.
    pub long_updates: Vec<BatchUpdate>,
    /// Figure 7 statistics, one per batch.
    pub categories: Vec<BatchCategories>,
}

impl BucketStageOutput {
    /// Total long-list updates across all batches.
    pub fn total_updates(&self) -> usize {
        self.long_updates.iter().map(|b| b.pairs.len()).sum()
    }
}

/// Runs the bucket algorithm over batch updates, emitting long-list
/// updates in exactly the order [`invidx_core::DualIndex`] would perform
/// them (pairs in word order; evictions inline).
pub struct BucketPipeline {
    store: BucketStore,
    /// Words already promoted to long lists.
    long: std::collections::BTreeSet<WordId>,
    /// Per-word posting counters for synthesizing document ids.
    counters: HashMap<WordId, u32>,
}

impl BucketPipeline {
    /// Create a pipeline with `buckets` buckets of `bucket_size` units.
    pub fn new(buckets: usize, bucket_size: u64) -> Result<Self> {
        Ok(Self {
            store: BucketStore::new(buckets, bucket_size)?,
            long: Default::default(),
            counters: HashMap::new(),
        })
    }

    /// Access the bucket store (animation hooks, tests).
    pub fn store(&self) -> &BucketStore {
        &self.store
    }

    /// Synthesize the next `count` postings for `word` (monotone doc ids).
    fn synth_postings(&mut self, word: WordId, count: u32) -> PostingList {
        let c = self.counters.entry(word).or_insert(0);
        let start = *c;
        *c += count;
        PostingList::from_sorted((start..start + count).map(DocId).collect())
    }

    /// Process one batch update; returns the long updates it generates and
    /// its category statistics.
    pub fn process_batch(
        &mut self,
        batch: &BatchUpdate,
    ) -> Result<(BatchUpdate, BatchCategories)> {
        let mut stats = BatchCategories {
            words: batch.pairs.len() as u64,
            postings: 0,
            new_words: 0,
            bucket_words: 0,
            long_words: 0,
            evictions: 0,
        };
        let mut out = Vec::new();
        for &(w, count) in &batch.pairs {
            let word = WordId(w);
            stats.postings += count as u64;
            if self.long.contains(&word) {
                stats.long_words += 1;
                out.push((w, count));
                // Keep the counter advancing for long words too.
                let c = self.counters.entry(word).or_insert(0);
                *c += count;
                continue;
            }
            if self.store.get(word).is_some() {
                stats.bucket_words += 1;
            } else {
                stats.new_words += 1;
            }
            let postings = self.synth_postings(word, count);
            let outcome = self.store.insert(word, &postings)?;
            for (evicted_word, list) in outcome.evicted {
                stats.evictions += 1;
                self.long.insert(evicted_word);
                out.push((evicted_word.0, list.len() as u32));
            }
        }
        Ok((BatchUpdate { day: batch.day, pairs: out }, stats))
    }

    /// Run the whole stage.
    pub fn run(mut self, batches: &[BatchUpdate]) -> Result<BucketStageOutput> {
        let mut long_updates = Vec::with_capacity(batches.len());
        let mut categories = Vec::with_capacity(batches.len());
        for b in batches {
            let (updates, stats) = self.process_batch(b)?;
            long_updates.push(updates);
            categories.push(stats);
        }
        Ok(BucketStageOutput { long_updates, categories })
    }
}

/// One sample of the Figure 1 animation: the watched bucket's occupancy
/// after one change (insertion of a new word, append to an existing word,
/// or removal of a word).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketSample {
    /// Change sequence number (the figure's x-axis).
    pub time: u64,
    /// Words in the bucket.
    pub words: u64,
    /// Postings in the bucket.
    pub postings: u64,
}

impl BucketSample {
    /// The figure's top line.
    pub fn units(&self) -> u64 {
        self.words + self.postings
    }
}

/// Reproduce Figure 1: run the bucket algorithm and record the watched
/// bucket's `(words, postings)` after every change to it, including the
/// downward eviction spikes, for at most `max_samples` changes.
pub fn animate_bucket(
    batches: &[BatchUpdate],
    buckets: usize,
    bucket_size: u64,
    watched: usize,
    max_samples: usize,
) -> Result<Vec<BucketSample>> {
    let mut pipeline = BucketPipeline::new(buckets, bucket_size)?;
    let mut samples = Vec::new();
    let mut time = 0u64;
    'outer: for batch in batches {
        for &(w, count) in &batch.pairs {
            let word = WordId(w);
            if pipeline.long.contains(&word) {
                let c = pipeline.counters.entry(word).or_insert(0);
                *c += count;
                continue;
            }
            let in_watched = pipeline.store.bucket_of(word) == watched;
            let postings = pipeline.synth_postings(word, count);
            let outcome = pipeline.store.insert(word, &postings)?;
            for (evicted_word, _) in &outcome.evicted {
                pipeline.long.insert(*evicted_word);
            }
            if in_watched {
                // One sample for the insertion/append...
                time += 1;
                let b = pipeline.store.bucket(watched);
                // ...reconstructing the pre-eviction peak when an eviction
                // happened in the same call.
                if !outcome.evicted.is_empty() {
                    let removed_words = outcome.evicted.len() as u64;
                    let removed_postings: u64 =
                        outcome.evicted.iter().map(|(_, l)| l.len() as u64).sum();
                    samples.push(BucketSample {
                        time,
                        words: b.words() + removed_words,
                        postings: b.postings() + removed_postings,
                    });
                    time += 1;
                }
                samples.push(BucketSample { time, words: b.words(), postings: b.postings() });
                if samples.len() >= max_samples {
                    break 'outer;
                }
            }
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_corpus::{generate_batches, CorpusParams};

    fn batches() -> Vec<BatchUpdate> {
        generate_batches(CorpusParams::tiny()).0
    }

    #[test]
    fn categories_partition_the_update() {
        let out = BucketPipeline::new(64, 100).unwrap().run(&batches()).unwrap();
        for c in &out.categories {
            assert_eq!(c.new_words + c.bucket_words + c.long_words, c.words);
            assert!((c.frac_new() + c.frac_bucket() + c.frac_long() - 1.0).abs() < 1e-9);
        }
        // First batch: everything is new.
        assert_eq!(out.categories[0].new_words, out.categories[0].words);
        // New-word fraction decays after the first batch.
        let first = out.categories[0].frac_new();
        let last = out.categories.last().unwrap().frac_new();
        assert!(last < first);
    }

    #[test]
    fn long_updates_only_after_overflow() {
        // Huge buckets: nothing ever overflows, no long updates.
        let out = BucketPipeline::new(64, 1_000_000).unwrap().run(&batches()).unwrap();
        assert_eq!(out.total_updates(), 0);
        // Small buckets: overflows guaranteed.
        let out = BucketPipeline::new(16, 50).unwrap().run(&batches()).unwrap();
        assert!(out.total_updates() > 0);
        let total_long: u64 = out.categories.iter().map(|c| c.long_words + c.evictions).sum();
        assert_eq!(out.long_updates.iter().map(|b| b.pairs.len() as u64).sum::<u64>(), total_long);
    }

    #[test]
    fn postings_conserved_into_long_updates() {
        // Every posting ends up either still in a bucket or emitted in a
        // long update (counting each posting once).
        let bx = batches();
        let pipeline = BucketPipeline::new(16, 50).unwrap();
        let store_probe = BucketPipeline::new(16, 50).unwrap();
        drop(store_probe);
        let mut pipeline = pipeline;
        let mut emitted = 0u64;
        let mut total = 0u64;
        for b in &bx {
            let (updates, stats) = pipeline.process_batch(b).unwrap();
            emitted += updates.postings();
            total += stats.postings;
        }
        let in_buckets = pipeline.store.total_postings();
        assert_eq!(emitted + in_buckets, total);
    }

    #[test]
    fn animation_shows_fill_and_spikes() {
        let bx = batches();
        let samples = animate_bucket(&bx, 8, 60, 0, 10_000).unwrap();
        assert!(!samples.is_empty());
        // Monotone time, units bounded by capacity except at reconstructed
        // pre-eviction peaks.
        for w in samples.windows(2) {
            assert!(w[1].time > w[0].time);
        }
        // At least one downward spike (eviction) in a tiny bucket.
        let any_drop = samples.windows(2).any(|w| w[1].units() < w[0].units());
        assert!(any_drop, "expected at least one eviction spike");
        // The bucket fills over time before the first spike.
        assert!(samples.iter().map(BucketSample::units).max().unwrap() >= 60);
    }

    #[test]
    fn trace_text_round_trip() {
        let out = BucketPipeline::new(16, 50).unwrap().run(&batches()).unwrap();
        let nonempty: Vec<BatchUpdate> =
            out.long_updates.iter().filter(|b| !b.pairs.is_empty()).cloned().collect();
        if nonempty.is_empty() {
            return;
        }
        let text = invidx_corpus::batch::batches_to_trace_text(&nonempty);
        let parsed = invidx_corpus::batch::batches_from_trace_text(&text).unwrap();
        assert_eq!(parsed.len(), nonempty.len());
        for (a, b) in parsed.iter().zip(&nonempty) {
            assert_eq!(a.pairs, b.pairs);
        }
    }
}
