//! Experimental parameters: the paper's Table 4 (and the corpus knobs).
//!
//! The paper's table:
//!
//! | Variable     | Value   | Description        |
//! |--------------|---------|--------------------|
//! | Buckets      | 4096*   | Number of buckets  |
//! | BucketSize   | 500*    | Size of bucket     |
//! | BlockPosting | 100*    | Postings per Block |
//! | Disks        | 8       | Number of Disks    |
//! | BlockSize    | 4096*   | Bytes per Block    |
//! | BufferBlock  | 128*    | I/O buffer memory  |
//!
//! Values marked * are OCR-damaged in our copy of the paper and are
//! documented reconstructions (DESIGN.md); the qualitative results are
//! insensitive to them. `BucketSize` "implicitly models the efficiency of
//! the compression algorithm applied to in-memory inverted lists";
//! `BlockPosting`/`BlockSize` do the same for long lists.

use invidx_core::index::IndexConfig;
use invidx_core::policy::Policy;
use invidx_corpus::CorpusParams;
use invidx_disk::{DiskProfile, ExerciseConfig};

/// Full parameter set for one experiment.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Corpus generation parameters (the News substitute).
    pub corpus: CorpusParams,
    /// Number of buckets.
    pub buckets: usize,
    /// Bucket capacity in units.
    pub bucket_size: u64,
    /// Postings per block.
    pub block_postings: u64,
    /// Number of disks.
    pub disks: u16,
    /// Bytes per block.
    pub block_size: usize,
    /// Blocks per disk (a 2 GB drive at 4 KB blocks by default).
    pub blocks_per_disk: u64,
    /// Coalescing buffer, in blocks.
    pub buffer_blocks: u64,
    /// Disk timing model for the exercise stage.
    pub profile: DiskProfile,
}

impl Default for SimParams {
    fn default() -> Self {
        let block_size = 4096;
        Self {
            corpus: CorpusParams::default(),
            buckets: 4096,
            bucket_size: 500,
            block_postings: 100,
            disks: 8,
            block_size,
            blocks_per_disk: 500_000,
            buffer_blocks: 128,
            profile: DiskProfile::seagate_1994(block_size),
        }
    }
}

impl SimParams {
    /// A scaled-down parameter set for tests: ~100x less data, same shape.
    pub fn tiny() -> Self {
        let block_size = 512;
        Self {
            corpus: CorpusParams::tiny(),
            buckets: 128,
            bucket_size: 200,
            block_postings: 20,
            disks: 4,
            block_size,
            blocks_per_disk: 200_000,
            buffer_blocks: 32,
            profile: DiskProfile::seagate_1994(block_size),
        }
    }

    /// The Figure 1 animation setting: "a small system with 100 buckets".
    pub fn figure1() -> Self {
        Self { buckets: 100, ..Self::default() }
    }

    /// The index configuration slice of these parameters.
    pub fn index_config(&self, policy: Policy) -> IndexConfig {
        IndexConfig::builder()
            .num_buckets(self.buckets)
            .bucket_capacity_units(self.bucket_size)
            .block_postings(self.block_postings)
            .policy(policy)
            .materialize_buckets(false)
            .build()
            .expect("simulation parameters are a valid index configuration")
    }

    /// The exercise-stage configuration.
    pub fn exercise_config(&self) -> ExerciseConfig {
        ExerciseConfig {
            profile: self.profile.clone(),
            disks: self.disks,
            buffer_blocks: self.buffer_blocks,
        }
    }

    /// Per-disk bucket-stripe size in blocks: buckets are distributed
    /// round-robin over disks, each occupying
    /// `ceil(BucketSize / BlockPosting)` blocks.
    pub fn bucket_stripe_blocks(&self, disk: u16) -> u64 {
        let per_bucket = self.bucket_size.div_ceil(self.block_postings);
        let count = (0..self.buckets).filter(|i| (i % self.disks as usize) as u16 == disk).count();
        count as u64 * per_bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let p = SimParams::default();
        let cfg = p.index_config(Policy::balanced());
        assert!(cfg.validate(p.block_size).is_ok());
        assert_eq!(cfg.bucket_blocks(), 5);
    }

    #[test]
    fn tiny_is_consistent() {
        let p = SimParams::tiny();
        assert!(p.index_config(Policy::balanced()).validate(p.block_size).is_ok());
    }

    #[test]
    fn stripe_blocks_cover_all_buckets() {
        let p = SimParams::tiny();
        let total: u64 = (0..p.disks).map(|d| p.bucket_stripe_blocks(d)).sum();
        assert_eq!(total, p.buckets as u64 * p.bucket_size.div_ceil(p.block_postings));
    }
}
