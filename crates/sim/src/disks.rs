//! The "compute disks" process (paper §4.4).
//!
//! "Takes as input the trace file of long list updates and computes the
//! sequence of I/O system calls required to implement the policies
//! described in Section 3. In addition, the write operations for saving the
//! buckets and the directory are added at the end of each batch update."
//!
//! This stage drives [`invidx_core::LongStore`] against a traced disk
//! array, synthesizing monotone document ids for each word's updates, and
//! reports the paper's §5.2 metrics after every batch: cumulative I/O
//! operations (Figure 8), long-list internal utilization (Figure 9), and
//! average reads per long list (Figure 10).

use crate::params::SimParams;
use invidx_core::longlist::{LongConfig, LongStats, LongStore};
use invidx_core::policy::Policy;
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, IndexError, Result, WordId};
use invidx_corpus::BatchUpdate;
use invidx_disk::{sparse_array, DiskArray, IoOp, IoTrace, OpKind, Payload};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-batch metrics from the compute-disks stage.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BatchDiskStats {
    /// Cumulative logical I/O operations (Figure 8's y-axis), including the
    /// bucket and directory writes.
    pub cumulative_ops: u64,
    /// Long-list internal utilization after this batch (Figure 9).
    pub utilization: f64,
    /// Average reads per long list after this batch (Figure 10).
    pub avg_reads_per_long_list: f64,
    /// Words with long lists.
    pub long_words: u64,
    /// Cumulative long-store counters.
    pub long_stats: LongStats,
}

/// Output of the compute-disks stage.
#[derive(Debug)]
pub struct DiskStageOutput {
    /// The policy that produced this run.
    pub policy: Policy,
    /// The full I/O trace (input to the exercise stage).
    pub trace: IoTrace,
    /// Per-batch metrics.
    pub per_batch: Vec<BatchDiskStats>,
    /// Final long-store counters.
    pub final_stats: LongStats,
    /// Final utilization.
    pub final_utilization: f64,
    /// Final average reads per long list.
    pub final_avg_reads: f64,
    /// Total blocks consumed at the end (long lists + metadata).
    pub blocks_in_use: u64,
}

/// Errors that identify the paper's "disks not large enough" case
/// distinctly from other failures.
pub fn is_out_of_space(err: &IndexError) -> bool {
    matches!(err, IndexError::Disk(invidx_disk::DiskError::OutOfSpace { .. }))
}

/// The compute-disks stage runner.
pub struct DiskStage {
    params: SimParams,
    policy: Policy,
    store: LongStore,
    array: DiskArray,
    counters: HashMap<WordId, u32>,
    batch_no: u64,
    /// Live metadata extents for shadow paging: per-disk bucket stripes +
    /// the directory extent.
    bucket_extents: Vec<(u16, u64, u64)>,
    dir_extent: Option<(u16, u64, u64)>,
}

impl DiskStage {
    /// Build a stage for one policy.
    pub fn new(params: SimParams, policy: Policy) -> Result<Self> {
        let config = LongConfig {
            block_postings: params.block_postings,
            policy,
            codec: Default::default(),
        };
        config.validate(params.block_size)?;
        let mut array = sparse_array(params.disks, params.blocks_per_disk, params.block_size);
        array.reserve_on(0, 0, 1)?; // superblock home, as in DualIndex
        array.start_trace();
        Ok(Self {
            params,
            policy,
            store: LongStore::new(config),
            array,
            counters: HashMap::new(),
            batch_no: 0,
            bucket_extents: Vec::new(),
            dir_extent: None,
        })
    }

    fn synth_postings(&mut self, word: WordId, count: u32) -> PostingList {
        let c = self.counters.entry(word).or_insert(0);
        let start = *c;
        *c += count;
        PostingList::from_sorted((start..start + count).map(DocId).collect())
    }

    /// Apply one batch of long-list updates, then the end-of-batch bucket
    /// and directory writes (mirroring `DualIndex::flush_metadata`).
    pub fn process_batch(&mut self, updates: &BatchUpdate) -> Result<()> {
        for &(w, count) in &updates.pairs {
            let word = WordId(w);
            let postings = self.synth_postings(word, count);
            self.store.append(&mut self.array, word, &postings)?;
        }
        self.batch_no += 1;
        self.flush_metadata()?;
        self.array.end_batch();
        Ok(())
    }

    fn flush_metadata(&mut self) -> Result<()> {
        let bs = self.params.block_size;
        // Bucket stripes, one write per disk.
        let mut new_extents = Vec::with_capacity(self.params.disks as usize);
        for d in 0..self.params.disks {
            let blocks = self.params.bucket_stripe_blocks(d);
            if blocks == 0 {
                new_extents.push((d, 0, 0));
                continue;
            }
            let start = self.array.alloc_on(d, blocks)?;
            self.array.trace_push(IoOp {
                kind: OpKind::Write,
                disk: d,
                start,
                blocks,
                payload: Payload::Bucket,
            });
            new_extents.push((d, start, blocks));
        }
        // Directory write on a rotating disk.
        let dir_bytes = self.store.directory().serialize();
        let dir_blocks = (dir_bytes.len().div_ceil(bs) as u64).max(1);
        let dir_disk = (self.batch_no % self.params.disks as u64) as u16;
        let dir_start = self.array.alloc_on(dir_disk, dir_blocks)?;
        let mut buf = dir_bytes;
        buf.resize(dir_blocks as usize * bs, 0);
        self.array.write_op(
            IoOp {
                kind: OpKind::Write,
                disk: dir_disk,
                start: dir_start,
                blocks: dir_blocks,
                payload: Payload::Directory,
            },
            &buf,
        )?;
        // Free the previous generation and released long-list chunks.
        for (d, s, b) in std::mem::replace(&mut self.bucket_extents, new_extents) {
            if b > 0 {
                self.array.free_on(d, s, b)?;
            }
        }
        if let Some((d, s, b)) = self.dir_extent.replace((dir_disk, dir_start, dir_blocks)) {
            self.array.free_on(d, s, b)?;
        }
        self.store.free_released(&mut self.array)?;
        Ok(())
    }

    /// Snapshot the per-batch metrics (call after `process_batch`).
    fn snapshot(&self) -> BatchDiskStats {
        let dir = self.store.directory();
        BatchDiskStats {
            cumulative_ops: self.array.with_trace(|t| t.map_or(0, |t| t.ops.len() as u64)),
            utilization: dir.utilization(self.params.block_postings),
            avg_reads_per_long_list: dir.avg_reads_per_long_list(),
            long_words: dir.num_words() as u64,
            long_stats: self.store.stats(),
        }
    }

    /// Run the stage over all batches.
    pub fn run(mut self, long_updates: &[BatchUpdate]) -> Result<DiskStageOutput> {
        let mut per_batch = Vec::with_capacity(long_updates.len());
        for b in long_updates {
            self.process_batch(b)?;
            per_batch.push(self.snapshot());
        }
        let dir = self.store.directory();
        let final_utilization = dir.utilization(self.params.block_postings);
        let final_avg_reads = dir.avg_reads_per_long_list();
        let blocks_in_use = self.array.total_blocks() - self.array.free_blocks();
        Ok(DiskStageOutput {
            policy: self.policy,
            trace: self.array.take_trace(),
            per_batch,
            final_stats: self.store.stats(),
            final_utilization,
            final_avg_reads,
            blocks_in_use,
        })
    }

    /// Access the long store (tests).
    pub fn store(&self) -> &LongStore {
        &self.store
    }
}

/// Convenience: run compute-disks for a policy over a long-update trace.
pub fn compute_disks(
    params: &SimParams,
    policy: Policy,
    long_updates: &[BatchUpdate],
) -> Result<DiskStageOutput> {
    DiskStage::new(params.clone(), policy)?.run(long_updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buckets::BucketPipeline;
    use invidx_corpus::generate_batches;

    fn long_updates(params: &SimParams) -> Vec<BatchUpdate> {
        let (batches, _) = generate_batches(params.corpus.clone());
        BucketPipeline::new(params.buckets, params.bucket_size)
            .unwrap()
            .run(&batches)
            .unwrap()
            .long_updates
    }

    #[test]
    fn all_policies_complete_and_report() {
        let params = SimParams::tiny();
        let updates = long_updates(&params);
        let total_updates: usize = updates.iter().map(|b| b.pairs.len()).sum();
        assert!(total_updates > 0, "tiny corpus must overflow some buckets");
        for policy in Policy::style_comparison_set() {
            let out = compute_disks(&params, policy, &updates).unwrap();
            assert_eq!(out.per_batch.len(), updates.len());
            assert_eq!(out.trace.batches(), updates.len());
            // Cumulative ops strictly increase (every batch writes
            // buckets + directory at minimum).
            for w in out.per_batch.windows(2) {
                assert!(w[1].cumulative_ops > w[0].cumulative_ops);
            }
            assert!(out.final_utilization > 0.0 && out.final_utilization <= 1.0);
        }
    }

    #[test]
    fn whole_style_has_one_read_per_list() {
        let params = SimParams::tiny();
        let updates = long_updates(&params);
        let whole = compute_disks(&params, Policy::query_optimized(), &updates).unwrap();
        assert!((whole.final_avg_reads - 1.0).abs() < 1e-9);
        let new0 = compute_disks(&params, Policy::update_optimized(), &updates).unwrap();
        assert!(new0.final_avg_reads > whole.final_avg_reads);
    }

    #[test]
    fn in_place_updates_double_io_ops() {
        // Figure 8's observation: in-place updates roughly double the
        // long-list I/O operations relative to Limit = 0 (one read + one
        // write instead of one write).
        use invidx_core::policy::{Alloc, Limit, Style};
        let params = SimParams::tiny();
        let updates = long_updates(&params);
        let count_long = |out: &DiskStageOutput| {
            out.trace.count(|op| matches!(op.payload, Payload::LongList { .. }))
        };
        let new0 = compute_disks(
            &params,
            Policy::new(Style::New, Limit::Never, Alloc::Constant { k: 0 }),
            &updates,
        )
        .unwrap();
        let newz = compute_disks(
            &params,
            Policy::new(Style::New, Limit::Fits, Alloc::Constant { k: 0 }),
            &updates,
        )
        .unwrap();
        // On the tiny corpus the ratio is attenuated (updates often exceed
        // the block-tail space); at full scale it approaches the paper's
        // factor of 2 — the fig08 bench reports it. Here assert direction
        // and the hard upper bound of 2 (read+write vs write).
        let ratio = count_long(&newz) as f64 / count_long(&new0) as f64;
        assert!(ratio > 1.05 && ratio <= 2.0 + 1e-9, "ratio {ratio}");
        // And the whole style is the upper bound on I/O operations.
        let whole0 = compute_disks(
            &params,
            Policy::new(Style::Whole, Limit::Never, Alloc::Constant { k: 0 }),
            &updates,
        )
        .unwrap();
        assert!(count_long(&whole0) >= count_long(&new0));
    }

    #[test]
    fn utilization_ordering_matches_paper() {
        // Figure 9: whole ~1.0; adding in-place updates improves new/fill;
        // fill/new without in-place waste the most space.
        use invidx_core::policy::{Alloc, Limit, Style};
        let params = SimParams::tiny();
        let updates = long_updates(&params);
        let util = |style, limit| {
            compute_disks(&params, Policy::new(style, limit, Alloc::Constant { k: 0 }), &updates)
                .unwrap()
                .final_utilization
        };
        let whole = util(Style::Whole, Limit::Never);
        let new0 = util(Style::New, Limit::Never);
        let newz = util(Style::New, Limit::Fits);
        let fill0 = util(Style::Fill { extent_blocks: 4 }, Limit::Never);
        let fillz = util(Style::Fill { extent_blocks: 4 }, Limit::Fits);
        assert!(whole > 0.9, "whole {whole}");
        assert!(newz > new0, "new z {newz} vs new 0 {new0}");
        assert!(fillz > fill0, "fill z {fillz} vs fill 0 {fill0}");
        assert!(whole > newz && whole > fillz);
    }

    #[test]
    fn counters_give_monotone_doc_ids_across_batches() {
        let params = SimParams::tiny();
        let updates = long_updates(&params);
        // Success of every policy run already implies ordering (LongStore
        // checks), but assert explicitly by reading a list back.
        let mut stage = DiskStage::new(params.clone(), Policy::query_optimized()).unwrap();
        for b in &updates {
            stage.process_batch(b).unwrap();
        }
        let first_word = stage.store.directory().iter().next().map(|(w, _)| w);
        if let Some(word) = first_word {
            let list = stage.store.read_list(&stage.array, None, word).unwrap();
            assert!(!list.is_empty());
        }
    }
}
