//! # invidx-bench — the reproduction harness
//!
//! One binary per table/figure of the paper's evaluation (`src/bin/`),
//! plus ablations and criterion micro-benchmarks (`benches/`). Each binary
//! prints a terminal summary and writes TSV artifacts under `results/`.
//!
//! Environment knobs:
//!
//! * `INVIDX_QUICK=1` — run on the tiny corpus (CI-speed smoke run);
//! * `INVIDX_RESULTS=<dir>` — artifact directory (default `results/`);
//! * `INVIDX_METRICS=<path>` — drop observability artifacts: an NDJSON
//!   event stream at `<path>.ndjson`, plus a metrics snapshot next to each
//!   TSV artifact as `<path>.json` / `<path>.prom`.

use invidx_core::policy::Policy;
use invidx_obs::log_progress;
use invidx_sim::{Experiment, Figure, SimParams, TextTable};
use std::path::PathBuf;

/// Artifact output directory.
pub fn results_dir() -> PathBuf {
    std::env::var("INVIDX_RESULTS").map(PathBuf::from).unwrap_or_else(|_| {
        // Walk up from the executable's cwd to a directory with Cargo.toml.
        let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        while !dir.join("Cargo.toml").exists() {
            if !dir.pop() {
                dir = PathBuf::from(".");
                break;
            }
        }
        dir.join("results")
    })
}

/// The parameter set: full scale unless `INVIDX_QUICK` is set.
pub fn params() -> SimParams {
    if quick() {
        SimParams::tiny()
    } else {
        SimParams::default()
    }
}

/// True when running in quick (CI) mode.
pub fn quick() -> bool {
    std::env::var("INVIDX_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The `INVIDX_METRICS` base path, if metrics artifacts were requested.
pub fn metrics_base() -> Option<PathBuf> {
    std::env::var_os("INVIDX_METRICS").map(PathBuf::from)
}

/// Initialize the NDJSON event sink when `INVIDX_METRICS` is set. Called
/// from [`prepare`]; binaries that skip `prepare` can call it directly.
pub fn init_metrics() {
    if let Some(base) = metrics_base() {
        let path = base.with_extension("ndjson");
        match invidx_obs::init_event_sink(&path) {
            Ok(()) => log_progress("bench", &format!("streaming events to {}", path.display())),
            Err(e) => log_progress("bench", &format!("cannot open event sink {}: {e}", path.display())),
        }
    }
}

/// Write JSON + Prometheus snapshots of the current metric registry to
/// `<INVIDX_METRICS>.json` / `<INVIDX_METRICS>.prom`. No-op when the knob
/// is unset. Binaries call this once after their last emit.
pub fn write_metrics_snapshot() {
    let Some(base) = metrics_base() else { return };
    let snap = invidx_obs::snapshot();
    if let Some(parent) = base.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    for (ext, body) in [("json", snap.to_json()), ("prom", snap.to_prometheus())] {
        let path = base.with_extension(ext);
        match std::fs::write(&path, body) {
            Ok(()) => log_progress("bench", &format!("wrote {}", path.display())),
            Err(e) => log_progress("bench", &format!("could not write {}: {e}", path.display())),
        }
    }
    invidx_obs::flush_events();
}

/// Prepare the experiment (corpus + bucket stage), reporting progress.
pub fn prepare() -> Experiment {
    init_metrics();
    let p = params();
    log_progress(
        "bench",
        &format!(
            "preparing experiment: {} batches, {} buckets x {} units{}",
            p.corpus.days,
            p.buckets,
            p.bucket_size,
            if quick() { " [quick mode]" } else { "" }
        ),
    );
    let t = std::time::Instant::now();
    let exp = Experiment::prepare(p).expect("experiment preparation");
    log_progress(
        "bench",
        &format!(
            "prepared in {:.1?}: {} postings, {} long-list updates",
            t.elapsed(),
            exp.corpus_stats.total_postings,
            exp.buckets.total_updates()
        ),
    );
    exp
}

/// Emit a figure: print the terminal summary and write `results/<id>.tsv`.
pub fn emit_figure(fig: &Figure) {
    print!("{}", fig.summary());
    let dir = results_dir();
    match invidx_sim::write_artifact(&dir, &format!("{}.tsv", fig.id), &fig.to_tsv()) {
        Ok(path) => log_progress("bench", &format!("wrote {}", path.display())),
        Err(e) => log_progress("bench", &format!("could not write artifact: {e}")),
    }
    write_metrics_snapshot();
}

/// Emit a table: print it and write `results/<id>.tsv`.
pub fn emit_table(table: &TextTable) {
    print!("{}", table.render());
    let dir = results_dir();
    match invidx_sim::write_artifact(&dir, &format!("{}.tsv", table.id), &table.to_tsv()) {
        Ok(path) => log_progress("bench", &format!("wrote {}", path.display())),
        Err(e) => log_progress("bench", &format!("could not write artifact: {e}")),
    }
    write_metrics_snapshot();
}

/// The six policy curves shown in Figures 8–10 and 13–14, labeled as in
/// the paper. `fill 0` is included; whether it fits depends on disk size —
/// when it does not, the harness reports out-of-space, matching the
/// paper's remark that its disks "were not large enough" for fill 0.
pub fn figure_policies() -> Vec<Policy> {
    Policy::style_comparison_set()
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else {
        format!("{s:.2}")
    }
}
