//! Ablation: deletion. The paper (§3) argues for a deleted-document filter
//! plus a background sweep rather than immediate physical deletion. This
//! measures the sweep's cost as a function of the deleted fraction, on a
//! real index over a reduced corpus.

use invidx_bench::emit_table;
use invidx_core::index::{DualIndex, IndexConfig};
use invidx_core::policy::Policy;
use invidx_core::types::{DocId, WordId};
use invidx_corpus::{CorpusGenerator, CorpusParams};
use invidx_disk::sparse_array;
use invidx_sim::TextTable;

fn build_index() -> (DualIndex, u32) {
    let params = CorpusParams {
        days: 8,
        docs_per_weekday: 200,
        vocab_ranks: 50_000,
        ..CorpusParams::tiny()
    };
    let array = sparse_array(4, 500_000, 512);
    let config = IndexConfig::builder()
        .num_buckets(256)
        .bucket_capacity_units(100)
        .block_postings(20)
        .policy(Policy::balanced())
        .materialize_buckets(true)
        .build()
        .expect("valid config");
    let mut index = DualIndex::create(array, config).expect("create");
    let mut max_doc = 0u32;
    for day in CorpusGenerator::new(params) {
        for doc in &day.docs {
            let words = doc.word_ranks.iter().map(|&r| WordId(r));
            index.insert_document(DocId(doc.id + 1), words).expect("insert");
            max_doc = doc.id + 1;
        }
        index.flush_batch().expect("flush");
    }
    (index, max_doc)
}

fn main() {
    let mut rows = Vec::new();
    for pct in [1u32, 5, 10, 25, 50] {
        let (mut index, max_doc) = build_index();
        for d in 1..=max_doc {
            if d % 100 < pct {
                index.delete_document(DocId(d));
            }
        }
        let deleted = index.pending_deletions();
        index.array().start_trace();
        let wall = std::time::Instant::now();
        let report = index.sweep().expect("sweep");
        let cpu = wall.elapsed();
        let trace = index.array().take_trace();
        rows.push(vec![
            format!("{pct}%"),
            deleted.to_string(),
            report.postings_removed.to_string(),
            report.long_rewritten.to_string(),
            report.words_dropped.to_string(),
            trace.ops.len().to_string(),
            format!("{:.2}", cpu.as_secs_f64()),
        ]);
    }
    emit_table(&TextTable {
        id: "ablation_delete".into(),
        title: "Deletion sweep cost vs deleted fraction".into(),
        headers: vec![
            "Deleted".into(),
            "Docs".into(),
            "Postings removed".into(),
            "Long rewritten".into(),
            "Words dropped".into(),
            "Sweep I/O ops".into(),
            "CPU s".into(),
        ],
        rows,
    });
}
