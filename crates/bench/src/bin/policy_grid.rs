//! The full policy grid: every Style x Limit x Alloc combination the
//! paper's framework spans, measured on one shared workload. This is the
//! complete map of the §3 engineering-trade-off space of which the paper's
//! figures show slices — update time, query cost, and space for ~40
//! policies in one table.

use invidx_bench::{emit_table, prepare, quick};
use invidx_core::policy::{Alloc, Limit, Policy, Style};
use invidx_sim::disks::is_out_of_space;
use invidx_sim::TextTable;

fn grid(quick: bool) -> Vec<Policy> {
    let styles = vec![
        Style::New,
        Style::Whole,
        Style::Fill { extent_blocks: 2 },
        Style::Fill { extent_blocks: 4 },
        Style::Fill { extent_blocks: 8 },
    ];
    let allocs = if quick {
        vec![Alloc::Constant { k: 0 }, Alloc::Proportional { k: 2.0 }]
    } else {
        vec![
            Alloc::Constant { k: 0 },
            Alloc::Constant { k: 100 },
            Alloc::Constant { k: 400 },
            Alloc::Block { k: 2 },
            Alloc::Block { k: 4 },
            Alloc::Proportional { k: 1.2 },
            Alloc::Proportional { k: 1.5 },
            Alloc::Proportional { k: 2.0 },
        ]
    };
    let mut out = Vec::new();
    for &style in &styles {
        // Limit = 0 collapses every alloc to constant 0 — one row.
        out.push(Policy::new(style, Limit::Never, Alloc::Constant { k: 0 }));
        for &alloc in &allocs {
            let p = Policy::new(style, Limit::Fits, alloc);
            if !out.contains(&p) {
                out.push(p);
            }
        }
    }
    out
}

fn main() {
    let exp = prepare();
    let mut rows = Vec::new();
    for policy in grid(quick()) {
        match exp.run_policy(policy) {
            Ok(run) => {
                let s = run.disks.final_stats;
                rows.push(vec![
                    policy.label(),
                    format!("{:.0}", run.exercise.total_seconds()),
                    run.disks.trace.ops.len().to_string(),
                    format!("{:.2}", run.disks.final_avg_reads),
                    format!("{:.2}", run.disks.final_utilization),
                    format!("{:.2}", s.in_place_fraction()),
                    run.disks.blocks_in_use.to_string(),
                ]);
            }
            Err(e) if is_out_of_space(&e) => {
                rows.push(vec![
                    policy.label(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "out of disk".into(),
                ]);
            }
            Err(e) => panic!("{policy}: {e}"),
        }
    }
    // Sort by build time (unfinishable runs last).
    rows.sort_by(|a, b| {
        let t = |r: &Vec<String>| r[1].parse::<f64>().unwrap_or(f64::INFINITY);
        t(a).total_cmp(&t(b))
    });
    emit_table(&TextTable {
        id: "policy_grid".into(),
        title: "The complete policy space on one workload (sorted by build time)".into(),
        headers: vec![
            "Policy".into(),
            "Build s".into(),
            "I/O ops".into(),
            "Reads/list".into(),
            "Util".into(),
            "In-place frac".into(),
            "Blocks".into(),
        ],
        rows,
    });
    println!(
        "\nPareto reading: no policy dominates — the fastest builds have the worst\n\
         query cost and utilization, exactly the paper's conclusion (§5.4)."
    );
}
