//! Ablation: batch size. The paper's §2 premise: "Updating the index for
//! each individual arriving document is inefficient [...] Instead, the
//! goal is to batch together small numbers of documents for each in-place
//! index update. Collecting many documents into an in-memory inverted
//! index before writing the index to disk amortizes the cost of storing a
//! posting."
//!
//! Same documents, different flush granularity: every 1 / 10 / 100 / 1000
//! documents. Expected: cost per posting falls steeply with batch size
//! (fixed bucket+directory flush costs amortize; long-list updates
//! coalesce), quantifying why the per-document strategy is hopeless.

use invidx_bench::emit_table;
use invidx_core::index::{DualIndex, IndexConfig};
use invidx_core::policy::Policy;
use invidx_core::types::{DocId, WordId};
use invidx_corpus::{CorpusGenerator, CorpusParams};
use invidx_disk::{exercise, sparse_array, DiskProfile, ExerciseConfig};
use invidx_sim::TextTable;

fn corpus() -> CorpusParams {
    CorpusParams {
        days: 4,
        docs_per_weekday: 500,
        vocab_ranks: 100_000,
        interrupted_day: None,
        ..CorpusParams::tiny()
    }
}

fn main() {
    let docs: Vec<(u32, Vec<u64>)> = CorpusGenerator::new(corpus())
        .flat_map(|day| day.docs.into_iter())
        .map(|d| (d.id + 1, d.word_ranks))
        .collect();
    let total_postings: u64 = docs.iter().map(|(_, w)| w.len() as u64).sum();
    invidx_obs::log_progress(
        "ablation",
        &format!("{} documents, {} postings", docs.len(), total_postings),
    );

    let block_size = 512;
    let profile = DiskProfile::seagate_1994(block_size);
    let mut rows = Vec::new();
    for batch_docs in [1usize, 10, 100, 1000] {
        let array = sparse_array(4, 2_000_000, block_size);
        let config = IndexConfig::builder()
            .num_buckets(256)
            .bucket_capacity_units(400)
            .block_postings(25)
            .policy(Policy::balanced())
            .materialize_buckets(false)
            .build()
            .expect("valid config");
        let mut index = DualIndex::create(array, config).expect("create");
        index.array().start_trace();
        for (i, (id, words)) in docs.iter().enumerate() {
            index
                .insert_document(DocId(*id), words.iter().map(|&r| WordId(r)))
                .expect("insert");
            if (i + 1) % batch_docs == 0 {
                index.flush_batch().expect("flush");
            }
        }
        if !index.mem().is_empty() {
            index.flush_batch().expect("final flush");
        }
        let trace = index.array().take_trace();
        let timing = exercise(
            &trace,
            &ExerciseConfig { profile: profile.clone(), disks: 4, buffer_blocks: 64 },
        );
        rows.push(vec![
            batch_docs.to_string(),
            index.batches().to_string(),
            trace.ops.len().to_string(),
            format!("{:.0}", timing.total_seconds()),
            format!("{:.0}", 1e6 * timing.total_seconds() / total_postings as f64),
        ]);
    }
    emit_table(&TextTable {
        id: "ablation_batch_size".into(),
        title: "Flush granularity: documents per batch (policy 'new z prop 2')".into(),
        headers: vec![
            "Docs/batch".into(),
            "Flushes".into(),
            "I/O ops".into(),
            "Modeled s".into(),
            "us/posting".into(),
        ],
        rows,
    });
}
