//! Table 1: statistics of the (synthetic) News abstracts text database.

use invidx_bench::{emit_table, params};
use invidx_corpus::generate_batches;
use invidx_sim::TextTable;

fn main() {
    let p = params();
    let (_, stats) = generate_batches(p.corpus.clone());
    let rows: Vec<Vec<String>> = vec![
        vec!["Total Raw Text".into(), format!("{:.1} MB", stats.raw_text_bytes as f64 / 1e6)],
        vec!["Total Words".into(), stats.total_words.to_string()],
        vec!["Total Postings".into(), stats.total_postings.to_string()],
        vec!["Documents".into(), stats.documents.to_string()],
        vec![
            "Average Postings per Word".into(),
            format!("{:.1}", stats.avg_postings_per_word()),
        ],
        vec!["Frequent Words (top 0.2%)".into(), stats.frequent_words.to_string()],
        vec!["Infrequent Words".into(), stats.infrequent_words.to_string()],
        vec![
            "Postings for Frequent Words".into(),
            format!("{:.1}%", stats.frequent_posting_pct()),
        ],
        vec![
            "Postings for Infrequent Words".into(),
            format!("{:.1}%", 100.0 - stats.frequent_posting_pct()),
        ],
    ];
    emit_table(&TextTable {
        id: "table1".into(),
        title: "Statistics for the synthetic News abstracts text database".into(),
        headers: vec!["Text Document Database".into(), "News (synthetic)".into()],
        rows,
    });
}
