//! Figure 1: animation of one bucket's behaviour — words, postings, and
//! words+postings after each change, for a small system with 100 buckets.
//! The downward spikes are overflows evicting the longest short list.

use invidx_bench::{emit_figure, params, quick};
use invidx_corpus::generate_batches;
use invidx_sim::{animate_bucket, Figure, Series};

fn main() {
    let p = params();
    let (batches, _) = generate_batches(p.corpus.clone());
    let (buckets, bucket_size, watched, max_samples) = if quick() {
        (20, 400, 3, 500)
    } else {
        // "We choose bucket 3 as an example bucket and run the bucket
        // algorithm for a short time on a small system" — 100 buckets; the
        // figure's y-axis reaches several thousand units.
        (100, 4000, 3, 2000)
    };
    let samples = animate_bucket(&batches, buckets, bucket_size as u64, watched, max_samples)
        .expect("animation");
    let series = |name: &str, f: fn(&invidx_sim::BucketSample) -> u64| Series {
        name: name.into(),
        points: samples.iter().map(|s| (s.time as f64, f(s) as f64)).collect(),
    };
    emit_figure(&Figure {
        id: "figure01".into(),
        title: format!(
            "Bucket {watched} occupancy per change ({buckets} buckets of {bucket_size} units)"
        ),
        x_label: "time (1 unit per change to bucket)".into(),
        y_label: "words and postings".into(),
        series: vec![
            series("words + postings", |s| s.units()),
            series("postings", |s| s.postings),
            series("words", |s| s.words),
        ],
    });
    // Report the eviction spikes for the narrative.
    let drops = samples
        .windows(2)
        .filter(|w| w[1].units() < w[0].units())
        .count();
    println!("eviction spikes observed: {drops}");
}
