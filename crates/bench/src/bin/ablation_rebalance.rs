//! Ablation: bucket-space rebalancing (paper §7 future work).
//!
//! "As the size of the index grows from the addition of more documents,
//! the performance of the index degrades. This implies that we need a
//! strategy to rebalance the division between short and long lists."
//!
//! Two runs over a doubled-length corpus: one with fixed bucket space, one
//! that doubles the bucket space mid-way. Expected: without rebalancing,
//! the long-word fraction (and with it the long-list update load per
//! batch) keeps climbing; rebalancing pulls the trend back down.

use invidx_bench::{emit_figure, emit_table, params, quick};
use invidx_core::index::DualIndex;
use invidx_core::policy::Policy;
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, WordId};
use invidx_corpus::{generate_batches, BatchUpdate, CorpusParams};
use invidx_disk::sparse_array;
use invidx_sim::{Figure, Series, SimParams, TextTable};
use std::collections::HashMap;

fn run(
    params: &SimParams,
    batches: &[BatchUpdate],
    rebalance_at: Option<(usize, usize, u64)>,
) -> (Vec<f64>, u64) {
    let array = sparse_array(params.disks, params.blocks_per_disk, params.block_size);
    let mut index =
        DualIndex::create(array, params.index_config(Policy::balanced())).expect("create");
    let mut counters: HashMap<WordId, u32> = HashMap::new();
    let mut long_frac = Vec::with_capacity(batches.len());
    let mut total_long_appends = 0u64;
    for (i, batch) in batches.iter().enumerate() {
        if let Some((at, nb, cap)) = rebalance_at {
            if i == at {
                let report = index.rebalance_buckets(nb, cap).expect("rebalance");
                invidx_obs::log_progress(
                    "ablation",
                    &format!(
                        "rebalanced at update {i}: {} -> {} buckets, {} words moved, {} evicted",
                        report.old_buckets,
                        report.new_buckets,
                        report.moved_words,
                        report.evictions
                    ),
                );
            }
        }
        for &(w, count) in &batch.pairs {
            let word = WordId(w);
            let c = counters.entry(word).or_insert(0);
            let list = PostingList::from_sorted((*c..*c + count).map(DocId).collect());
            *c += count;
            index.insert_list(word, &list).expect("insert");
        }
        let report = index.flush_batch().expect("flush");
        long_frac.push(report.long_words as f64 / report.words.max(1) as f64);
        total_long_appends += report.long_appends;
    }
    (long_frac, total_long_appends)
}

fn main() {
    let base = params();
    // A longer corpus to expose the degradation.
    let corpus = CorpusParams {
        days: if quick() { 24 } else { 120 },
        ..base.corpus.clone()
    };
    let params = SimParams { corpus: corpus.clone(), ..base };
    invidx_obs::log_progress("ablation", &format!("generating {}-day corpus ...", corpus.days));
    let (batches, _) = generate_batches(corpus.clone());
    let half = batches.len() / 2;

    let (fixed, fixed_appends) = run(&params, &batches, None);
    let (rebal, rebal_appends) = run(
        &params,
        &batches,
        Some((half, params.buckets * 2, params.bucket_size * 2)),
    );

    emit_figure(&Figure {
        id: "ablation_rebalance".into(),
        title: format!(
            "Long-word fraction per update, fixed vs 4x bucket space at update {half}"
        ),
        x_label: "update".into(),
        y_label: "fraction of words with long lists".into(),
        series: vec![
            Series::from_updates("fixed buckets", fixed.iter().copied()),
            Series::from_updates("rebalanced", rebal.iter().copied()),
        ],
    });
    emit_table(&TextTable {
        id: "ablation_rebalance_summary".into(),
        title: "Rebalancing summary".into(),
        headers: vec![
            "Variant".into(),
            "Final long frac".into(),
            "Total long appends".into(),
        ],
        rows: vec![
            vec![
                "fixed".into(),
                format!("{:.3}", fixed.last().copied().unwrap_or(0.0)),
                fixed_appends.to_string(),
            ],
            vec![
                "rebalanced".into(),
                format!("{:.3}", rebal.last().copied().unwrap_or(0.0)),
                rebal_appends.to_string(),
            ],
        ],
    });
}
