//! Run the entire reproduction: every table and figure, in order, sharing
//! one prepared experiment where possible. Artifacts land in `results/`.
//!
//! This is the binary behind EXPERIMENTS.md; `INVIDX_QUICK=1` runs the
//! same code on the tiny corpus in seconds.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "tables234",
        "fig01",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "table5",
        "table6",
        "queries",
        "policy_grid",
        "baseline_rebuild",
        "baseline_cutting_pedersen",
        "ablation_freelist",
        "ablation_buckets",
        "ablation_scaling",
        "ablation_delete",
        "ablation_rebalance",
        "ablation_compression",
        "ablation_corpus_scale",
        "ablation_batch_size",
        "ablation_striping",
    ];
    let exe = std::env::current_exe().expect("self path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for bin in bins {
        println!("\n=== {bin} ===");
        let status = Command::new(dir.join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failed.push(bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to start: {e}");
                failed.push(bin);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall reproduction targets completed");
    } else {
        println!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
