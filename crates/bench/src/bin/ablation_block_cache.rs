//! Ablation: block-cache budget under a Zipf query workload.
//!
//! The paper charges every long-list read to the device; a block cache in
//! front of the disk model keeps the hot head of a Zipf-distributed query
//! stream resident. This ablation builds the same index four times with a
//! cache budget of 0 / 1% / 5% / 25% of the device blocks, replays the
//! same Zipf word stream against each, and reports hit rate and measured
//! device reads per long-list query.
//!
//! Two properties are asserted (CI runs this binary as a gate):
//!
//! * device reads per long-list query **strictly decrease** as the budget
//!   grows — the cache may never make the disk model busier;
//! * the hit rate at the 5% budget exceeds 0.5 — a Zipf stream's hot head
//!   fits in a small fraction of the device.

use invidx_bench::emit_table;
use invidx_core::index::{DualIndex, IndexConfig};
use invidx_core::policy::Policy;
use invidx_core::types::{DocId, WordId};
use invidx_core::WordLocation;
use invidx_corpus::{CorpusGenerator, CorpusParams};
use invidx_disk::sparse_array;
use invidx_sim::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DISKS: u16 = 2;
// Sized for the v2 directory format (each chunk entry carries its stream
// byte length); the budgets below are percentages of the device, so the
// gates are geometry-independent.
const BLOCKS_PER_DISK: u64 = 5_000;
const BLOCK_SIZE: usize = 512;
const QUERIES: usize = 2_000;

fn corpus() -> CorpusParams {
    CorpusParams {
        days: 3,
        docs_per_weekday: 400,
        vocab_ranks: 20_000,
        interrupted_day: None,
        ..CorpusParams::tiny()
    }
}

/// Build the index, returning it with the long-list byte counters
/// (`postings_bytes_raw` / `postings_bytes_stored`) sampled across the
/// build — under the plain codec the two are equal; a compressed codec
/// shows its ratio here (see `ablation_compression_ranked`).
fn build(cache_blocks: usize) -> (DualIndex, u64, u64) {
    let raw0 = invidx_obs::registry().counter(invidx_obs::names::POSTINGS_BYTES_RAW).get();
    let stored0 = invidx_obs::registry().counter(invidx_obs::names::POSTINGS_BYTES_STORED).get();
    let array = sparse_array(DISKS, BLOCKS_PER_DISK, BLOCK_SIZE);
    let config = IndexConfig::builder()
        .num_buckets(64)
        .bucket_capacity_units(100)
        .block_postings(25)
        .policy(Policy::balanced())
        .materialize_buckets(false)
        .cache_blocks(cache_blocks)
        .cache_shards(4)
        .build()
        .expect("valid config");
    let mut index = DualIndex::create(array, config).expect("create");
    let mut batch = Vec::new();
    for day in CorpusGenerator::new(corpus()) {
        for d in day.docs {
            batch.push((DocId(d.id + 1), d.word_ranks.into_iter().map(WordId).collect()));
            if batch.len() == 100 {
                index.insert_documents(std::mem::take(&mut batch), 1).expect("insert");
                index.flush_batch().expect("flush");
            }
        }
    }
    if !batch.is_empty() {
        index.insert_documents(batch, 1).expect("insert");
        index.flush_batch().expect("flush");
    }
    let raw = invidx_obs::registry().counter(invidx_obs::names::POSTINGS_BYTES_RAW).get() - raw0;
    let stored =
        invidx_obs::registry().counter(invidx_obs::names::POSTINGS_BYTES_STORED).get() - stored0;
    (index, raw, stored)
}

/// The Zipf word stream: rank r drawn with probability ∝ 1/r^1.2 over the
/// vocabulary (the classic query-log skew), same seed for every budget so
/// the streams are identical.
fn zipf_stream(vocab: u64, n: usize, seed: u64) -> Vec<WordId> {
    let weights: Vec<f64> = (1..=vocab).map(|r| 1.0 / (r as f64).powf(1.2)).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut u: f64 = rng.random::<f64>() * total;
            let mut rank = vocab;
            for (i, w) in weights.iter().enumerate() {
                u -= w;
                if u <= 0.0 {
                    rank = i as u64 + 1;
                    break;
                }
            }
            WordId(rank)
        })
        .collect()
}

fn main() {
    let stream = zipf_stream(corpus().vocab_ranks as u64, QUERIES, 9);
    let total_blocks = DISKS as u64 * BLOCKS_PER_DISK;
    let budgets = [(0u64, 0usize), (1, 0), (5, 0), (25, 0)]
        .map(|(pct, _)| (pct, (total_blocks * pct / 100) as usize));

    let mut rows = Vec::new();
    let mut reads_per_long = Vec::new();
    let mut hit_rate_at_5 = None;
    for (pct, budget) in budgets {
        let (index, bytes_raw, bytes_stored) = build(budget);
        index.array().take_trace(); // drop the build trace
        index.array().start_trace();
        let mut long_queries = 0u64;
        for &word in &stream {
            if matches!(index.location(word), WordLocation::Long) {
                long_queries += 1;
                index.postings(word).expect("query");
            }
        }
        let trace = index.array().take_trace();
        let device_reads = trace.ops.len() as u64;
        let per_long = device_reads as f64 / long_queries.max(1) as f64;
        let (hit_rate, hits, misses, evictions) = match index.cache_stats() {
            Some(s) => (s.hit_rate(), s.hits, s.misses, s.evictions),
            None => (0.0, 0, 0, 0),
        };
        if pct == 5 {
            hit_rate_at_5 = Some(hit_rate);
        }
        reads_per_long.push(per_long);
        invidx_obs::log_progress(
            "ablation",
            &format!(
                "budget {pct}% ({budget} blocks): {long_queries} long queries, \
                 {device_reads} device reads, hit rate {hit_rate:.3}"
            ),
        );
        rows.push(vec![
            format!("{pct}%"),
            budget.to_string(),
            long_queries.to_string(),
            device_reads.to_string(),
            format!("{per_long:.3}"),
            format!("{hit_rate:.3}"),
            hits.to_string(),
            misses.to_string(),
            evictions.to_string(),
            (bytes_raw / 1024).to_string(),
            (bytes_stored / 1024).to_string(),
        ]);
    }

    emit_table(&TextTable {
        id: "ablation_block_cache".into(),
        title: "Block-cache budget vs device reads (Zipf query stream)".into(),
        headers: vec![
            "Budget".into(),
            "Blocks".into(),
            "Long queries".into(),
            "Device reads".into(),
            "Reads/long query".into(),
            "Hit rate".into(),
            "Hits".into(),
            "Misses".into(),
            "Evictions".into(),
            "Raw KB".into(),
            "Stored KB".into(),
        ],
        rows,
    });

    for pair in reads_per_long.windows(2) {
        assert!(
            pair[1] < pair[0],
            "device reads per long-list query must strictly decrease with budget: {reads_per_long:?}"
        );
    }
    let rate = hit_rate_at_5.expect("5% budget ran");
    assert!(rate > 0.5, "hit rate at the 5% budget must exceed 0.5, got {rate:.3}");
    invidx_obs::log_progress("ablation", "block-cache gates passed");
}
