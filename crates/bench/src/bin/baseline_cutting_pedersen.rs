//! Baseline: the Cutting–Pedersen scheme (paper §6, reference [1]) vs the
//! dual-structure index, on identical batch updates.
//!
//! CP organizes the vocabulary in a B-tree with short lists inline in the
//! leaves ("a very small bucket for approximately each word") and long
//! lists in buddy-allocated power-of-two chunks. The paper's claims to
//! test: "using fewer, larger, buckets offer better performance [than
//! per-word leaf storage]", and the buddy system's "expected space
//! utilization is lower than the methods presented here; however it may
//! offer better update performance."

use invidx_bench::{emit_table, prepare, quick};
use invidx_btree::{CpConfig, CpIndex};
use invidx_core::policy::Policy;
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, WordId};
use invidx_disk::{exercise, BuddyAllocator, Disk, DiskArray, SparseDevice};
use invidx_sim::TextTable;
use std::collections::HashMap;

fn buddy_array(n: u16, blocks: u64, bs: usize) -> DiskArray {
    let disks = (0..n)
        .map(|_| Disk {
            device: Box::new(SparseDevice::new(blocks.next_power_of_two(), bs))
                as Box<dyn invidx_disk::BlockDevice>,
            alloc: Box::new(BuddyAllocator::covering(blocks)),
        })
        .collect();
    DiskArray::new(disks)
}

fn cp_run(exp: &invidx_sim::Experiment, cache_pages: usize) -> Vec<String> {
    let p = &exp.params;
    let mut array = buddy_array(p.disks, p.blocks_per_disk, p.block_size);
    array.start_trace();
    let config = CpConfig {
        block_postings: p.block_postings,
        inline_threshold: if quick() { 8 } else { 128 },
        cache_pages,
    };
    let mut cp = CpIndex::create(&mut array, config).expect("create");
    let mut counters: HashMap<WordId, u32> = HashMap::new();
    let wall = std::time::Instant::now();
    for batch in &exp.batches {
        for &(w, count) in &batch.pairs {
            let word = WordId(w);
            let c = counters.entry(word).or_insert(0);
            let list = PostingList::from_sorted((*c..*c + count).map(DocId).collect());
            *c += count;
            cp.append(&mut array, word, &list).expect("append");
        }
        cp.flush(&mut array).expect("flush");
        array.end_batch();
    }
    let cp_cpu = wall.elapsed();
    let (chunk_blocks, chunk_postings) = cp.space_stats(&mut array).expect("space");
    let cp_trace = array.take_trace();
    let cp_time = exercise(&cp_trace, &p.exercise_config());
    let total_used = array.total_blocks() - array.free_blocks();
    let cp_stats = cp.stats();
    let (hits, misses) = cp.tree().cache_stats();
    eprintln!(
        "CP(cache {cache_pages}): {} words, height {}, cache hit rate {:.3}, cpu {:.1}s, \
         {} inline updates / {} spills / {} in-place / {} regrows",
        cp.words(),
        cp.tree().height(),
        hits as f64 / (hits + misses).max(1) as f64,
        cp_cpu.as_secs_f64(),
        cp_stats.inline_updates,
        cp_stats.spills,
        cp_stats.in_place_updates,
        cp_stats.chunk_regrows,
    );
    vec![
        format!(
            "Cutting-Pedersen (cache {} MB)",
            cache_pages * p.block_size / (1 << 20)
        ),
        cp_trace.ops.len().to_string(),
        format!("{:.0}", cp_time.total_seconds()),
        total_used.to_string(),
        format!("{:.2}", chunk_postings as f64 / (chunk_blocks * p.block_postings).max(1) as f64),
    ]
}

fn main() {
    let exp = prepare();

    // Two buffer-pool sizes: one comparable to the dual index's
    // memory-resident bucket store, one large enough to hold the whole
    // tree (the best case for CP).
    let caches = if quick() { vec![64, 1024] } else { vec![1024, 16_384] };
    let mut rows: Vec<Vec<String>> = caches.into_iter().map(|c| cp_run(&exp, c)).collect();
    for policy in [Policy::balanced(), Policy::query_optimized(), Policy::update_optimized()] {
        let run = exp.run_policy(policy).expect("policy");
        rows.push(vec![
            format!("dual-structure ({})", policy.label()),
            run.disks.trace.ops.len().to_string(),
            format!("{:.0}", run.exercise.total_seconds()),
            run.disks.blocks_in_use.to_string(),
            format!("{:.2}", run.disks.final_utilization),
        ]);
    }
    emit_table(&TextTable {
        id: "baseline_cutting_pedersen".into(),
        title: "Cutting-Pedersen vs dual-structure on identical batches".into(),
        headers: vec![
            "Index".into(),
            "I/O ops".into(),
            "Build s".into(),
            "Blocks used".into(),
            "Long util".into(),
        ],
        rows,
    });
}
