//! Ablation: scatter-gather serving over shards with WAL-shipped read
//! replicas — does read throughput scale with the replica count while a
//! single writer keeps ingesting?
//!
//! The deployment under test is the real `invidx-router` stack, in
//! miniature: 2 shards, each a durable primary served over TCP (the
//! `WALTAIL` endpoint) with N durable read replicas kept caught up by
//! [`ReplicaTailer`]s. Every replica sits behind an admission
//! [`Frontend`] with **one** reader lane, and replica reads carry a
//! fixed simulated seek floor — the same move the rest of the repo makes
//! with simulated disks: the scarce resource is replica service
//! capacity, not the host's core count, so the scaling claim survives a
//! 2-core CI runner.
//!
//! Load is **open-loop**: a scheduler samples Poisson arrival times at a
//! fixed offered rate (deliberately above the 2-replica capacity) and
//! spawns one worker per arrival; workers never wait for each other, so
//! the arrival process doesn't slow down when the system saturates —
//! overload shows up as typed sheds, not as a politely throttled client.
//! Queries are a Zipf-weighted boolean mix.
//!
//! **Every successful response is oracle-checked** against an unsharded
//! twin: the full ingest schedule is known up front, the partitioner's
//! document→shard assignment is a pure function, and each shard's epoch
//! counts the batches that touched it — so for any response epoch vector
//! `(e0, e1)` the exactly-visible document set is computable, even while
//! replicas lag mid-catch-up. A brute-force evaluation over that set
//! must equal the routed answer, id for id.
//!
//! Reported per replica count: offered vs achieved throughput, shed
//! rate, latency percentiles, and scaling vs one replica. With
//! `INVIDX_MIN_SPEEDUP=<x>` the run exits non-zero unless 2-replica
//! goodput reaches `x`× the 1-replica goodput. With
//! `INVIDX_MAX_P99_MS=<ms>` it exits non-zero unless the best
//! configuration's p99 latency stays at or under `ms`.

use invidx_bench::{emit_table, init_metrics, quick};
use invidx_core::index::IndexConfig;
use invidx_corpus::vocab::word_string;
use invidx_corpus::zipf::ZipfTable;
use invidx_durable::{DurableOptions, StoreGeometry};
use invidx_ir::DurableEngine;
use invidx_router::{
    FrontendShard, Partitioner, ReadPolicy, ReplicaSet, ReplicaTailer, Router, ShardBackend,
    TailerOptions,
};
use invidx_serve::{Frontend, Payload, QueryService, Request, ServeConfig, Server};
use invidx_sim::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

const SHARDS: usize = 2;
const VOCAB_RANKS: usize = 600;
const WORDS_PER_DOC: usize = 10;
const ZIPF_S: f64 = 1.05;
/// Fixed service-time floor per replica read: models a seek-bound store,
/// so one reader lane sustains ~1/floor queries per second.
const SEEK_FLOOR: Duration = Duration::from_millis(2);

struct Scale {
    seed_batches: usize,
    live_batches: usize,
    docs_per_batch: usize,
    window: Duration,
    offered_rate: f64,
    replica_counts: Vec<usize>,
}

fn scale() -> Scale {
    if quick() {
        Scale {
            seed_batches: 5,
            live_batches: 6,
            docs_per_batch: 30,
            window: Duration::from_secs(3),
            offered_rate: 1_500.0,
            replica_counts: vec![1, 2],
        }
    } else {
        Scale {
            seed_batches: 10,
            live_batches: 12,
            docs_per_batch: 60,
            window: Duration::from_secs(6),
            offered_rate: 2_500.0,
            replica_counts: vec![1, 2, 4],
        }
    }
}

/// One query: conjunction of disjunction groups over vocabulary words —
/// renders to a `QUERY` line and brute-force evaluates against a word
/// set.
#[derive(Clone)]
struct PooledQuery {
    groups: Vec<Vec<String>>,
}

impl PooledQuery {
    fn request(&self) -> Request {
        let text = self
            .groups
            .iter()
            .map(|g| format!("({})", g.join(" or ")))
            .collect::<Vec<_>>()
            .join(" and ");
        Request::Boolean(text)
    }

    fn matches(&self, words: &HashSet<String>) -> bool {
        self.groups.iter().all(|g| g.iter().any(|w| words.contains(w)))
    }
}

fn make_queries(zipf: &ZipfTable, rng: &mut StdRng, pool: usize) -> Vec<PooledQuery> {
    (0..pool)
        .map(|_| {
            let groups = rng.random_range(1..=3);
            PooledQuery {
                groups: (0..groups)
                    .map(|_| {
                        (0..rng.random_range(1..=3))
                            .map(|_| word_string(zipf.sample(rng)))
                            .collect()
                    })
                    .collect(),
            }
        })
        .collect()
}

/// The full ingest schedule plus the pure-function partitioning facts the
/// oracle needs to name the visible set for *any* response epoch vector.
struct OracleData {
    /// Per global doc (0-indexed by `global - 1`): owning shard, global
    /// batch index, word set.
    docs: Vec<(usize, usize, HashSet<String>)>,
    /// Per shard: the global batch indices that delivered at least one
    /// document to it — shard epoch `e` means "the first `e` of these".
    touch: Vec<Vec<usize>>,
}

impl OracleData {
    fn build(schedule: &[Vec<String>], partitioner: Partitioner) -> Self {
        let mut docs = Vec::new();
        let mut touch = vec![Vec::new(); SHARDS];
        let mut global = 0u32;
        for (batch_idx, batch) in schedule.iter().enumerate() {
            let mut touched = [false; SHARDS];
            for text in batch {
                global += 1;
                let shard = partitioner.shard_of(global);
                touched[shard] = true;
                docs.push((
                    shard,
                    batch_idx,
                    text.split_whitespace().map(str::to_string).collect(),
                ));
            }
            for (shard, hit) in touched.iter().enumerate() {
                if *hit {
                    touch[shard].push(batch_idx);
                }
            }
        }
        Self { docs, touch }
    }

    /// The exact answer at epoch vector `epochs`: global ids, ascending.
    fn answer(&self, query: &PooledQuery, epochs: &[u64]) -> Vec<u32> {
        self.docs
            .iter()
            .enumerate()
            .filter(|(_, (shard, batch, words))| {
                let e = epochs[*shard] as usize;
                e > 0 && *batch <= self.touch[*shard][e - 1] && query.matches(words)
            })
            .map(|(i, _)| i as u32 + 1)
            .collect()
    }
}

fn make_batches(s: &Scale, zipf: &ZipfTable, rng: &mut StdRng) -> Vec<Vec<String>> {
    (0..s.seed_batches + s.live_batches)
        .map(|_| {
            (0..s.docs_per_batch)
                .map(|_| {
                    (0..WORDS_PER_DOC)
                        .map(|_| word_string(zipf.sample(rng)))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect()
        })
        .collect()
}

fn geom() -> StoreGeometry {
    StoreGeometry { disks: 2, blocks_per_disk: 20_000, block_size: 256 }
}

fn ship_opts() -> DurableOptions {
    DurableOptions { checkpoint_every: 0, ..DurableOptions::default() }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("invidx-sharding-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

struct RunOutcome {
    arrivals: u64,
    ok: u64,
    shed: u64,
    failed: u64,
    goodput: f64,
    latencies_us: Vec<u64>,
}

/// Build a fresh deployment with `replicas` replicas per shard, seed it,
/// then drive the open-loop window with a live writer. Every successful
/// response is oracle-checked.
#[allow(clippy::too_many_arguments)]
fn run_config(
    s: &Scale,
    replicas: usize,
    schedule: &Arc<Vec<Vec<String>>>,
    oracle: &Arc<OracleData>,
    queries: &Arc<Vec<PooledQuery>>,
    partitioner: Partitioner,
) -> RunOutcome {
    let cache_off = ServeConfig::builder().result_cache_capacity(0).build().unwrap();
    // One reader lane per replica, a short queue: saturated lanes shed
    // quickly instead of building seconds of queueing delay. The seek
    // floor models a device-bound replica read; with the lock-free
    // snapshot path it is injected at the service layer, since queries
    // no longer reach the engine (or its block device) at all.
    let lane = ServeConfig::builder()
        .result_cache_capacity(0)
        .readers(1)
        .high_water(16)
        .deadline(Duration::from_secs(2))
        .read_floor(SEEK_FLOOR)
        .build()
        .unwrap();

    let mut writers = Vec::new();
    let mut primary_servers = Vec::new();
    for shard in 0..SHARDS {
        let dir = tmpdir(&format!("r{replicas}-primary-{shard}"));
        let engine = DurableEngine::create(&dir, IndexConfig::small(), geom(), ship_opts())
            .expect("create primary");
        let service = Arc::new(QueryService::with_config_at(engine, cache_off, 0).expect("serve"));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service), cache_off).expect("bind");
        writers.push(service);
        primary_servers.push(server);
    }
    let mut tailers = Vec::new();
    let mut replica_services = Vec::new();
    let mut readers = Vec::new();
    for (shard, primary_server) in primary_servers.iter().enumerate() {
        let mut backends: Vec<Arc<dyn ShardBackend>> = Vec::new();
        for r in 0..replicas {
            let dir = tmpdir(&format!("r{replicas}-replica-{shard}-{r}"));
            let engine = DurableEngine::create(&dir, IndexConfig::small(), geom(), ship_opts())
                .expect("create replica");
            let service = Arc::new(QueryService::with_config_at(engine, lane, 0).expect("serve"));
            tailers.push(ReplicaTailer::start(
                Arc::clone(&service),
                primary_server.addr(),
                TailerOptions {
                    poll: Duration::from_millis(5),
                    timeout: Duration::from_secs(2),
                    shard,
                },
            ));
            let frontend = Arc::new(Frontend::start_with(Arc::clone(&service), lane));
            backends.push(Arc::new(FrontendShard::new(frontend, format!("s{shard}r{r}"))));
            replica_services.push((shard, service));
        }
        readers.push(ReplicaSet::new(backends).expect("replica set"));
    }
    let policy = ReadPolicy {
        deadline: Duration::from_secs(3),
        hedge_after: None,
        max_attempts: 1,
    };
    let router = Arc::new(
        Router::new(writers, readers, partitioner, policy).expect("router"),
    );

    // Seed, then let every replica reach parity before the clock starts.
    for batch in &schedule[..s.seed_batches] {
        router.ingest(batch).expect("seed ingest");
    }
    let parity = |target: &[u64]| {
        replica_services.iter().all(|(shard, svc)| svc.epoch() >= target[*shard])
    };
    let target = router.epochs();
    let t0 = Instant::now();
    while !parity(&target) {
        assert!(t0.elapsed() < Duration::from_secs(30), "replicas never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The live writer: the remaining batches, spread across the window.
    let live = schedule[s.seed_batches..].to_vec();
    let writer_router = Arc::clone(&router);
    let pause = s.window / (live.len() as u32 + 1);
    let writer = std::thread::spawn(move || {
        for batch in &live {
            std::thread::sleep(pause);
            writer_router.ingest(batch).expect("live ingest");
        }
    });

    // Open loop: Poisson arrivals at the offered rate, one detached
    // worker per arrival; latency is measured from the *scheduled*
    // arrival instant, so a backlogged system cannot hide queueing delay.
    let (tx, rx) = mpsc::channel::<(bool, bool, u64)>(); // (ok, shed, latency_us)
    let mismatches = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut arrivals = 0u64;
    let mut next = Duration::ZERO;
    let mut rng = StdRng::seed_from_u64(0x0FE11A + replicas as u64);
    let mut workers = Vec::new();
    while next < s.window {
        let due = started + next;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        arrivals += 1;
        let router = Arc::clone(&router);
        let queries = Arc::clone(queries);
        let oracle = Arc::clone(oracle);
        let tx = tx.clone();
        let mismatches = Arc::clone(&mismatches);
        let pick = rng.random_range(0..queries.len());
        workers.push(std::thread::spawn(move || {
            let query = &queries[pick];
            match router.execute(&query.request()) {
                Ok(resp) => {
                    let latency = due.elapsed().as_micros() as u64;
                    let Payload::Docs(got) = &resp.payload else {
                        panic!("boolean answered {:?}", resp.payload)
                    };
                    let want = oracle.answer(query, &resp.epochs);
                    if *got != want {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "MISMATCH at epochs {:?}: got {got:?}, oracle {want:?}",
                            resp.epochs
                        );
                    }
                    let _ = tx.send((true, false, latency));
                }
                Err(e) if e.code() == "overloaded" => {
                    let _ = tx.send((false, true, due.elapsed().as_micros() as u64));
                }
                Err(e) if e.code() == "timeout" => {
                    let _ = tx.send((false, false, due.elapsed().as_micros() as u64));
                }
                Err(e) => panic!("untyped failure under load: {e}"),
            }
        }));
        // Exponential inter-arrival at the offered rate; u < 1.0 so the
        // log never blows up.
        let u: f64 = rng.random();
        next += Duration::from_secs_f64(-(1.0 - u).ln() / s.offered_rate);
    }
    for w in workers {
        w.join().expect("worker");
    }
    let secs = started.elapsed().as_secs_f64();
    writer.join().expect("writer");
    drop(tx);

    let mut out = RunOutcome {
        arrivals,
        ok: 0,
        shed: 0,
        failed: 0,
        goodput: 0.0,
        latencies_us: Vec::new(),
    };
    for (ok, shed, latency) in rx {
        if ok {
            out.ok += 1;
            out.latencies_us.push(latency);
        } else if shed {
            out.shed += 1;
        } else {
            out.failed += 1;
        }
    }
    out.goodput = out.ok as f64 / secs;
    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "sharded serving returned results the unsharded oracle disagrees with"
    );
    assert!(out.ok > 0, "no successful responses at {replicas} replicas");

    // Drain: replicas reach parity with the final corpus, and a last
    // routed read at full parity equals the full-corpus oracle answer.
    let target = router.epochs();
    let t0 = Instant::now();
    while !parity(&target) {
        assert!(t0.elapsed() < Duration::from_secs(30), "replicas never re-converged");
        std::thread::sleep(Duration::from_millis(5));
    }
    let probe = &queries[0];
    let resp = router.execute(&probe.request()).expect("post-run probe");
    assert_eq!(
        resp.payload,
        Payload::Docs(oracle.answer(probe, &resp.epochs)),
        "post-run probe diverged at full parity"
    );
    drop(tailers);
    out
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

fn main() {
    init_metrics();
    let s = scale();
    let partitioner = Partitioner::Hash { shards: SHARDS };
    let zipf = ZipfTable::new(VOCAB_RANKS, ZIPF_S);
    let mut rng = StdRng::seed_from_u64(0x5AAD5EED);
    let schedule = Arc::new(make_batches(&s, &zipf, &mut rng));
    let queries = Arc::new(make_queries(&zipf, &mut rng, 64));
    let oracle = Arc::new(OracleData::build(&schedule, partitioner));
    invidx_obs::log_progress(
        "sharding",
        &format!(
            "{} shards, {} docs ({} live batches during the window), {:.0} req/s offered for {:?}",
            SHARDS,
            oracle.docs.len(),
            s.live_batches,
            s.offered_rate,
            s.window,
        ),
    );

    let mut rows = Vec::new();
    let mut baseline: Option<f64> = None;
    let mut speedup_at_2 = 1.0f64;
    let mut best_p99_ms = f64::INFINITY;
    for &replicas in &s.replica_counts {
        let mut out = run_config(&s, replicas, &schedule, &oracle, &queries, partitioner);
        let base = *baseline.get_or_insert(out.goodput);
        let scaling = out.goodput / base;
        if replicas == 2 {
            speedup_at_2 = scaling;
        }
        invidx_obs::log_progress(
            "sharding",
            &format!(
                "{replicas} replica(s): {:.0} ok/s of {:.0} offered ({} shed), {:.2}x",
                out.goodput, s.offered_rate, out.shed, scaling
            ),
        );
        out.latencies_us.sort_unstable();
        best_p99_ms = best_p99_ms.min(percentile(&out.latencies_us, 0.99));
        rows.push(vec![
            replicas.to_string(),
            format!("{:.0}", s.offered_rate),
            out.arrivals.to_string(),
            out.ok.to_string(),
            out.shed.to_string(),
            out.failed.to_string(),
            format!("{:.0}", out.goodput),
            format!("{:.2}", percentile(&out.latencies_us, 0.50)),
            format!("{:.2}", percentile(&out.latencies_us, 0.95)),
            format!("{scaling:.2}"),
        ]);
    }

    emit_table(&TextTable {
        id: "ablation_sharding".into(),
        title: format!(
            "Sharded serving: {SHARDS} shards, WAL-shipped replicas behind 1-lane frontends \
             ({}ms seek floor), open-loop Poisson load, live writer, every response \
             oracle-checked",
            SEEK_FLOOR.as_millis()
        ),
        headers: vec![
            "Replicas/shard".into(),
            "Offered/s".into(),
            "Arrivals".into(),
            "OK".into(),
            "Shed".into(),
            "Failed".into(),
            "Goodput/s".into(),
            "p50 ms".into(),
            "p95 ms".into(),
            "Scaling x".into(),
        ],
        rows,
    });

    if let Ok(min) = std::env::var("INVIDX_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("INVIDX_MIN_SPEEDUP must be a number");
        if speedup_at_2 < min {
            eprintln!("FAIL: 2-replica goodput scaling {speedup_at_2:.2}x < required {min:.2}x");
            std::process::exit(1);
        }
        println!("OK: 2-replica goodput scaling {speedup_at_2:.2}x >= {min:.2}x");
    }
    if let Ok(max) = std::env::var("INVIDX_MAX_P99_MS") {
        let max: f64 = max.parse().expect("INVIDX_MAX_P99_MS must be a number");
        if best_p99_ms > max {
            eprintln!("FAIL: best-config p99 {best_p99_ms:.2} ms > SLO {max:.2} ms");
            std::process::exit(1);
        }
        println!("OK: best-config p99 {best_p99_ms:.2} ms <= SLO {max:.2} ms");
    }
}
