//! Ablation: what does request tracing cost? The tracing layer is a
//! thread-local span stack behind one relaxed atomic load per stage site
//! (`trace_active()`), so the claim under test is "sampling off ≈ free,
//! and even modest sampling is cheap". A closed-loop client drives the
//! full admission → cache → engine → block-cache path in-process (no TCP,
//! so the measurement isolates the instrumented path itself) at three
//! sampling rates:
//!
//! * `off`    — `trace_sample 0`: every stage site is one atomic load.
//! * `1/64`   — production-style sampling: 1 in 64 requests carries
//!   a span stack and emits an NDJSON span tree.
//! * `all`    — `trace_sample 1`: worst case, every request traced.
//!
//! Rounds are interleaved (off/64/all, three times, best-of-3 per config)
//! so drift hits every config equally. The run **fails** (nonzero exit)
//! if sampled-at-1/64 throughput drops more than `INVIDX_TRACE_TOL`
//! (default 5%) below tracing-off throughput — the acceptance gate for
//! the observability stack; CI runs this in quick mode.

use invidx_bench::{emit_table, init_metrics, quick};
use invidx_core::index::IndexConfig;
use invidx_corpus::vocab::word_string;
use invidx_corpus::zipf::ZipfTable;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use invidx_obs::log_progress;
use invidx_serve::{Frontend, QueryService, Request, ServeConfig};
use invidx_sim::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

const VOCAB_RANKS: usize = 1_000;
const WORDS_PER_DOC: usize = 10;
const ZIPF_S: f64 = 1.05;
const ROUNDS: usize = 3;

struct Scale {
    docs: usize,
    requests: usize,
}

fn scale() -> Scale {
    if quick() {
        Scale { docs: 400, requests: 2_000 }
    } else {
        Scale { docs: 2_000, requests: 20_000 }
    }
}

fn tolerance() -> f64 {
    std::env::var("INVIDX_TRACE_TOL").ok().and_then(|v| v.parse().ok()).unwrap_or(0.05)
}

/// One serving stack at the given sampling rate, shared corpus text.
fn build_frontend(docs: &[String], trace_sample: u32) -> Frontend<SearchEngine> {
    let mut config = IndexConfig::small();
    config.cache_blocks = 128;
    let engine = SearchEngine::create(sparse_array(2, 200_000, 512), config).unwrap();
    let serve = ServeConfig::builder()
        .result_cache_capacity(256)
        .readers(2)
        .high_water(1_024)
        .trace_sample(trace_sample)
        .slow_query_ms(0) // keep the slow-query log out of the measurement
        .build()
        .expect("valid serve config");
    let service = Arc::new(QueryService::with_config(engine, serve).expect("serve"));
    service.ingest_batch(docs).expect("ingest");
    Frontend::start_with(service, serve)
}

/// Closed-loop run: `requests` boolean queries against one stack, qps out.
fn measure(fe: &Frontend<SearchEngine>, queries: &[Request], requests: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(0x7EACE);
    let t = Instant::now();
    for _ in 0..requests {
        let req = &queries[rng.random_range(0..queries.len())];
        fe.call(req.clone()).expect("query");
    }
    requests as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    init_metrics();
    let s = scale();
    let zipf = ZipfTable::new(VOCAB_RANKS, ZIPF_S);
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let docs: Vec<String> = (0..s.docs)
        .map(|_| {
            (0..WORDS_PER_DOC)
                .map(|_| word_string(zipf.sample(&mut rng)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    let queries: Vec<Request> = (0..64)
        .map(|i| {
            let mut w = || word_string(zipf.sample(&mut rng));
            match i % 3 {
                0 => Request::Boolean(w()),
                1 => Request::Boolean(format!("{} and {}", w(), w())),
                _ => Request::Boolean(format!("({} or {}) and {}", w(), w(), w())),
            }
        })
        .collect();

    let configs: [(&str, u32); 3] = [("off", 0), ("1/64", 64), ("all", 1)];
    let stacks: Vec<Frontend<SearchEngine>> =
        configs.iter().map(|&(_, rate)| build_frontend(&docs, rate)).collect();
    // Warm each stack once (block cache residency, result cache fill) so
    // the measured rounds compare steady states.
    for fe in &stacks {
        measure(fe, &queries, s.requests / 4);
    }
    let mut best = [0.0f64; 3];
    for round in 0..ROUNDS {
        for (i, fe) in stacks.iter().enumerate() {
            let qps = measure(fe, &queries, s.requests);
            best[i] = best[i].max(qps);
            log_progress(
                "ablation_tracing",
                &format!("round {} {:>4}: {:.0} qps", round + 1, configs[i].0, qps),
            );
        }
    }
    for fe in stacks {
        fe.shutdown();
    }

    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&best)
        .map(|(&(label, rate), &qps)| {
            vec![
                label.to_string(),
                if rate == 0 { "-".into() } else { format!("1/{rate}") },
                format!("{qps:.0}"),
                format!("{:+.1}%", (qps / best[0] - 1.0) * 100.0),
            ]
        })
        .collect();
    emit_table(&TextTable {
        id: "ablation_tracing".into(),
        title: "request tracing overhead (closed loop, best of 3 interleaved rounds)".into(),
        headers: ["sampling", "rate", "qps", "vs off"].map(String::from).to_vec(),
        rows,
    });

    // The self-gate: production-style sampling must stay within tolerance
    // of tracing disabled.
    let tol = tolerance();
    let floor = best[0] * (1.0 - tol);
    assert!(
        best[1] >= floor,
        "tracing at 1/64 regressed throughput beyond {:.0}%: {:.0} qps vs {:.0} qps off",
        tol * 100.0,
        best[1],
        best[0],
    );
    log_progress(
        "ablation_tracing",
        &format!(
            "gate ok: 1/64 sampling at {:.1}% of off ({:.0}% tolerance)",
            best[1] / best[0] * 100.0,
            tol * 100.0
        ),
    );
}
