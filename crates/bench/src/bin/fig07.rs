//! Figure 7: the fraction of words per update in each category — new
//! words, bucket words, long words — across the 73 daily updates. Shows
//! the bucket fill-up phase, the linear decline as words overflow to long
//! lists, and the 7-day Saturday periodicity.

use invidx_bench::{emit_figure, prepare};
use invidx_sim::{Figure, Series};

fn main() {
    let exp = prepare();
    let cats = &exp.buckets.categories;
    emit_figure(&Figure {
        id: "figure07".into(),
        title: "Fraction of words per update in each category".into(),
        x_label: "update".into(),
        y_label: "fraction".into(),
        series: vec![
            Series::from_updates("new words", cats.iter().map(|c| c.frac_new())),
            Series::from_updates("bucket words", cats.iter().map(|c| c.frac_bucket())),
            Series::from_updates("long words", cats.iter().map(|c| c.frac_long())),
        ],
    });
    // The weekly periodicity check: Saturdays have the smallest updates
    // and hence the highest long-word fractions in their neighbourhood.
    let days = &exp.params.corpus;
    let saturdays: Vec<usize> =
        (0..cats.len()).filter(|&d| days.weekday(d) == 5).collect();
    let mut peaks = 0;
    for &s in &saturdays {
        if s > 0 && s + 1 < cats.len() {
            let here = cats[s].frac_long();
            if here >= cats[s - 1].frac_long() && here >= cats[s + 1].frac_long() {
                peaks += 1;
            }
        }
    }
    println!(
        "Saturday long-word peaks: {peaks} of {} interior Saturdays",
        saturdays.iter().filter(|&&s| s > 0 && s + 1 < cats.len()).count()
    );
}
