//! Ablation: parallel batch ingest. Sweeps the ingest-thread count over
//! the same text corpus and measures wall-clock ingest time (lexing,
//! interning, inversion, flush). Lexing and inversion are pure CPU work
//! spread across the pool; interning, directory updates, and the commit
//! point stay sequential, so the sweep shows how far the parallel
//! pipeline bends the curve while the oracle tests guarantee the output
//! is byte-identical.
//!
//! With `INVIDX_MIN_SPEEDUP=<x>` the run exits non-zero unless the
//! 4-thread configuration reaches at least `x`× the single-thread
//! throughput — the CI smoke gate.

use invidx_bench::{emit_table, quick};
use invidx_core::index::IndexConfig;
use invidx_corpus::{CorpusGenerator, CorpusParams};
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use invidx_sim::TextTable;
use std::time::Instant;

fn corpus() -> CorpusParams {
    CorpusParams {
        days: if quick() { 2 } else { 4 },
        docs_per_weekday: if quick() { 300 } else { 1_000 },
        vocab_ranks: 50_000,
        interrupted_day: None,
        ..CorpusParams::tiny()
    }
}

/// Render a generated document's word ranks as text so ingest exercises
/// the real lexer; each rank becomes a distinct token, repeated to give
/// the tokenizer a realistic news-article amount of raw text per document
/// (real documents repeat their vocabulary heavily — the paper's corpus
/// averages ~0.5 KB of text per distinct word).
fn render(word_ranks: &[u64]) -> String {
    let mut text = String::with_capacity(word_ranks.len() * 200);
    text.push_str("body:\n");
    for r in word_ranks {
        for k in 0..24u64 {
            text.push('t');
            text.push_str(&r.to_string());
            text.push(if k % 8 == 7 { '\n' } else { ' ' });
        }
    }
    text
}

fn ingest(texts: &[&str], threads: usize, batch_docs: usize) -> (f64, usize, u64) {
    let array = sparse_array(4, 2_000_000, 512);
    let config = IndexConfig { ingest_threads: threads, ..IndexConfig::small() };
    let mut engine = SearchEngine::create(array, config).expect("create");
    let start = Instant::now();
    for group in texts.chunks(batch_docs) {
        engine.add_documents(group).expect("add");
        engine.flush().expect("flush");
    }
    (start.elapsed().as_secs_f64(), engine.vocabulary_size(), engine.index().batches())
}

fn main() {
    let texts: Vec<String> = CorpusGenerator::new(corpus())
        .flat_map(|day| day.docs.into_iter())
        .map(|d| render(&d.word_ranks))
        .collect();
    let refs: Vec<&str> = texts.iter().map(|t| t.as_str()).collect();
    invidx_obs::log_progress(
        "ablation",
        &format!("{} documents, {} bytes of text", refs.len(), texts.iter().map(String::len).sum::<usize>()),
    );

    let batch_docs = 500;
    let mut rows = Vec::new();
    let mut baseline = None;
    let mut speedup_at_4 = 1.0f64;
    let mut reference: Option<(usize, u64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let (secs, vocab, batches) = ingest(&refs, threads, batch_docs);
        // Cheap determinism cross-check on top of the oracle tests: every
        // thread count must build the same vocabulary and batch count.
        match reference {
            None => reference = Some((vocab, batches)),
            Some(expected) => assert_eq!((vocab, batches), expected, "threads={threads}"),
        }
        let base = *baseline.get_or_insert(secs);
        let speedup = base / secs;
        if threads == 4 {
            speedup_at_4 = speedup;
        }
        rows.push(vec![
            threads.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", refs.len() as f64 / secs),
            format!("{speedup:.2}"),
        ]);
    }
    emit_table(&TextTable {
        id: "ablation_parallel_ingest".into(),
        title: "Parallel ingest: threads vs wall-clock (sharded invert + per-disk apply)".into(),
        headers: vec!["Threads".into(), "Ingest s".into(), "Docs/s".into(), "Speedup".into()],
        rows,
    });

    if let Ok(min) = std::env::var("INVIDX_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("INVIDX_MIN_SPEEDUP must be a number");
        if speedup_at_4 < min {
            eprintln!("FAIL: 4-thread speedup {speedup_at_4:.2}x < required {min:.2}x");
            std::process::exit(1);
        }
        println!("OK: 4-thread speedup {speedup_at_4:.2}x >= {min:.2}x");
    }
}
