//! Ablation: striping long lists across disks. The paper asks (§1): "If
//! multiple disks are available, can we stripe large lists across multiple
//! disks to improve performance?" and notes that the fill style's extents
//! "can be written to disk and read in parallel (e.g., with a disk array)"
//! (§5.4).
//!
//! Measured here: the time to read ONE long list of growing size under
//! whole (one contiguous chunk, one disk: one seek, serial transfer) vs
//! fill with several extent sizes (many seeks, but 8-way parallel
//! transfer). Expected: whole wins for short lists (seek-dominated); fill
//! overtakes once the serial transfer time of a single disk exceeds the
//! extra seeks amortized over all disks.

use invidx_bench::emit_table;
use invidx_core::longlist::{LongConfig, LongStore};
use invidx_core::policy::{Alloc, Limit, Policy, Style};
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, WordId};
use invidx_disk::{exercise, sparse_array, DiskProfile, ExerciseConfig};
use invidx_sim::TextTable;

const BLOCK_SIZE: usize = 4096;
const BLOCK_POSTINGS: u64 = 100;
const DISKS: u16 = 8;

/// Build one list of `postings` postings under `policy` and return the
/// modeled seconds to read it back (a single query batch: per-disk
/// parallel service).
fn read_time(policy: Policy, postings: u32) -> (f64, u64) {
    let mut array = sparse_array(DISKS, 2_000_000, BLOCK_SIZE);
    let mut store =
        LongStore::new(LongConfig {
        block_postings: BLOCK_POSTINGS,
        policy,
        codec: Default::default(),
    });
    let word = WordId(1);
    // Load in ten updates so fill actually distributes across disks.
    let step = (postings / 10).max(1);
    let mut start = 0u32;
    while start < postings {
        let end = (start + step).min(postings);
        let list = PostingList::from_sorted((start..end).map(DocId).collect());
        store.append(&mut array, word, &list).expect("append");
        store.free_released(&mut array).expect("release");
        start = end;
    }
    array.start_trace();
    let got = store.read_list(&array, None, word).expect("read");
    assert_eq!(got.len(), postings as usize);
    let mut trace = array.take_trace();
    trace.end_batch();
    let cfg = ExerciseConfig {
        profile: DiskProfile::seagate_1994(BLOCK_SIZE),
        disks: DISKS,
        buffer_blocks: 1 << 20, // queries may read a whole chunk at once
    };
    let ops = trace.ops.len() as u64;
    (exercise(&trace, &cfg).total_seconds(), ops)
}

fn main() {
    let policies = vec![
        ("whole z", Policy::new(Style::Whole, Limit::Fits, Alloc::Constant { k: 0 })),
        ("fill e=4", Policy::new(Style::Fill { extent_blocks: 4 }, Limit::Fits, Alloc::Constant { k: 0 })),
        ("fill e=16", Policy::new(Style::Fill { extent_blocks: 16 }, Limit::Fits, Alloc::Constant { k: 0 })),
        ("fill e=64", Policy::new(Style::Fill { extent_blocks: 64 }, Limit::Fits, Alloc::Constant { k: 0 })),
    ];
    let mut rows = Vec::new();
    for postings in [1_000u32, 10_000, 100_000, 1_000_000] {
        for (name, policy) in &policies {
            let (secs, ops) = read_time(*policy, postings);
            rows.push(vec![
                postings.to_string(),
                name.to_string(),
                ops.to_string(),
                format!("{:.1}", secs * 1e3),
            ]);
        }
    }
    emit_table(&TextTable {
        id: "ablation_striping".into(),
        title: format!(
            "Single-list read latency: contiguous vs striped extents ({DISKS} disks)"
        ),
        headers: vec![
            "Postings".into(),
            "Layout".into(),
            "Read ops".into(),
            "Read ms".into(),
        ],
        rows,
    });
}
