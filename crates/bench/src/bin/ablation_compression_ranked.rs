//! Ablation: real compressed postings under a ranked Zipf workload.
//!
//! Where `ablation_compression` models compression through the
//! `BlockPosting` knob, this ablation measures the *actual* codec layer:
//! the same corpus is built twice — plain fixed-width postings vs
//! bit-packed coding-block streams — and the same Zipf-seeded BM25 query
//! stream replays against both at several block-cache budgets.
//!
//! Three properties are asserted (CI runs this binary as a gate):
//!
//! * at **every** cache budget the compressed build answers the ranked
//!   stream with strictly fewer device blocks read than the plain build —
//!   compression must turn smaller streams into fewer block fetches, not
//!   just smaller files (uncached, one read *op* per chunk survives either
//!   way, but it covers fewer blocks; with a cache the op count drops too
//!   because the same budget holds more of the hot set);
//! * WAND early-terminated top-k is **bit-identical** to the exhaustive
//!   scorer on every query of the stream (checked on both builds);
//! * ranked results are **bit-identical across codecs** — the codec is a
//!   storage layout, never a scoring change — and the stored long-list
//!   bytes actually shrink (`postings_bytes_stored < postings_bytes_raw`).

use invidx_bench::emit_table;
use invidx_core::codec::PostingsCodec;
use invidx_core::index::IndexConfig;
use invidx_core::policy::Policy;
use invidx_corpus::vocab::word_string;
use invidx_corpus::{doc, CorpusGenerator, CorpusParams};
use invidx_disk::sparse_array;
use invidx_ir::{Bm25Params, Hit, SearchEngine};
use invidx_obs::names;
use invidx_sim::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DISKS: u16 = 2;
const BLOCKS_PER_DISK: u64 = 6_000;
const BLOCK_SIZE: usize = 512;
const QUERIES: usize = 400;
const TOP_K: usize = 10;

fn corpus() -> CorpusParams {
    CorpusParams {
        days: 3,
        docs_per_weekday: 300,
        vocab_ranks: 20_000,
        interrupted_day: None,
        ..CorpusParams::tiny()
    }
}

/// Build the engine with the given codec and cache budget, returning it
/// with the long-list byte counters sampled across the build.
fn build(codec: PostingsCodec, cache_blocks: usize) -> (SearchEngine, u64, u64) {
    let raw0 = invidx_obs::registry().counter(names::POSTINGS_BYTES_RAW).get();
    let stored0 = invidx_obs::registry().counter(names::POSTINGS_BYTES_STORED).get();
    let array = sparse_array(DISKS, BLOCKS_PER_DISK, BLOCK_SIZE);
    let config = IndexConfig::builder()
        .num_buckets(64)
        .bucket_capacity_units(100)
        .block_postings(25)
        .policy(Policy::balanced())
        .materialize_buckets(false)
        .cache_blocks(cache_blocks)
        .cache_shards(4)
        .postings_codec(codec)
        .build()
        .expect("valid config");
    let mut engine = SearchEngine::create(array, config).expect("create");
    for day in CorpusGenerator::new(corpus()) {
        for d in &day.docs {
            engine.add_document(&doc::render(d)).expect("add");
        }
        engine.flush().expect("flush");
    }
    let raw = invidx_obs::registry().counter(names::POSTINGS_BYTES_RAW).get() - raw0;
    let stored = invidx_obs::registry().counter(names::POSTINGS_BYTES_STORED).get() - stored0;
    (engine, raw, stored)
}

/// The ranked query stream: two words per query, ranks drawn Zipf-style
/// (∝ 1/r^1.2) over the head of the vocabulary — the classic query-log
/// skew, same seed for every build so the streams are identical.
fn query_stream(n: usize, seed: u64) -> Vec<String> {
    const HEAD: u64 = 2_000;
    let weights: Vec<f64> = (1..=HEAD).map(|r| 1.0 / (r as f64).powf(1.2)).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let draw = |rng: &mut StdRng| {
        let mut u: f64 = rng.random::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i as u64 + 1;
            }
        }
        HEAD
    };
    (0..n)
        .map(|_| {
            let a = draw(&mut rng);
            let b = draw(&mut rng);
            format!("{} {}", word_string(a), word_string(b))
        })
        .collect()
}

fn bits(hits: &[Hit]) -> Vec<(u32, u64)> {
    hits.iter().map(|h| (h.doc.0, h.score.to_bits())).collect()
}

fn main() {
    invidx_bench::init_metrics();
    let stream = query_stream(QUERIES, 11);
    let params = Bm25Params::default();
    let total_blocks = DISKS as u64 * BLOCKS_PER_DISK;
    let budgets: Vec<(u64, usize)> =
        [0u64, 1, 5].iter().map(|&pct| (pct, (total_blocks * pct / 100) as usize)).collect();

    let mut rows = Vec::new();
    // reads[codec-index][budget-index]
    let mut reads = vec![Vec::new(); 2];
    let mut plain_answers: Vec<Vec<(u32, u64)>> = Vec::new();
    for (ci, codec) in [PostingsCodec::Plain, PostingsCodec::BitPacked].into_iter().enumerate() {
        for (bi, &(pct, budget)) in budgets.iter().enumerate() {
            let (engine, raw, stored) = build(codec, budget);
            engine.index().array().take_trace(); // drop the build trace
            engine.index().array().start_trace();
            let answers: Vec<Vec<(u32, u64)>> =
                stream.iter().map(|q| bits(&engine.rank(q, TOP_K, params).expect("rank"))).collect();
            let trace = engine.index().array().take_trace();
            let device_reads = trace.ops.len() as u64;
            let device_blocks: u64 = trace.ops.iter().map(|o| o.blocks).sum();

            // Gate: WAND must be bit-identical to the exhaustive scorer.
            for (q, got) in stream.iter().zip(&answers) {
                let brute = bits(&engine.rank_exhaustive(q, TOP_K, params).expect("exhaustive"));
                assert_eq!(got, &brute, "WAND diverged from exhaustive on {q:?} ({codec})");
            }
            // Gate: the codec is a storage layout, not a scoring change.
            if ci == 0 {
                if bi == 0 {
                    plain_answers = answers;
                }
            } else {
                assert_eq!(
                    answers, plain_answers,
                    "ranked answers changed across codecs at budget {pct}%"
                );
            }
            reads[ci].push(device_blocks);
            invidx_obs::log_progress(
                "ablation",
                &format!(
                    "{codec} @ {pct}%: {device_reads} device reads over \
                     {device_blocks} blocks, {} KB raw -> {} KB stored",
                    raw / 1024,
                    stored / 1024
                ),
            );
            rows.push(vec![
                codec.to_string(),
                format!("{pct}%"),
                QUERIES.to_string(),
                device_reads.to_string(),
                device_blocks.to_string(),
                format!("{:.3}", device_blocks as f64 / QUERIES as f64),
                (raw / 1024).to_string(),
                (stored / 1024).to_string(),
                format!("{:.2}", raw as f64 / stored.max(1) as f64),
            ]);
            // Gate: compression must actually shrink the stored bytes.
            if codec.is_compressed() {
                assert!(stored < raw, "{codec}: stored {stored} B did not shrink below {raw} B");
            } else {
                assert_eq!(stored, raw, "plain stores postings verbatim");
            }
        }
    }

    emit_table(&TextTable {
        id: "ablation_compression_ranked".into(),
        title: "Postings codec vs device reads (BM25 Zipf query stream)".into(),
        headers: vec![
            "Codec".into(),
            "Cache budget".into(),
            "Queries".into(),
            "Device reads".into(),
            "Device blocks".into(),
            "Blocks/query".into(),
            "Raw KB".into(),
            "Stored KB".into(),
            "Ratio".into(),
        ],
        rows,
    });

    for (bi, (pct, _)) in budgets.iter().enumerate() {
        assert!(
            reads[1][bi] < reads[0][bi],
            "compressed build must read strictly fewer device blocks at budget {pct}%: \
             plain {} vs bitpacked {}",
            reads[0][bi],
            reads[1][bi]
        );
    }
    invidx_obs::log_progress("ablation", "compression+ranked gates passed");
}
