//! Ablation: in-place dual-structure engine vs the segment-tiered engine.
//!
//! The paper's engine folds every batch into its buckets and long lists in
//! place; the segmented engine caps that machinery at an L0 byte budget,
//! seals overflow into immutable segments, and pays merges later. This
//! ablation builds the same corpus through both engines over the same disk
//! model and reports, per engine:
//!
//! * ingest throughput (docs/s over the full build),
//! * write amplification (device bytes written during the build per byte
//!   live at the end — the tiered engine rewrites data at every merge),
//! * read cost (device reads per query over an identical Zipf stream).
//!
//! Three properties are asserted (CI runs this binary as a gate):
//!
//! * both engines return **identical postings** for every sampled word,
//!   deletes included — the tiering must be invisible to queries;
//! * the segmented build actually tiers: at least one seal *and* one merge;
//! * every query answer is reproduced after the compactor is driven to
//!   quiescence — compaction must also be invisible.

use invidx_bench::emit_table;
use invidx_core::index::{DualIndex, EngineKind, IndexConfig};
use invidx_core::policy::Policy;
use invidx_core::types::{DocId, WordId};
use invidx_corpus::{CorpusGenerator, CorpusParams};
use invidx_disk::trace::OpKind;
use invidx_disk::{sparse_array, DiskArray};
use invidx_segment::SegmentedIndex;
use invidx_sim::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const DISKS: u16 = 3;
const BLOCKS_PER_DISK: u64 = 40_000;
const BLOCK_SIZE: usize = 512;
const BATCH_DOCS: usize = 100;
const QUERIES: usize = 2_000;
/// Every Nth document is deleted mid-build, so tombstone filtering is on
/// the parity path.
const DELETE_EVERY: u32 = 37;

fn corpus() -> CorpusParams {
    CorpusParams {
        days: 3,
        docs_per_weekday: 400,
        vocab_ranks: 20_000,
        interrupted_day: None,
        ..CorpusParams::tiny()
    }
}

fn config(engine: EngineKind) -> IndexConfig {
    IndexConfig::builder()
        .num_buckets(64)
        .bucket_capacity_units(100)
        .block_postings(25)
        .policy(Policy::balanced())
        .materialize_buckets(true)
        .engine(engine)
        .build()
        .expect("valid config")
}

fn array() -> DiskArray {
    sparse_array(DISKS, BLOCKS_PER_DISK, BLOCK_SIZE)
}

/// The corpus as `(doc, words)` batches, identical for both engines.
fn batches() -> Vec<Vec<(DocId, Vec<WordId>)>> {
    let mut out = Vec::new();
    let mut batch = Vec::new();
    for day in CorpusGenerator::new(corpus()) {
        for d in day.docs {
            batch.push((DocId(d.id + 1), d.word_ranks.into_iter().map(WordId).collect()));
            if batch.len() == BATCH_DOCS {
                out.push(std::mem::take(&mut batch));
            }
        }
    }
    if !batch.is_empty() {
        out.push(batch);
    }
    out
}

/// Zipf word stream: rank r with probability ∝ 1/r^1.2, fixed seed so both
/// engines replay the identical stream.
fn zipf_stream(vocab: u64, n: usize, seed: u64) -> Vec<WordId> {
    let weights: Vec<f64> = (1..=vocab).map(|r| 1.0 / (r as f64).powf(1.2)).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut u: f64 = rng.random::<f64>() * total;
            let mut rank = vocab;
            for (i, w) in weights.iter().enumerate() {
                u -= w;
                if u <= 0.0 {
                    rank = i as u64 + 1;
                    break;
                }
            }
            WordId(rank)
        })
        .collect()
}

/// What one engine's run produces, measured identically for both.
struct RunStats {
    label: &'static str,
    docs: u64,
    ingest_secs: f64,
    build_write_bytes: u64,
    live_blocks: u64,
    device_reads: u64,
    postings: Vec<(WordId, Vec<DocId>)>,
    seals: u64,
    merges: u64,
    levels: String,
}

impl RunStats {
    /// Device bytes written during the build per live byte at the end.
    fn write_amplification(&self) -> f64 {
        let live = self.live_blocks * BLOCK_SIZE as u64;
        if live == 0 {
            return 0.0;
        }
        self.build_write_bytes as f64 / live as f64
    }
}

fn live_blocks(a: &DiskArray) -> u64 {
    a.per_disk_usage().iter().map(|&(free, total)| total - free).sum()
}

enum Engine {
    InPlace(DualIndex),
    Segmented(SegmentedIndex),
}

impl Engine {
    fn insert_documents(&mut self, docs: Vec<(DocId, Vec<WordId>)>) {
        match self {
            Self::InPlace(ix) => ix.insert_documents(docs, 1).expect("insert"),
            Self::Segmented(ix) => ix.insert_documents(docs, 1).expect("insert"),
        }
    }

    fn delete_document(&mut self, doc: DocId) {
        match self {
            Self::InPlace(ix) => ix.delete_document(doc),
            Self::Segmented(ix) => ix.delete_document(doc),
        }
    }

    fn flush(&mut self) {
        match self {
            Self::InPlace(ix) => {
                ix.flush_batch().expect("flush");
            }
            Self::Segmented(ix) => {
                ix.flush_batch().expect("flush");
            }
        }
    }

    fn postings(&self, word: WordId) -> Vec<DocId> {
        let list = match self {
            Self::InPlace(ix) => ix.postings(word).expect("postings"),
            Self::Segmented(ix) => ix.postings(word).expect("postings"),
        };
        list.docs().to_vec()
    }

    fn array(&self) -> &DiskArray {
        match self {
            Self::InPlace(ix) => ix.array(),
            Self::Segmented(ix) => ix.array(),
        }
    }
}

fn run(label: &'static str, engine_kind: EngineKind, stream: &[WordId]) -> RunStats {
    let cfg = config(engine_kind);
    let mut engine = match engine_kind {
        EngineKind::InPlace => Engine::InPlace(DualIndex::create(array(), cfg).expect("create")),
        EngineKind::Segmented { .. } => {
            Engine::Segmented(SegmentedIndex::create(array(), cfg).expect("create"))
        }
    };

    engine.array().start_trace();
    let start = Instant::now();
    let mut docs = 0u64;
    let mut next_doc = 1u32;
    for batch in batches() {
        docs += batch.len() as u64;
        let last = next_doc + batch.len() as u32;
        engine.insert_documents(batch);
        // Deletes land in the batch after their document was flushed.
        while next_doc < last {
            if next_doc.is_multiple_of(DELETE_EVERY) {
                engine.delete_document(DocId(next_doc));
            }
            next_doc += 1;
        }
        engine.flush();
    }
    let ingest_secs = start.elapsed().as_secs_f64();
    let trace = engine.array().take_trace();
    let build_write_bytes: u64 = trace
        .ops
        .iter()
        .filter(|op| op.kind == OpKind::Write)
        .map(|op| op.blocks)
        .sum::<u64>()
        * BLOCK_SIZE as u64;
    let live = live_blocks(engine.array());

    engine.array().start_trace();
    for &word in stream {
        engine.postings(word);
    }
    let query_trace = engine.array().take_trace();
    let device_reads = query_trace.count(|op| op.kind == OpKind::Read);

    // Snapshot postings for the parity gate: the whole hot head plus a
    // spread of the tail.
    let mut sample: Vec<WordId> = (1..=64).map(WordId).collect();
    sample.extend((1..=40u64).map(|i| WordId(i * 479)));
    let postings = sample.into_iter().map(|w| (w, engine.postings(w))).collect();

    let (seals, merges, levels) = match &engine {
        Engine::InPlace(_) => (0, 0, "-".to_string()),
        Engine::Segmented(ix) => {
            let s = ix.stats();
            let levels = s
                .levels
                .iter()
                .map(|(l, n, b)| format!("L{l}:{n}({b}blk)"))
                .collect::<Vec<_>>()
                .join(" ");
            (s.seals, s.merges, if levels.is_empty() { "-".into() } else { levels })
        }
    };

    invidx_obs::log_progress(
        "ablation",
        &format!(
            "{label}: {docs} docs in {ingest_secs:.2}s, {build_write_bytes} B written, \
             {live} live blocks, {device_reads} device reads over {} queries",
            stream.len()
        ),
    );

    RunStats {
        label,
        docs,
        ingest_secs,
        build_write_bytes,
        live_blocks: live,
        device_reads,
        postings,
        seals,
        merges,
        levels,
    }
}

fn main() {
    let stream = zipf_stream(corpus().vocab_ranks as u64, QUERIES, 11);
    let inplace = run("in-place", EngineKind::InPlace, &stream);
    let segmented = run(
        "segmented",
        EngineKind::Segmented { l0_budget: 48 * 1024, fanout: 3 },
        &stream,
    );

    let mut rows = Vec::new();
    for s in [&inplace, &segmented] {
        rows.push(vec![
            s.label.to_string(),
            s.docs.to_string(),
            format!("{:.0}", s.docs as f64 / s.ingest_secs.max(1e-9)),
            s.build_write_bytes.to_string(),
            (s.live_blocks * BLOCK_SIZE as u64).to_string(),
            format!("{:.2}", s.write_amplification()),
            format!("{:.3}", s.device_reads as f64 / QUERIES as f64),
            s.seals.to_string(),
            s.merges.to_string(),
            s.levels.clone(),
        ]);
    }
    emit_table(&TextTable {
        id: "ablation_lsm".into(),
        title: "In-place vs segment-tiered engine (same corpus, same disks)".into(),
        headers: vec![
            "Engine".into(),
            "Docs".into(),
            "Docs/s".into(),
            "Bytes written".into(),
            "Bytes live".into(),
            "Write amp".into(),
            "Reads/query".into(),
            "Seals".into(),
            "Merges".into(),
            "Levels".into(),
        ],
        rows,
    });

    // Gate 1: the tiering is invisible to queries.
    assert_eq!(inplace.postings.len(), segmented.postings.len());
    for ((w1, p1), (w2, p2)) in inplace.postings.iter().zip(&segmented.postings) {
        assert_eq!(w1, w2);
        assert_eq!(p1, p2, "postings diverge for word {}", w1.0);
    }
    // Gate 2: the segmented build actually tiered.
    assert!(segmented.seals > 0, "no seal happened; shrink the L0 budget");
    assert!(segmented.merges > 0, "no merge happened; shrink the fanout");
    invidx_obs::log_progress("ablation", "lsm gates passed");
}
