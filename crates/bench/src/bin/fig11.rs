//! Figure 11: the impact of the proportional allocation constant k on
//! long-list utilization in the final index, for the new and whole styles
//! (fill with 4-block extents shown flat for comparison). Expected shape:
//! utilization falls as k rises; the new style shows a cusp at k = 2
//! because successive updates to a word have similar sizes, so k = 2
//! reserves space for exactly one further in-place update.

use invidx_bench::{emit_figure, prepare, quick};
use invidx_core::policy::{Alloc, Limit, Policy, Style};
use invidx_sim::{Figure, Series};

fn ks(quick: bool) -> Vec<f64> {
    if quick {
        vec![1.0, 2.0, 3.0, 4.0]
    } else {
        vec![1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0, 3.5, 4.0]
    }
}

fn main() {
    let exp = prepare();
    let mut new_pts = Vec::new();
    let mut whole_pts = Vec::new();
    for k in ks(quick()) {
        let new = exp
            .run_policy(Policy::new(Style::New, Limit::Fits, Alloc::Proportional { k }))
            .expect("new run");
        let whole = exp
            .run_policy(Policy::new(Style::Whole, Limit::Fits, Alloc::Proportional { k }))
            .expect("whole run");
        new_pts.push((k, new.disks.final_utilization));
        whole_pts.push((k, whole.disks.final_utilization));
    }
    let fill = exp.run_policy(Policy::extent_based()).expect("fill run");
    let fill_pts: Vec<(f64, f64)> =
        ks(quick()).iter().map(|&k| (k, fill.disks.final_utilization)).collect();
    emit_figure(&Figure {
        id: "figure11".into(),
        title: "Utilization vs proportional allocation constant k".into(),
        x_label: "proportional allocation constant".into(),
        y_label: "internal utilization".into(),
        series: vec![
            Series { name: "new".into(), points: new_pts },
            Series { name: "fill".into(), points: fill_pts },
            Series { name: "whole".into(), points: whole_pts },
        ],
    });
}
