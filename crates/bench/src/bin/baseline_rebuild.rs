//! Baseline: the traditional full-reconstruction approach the paper's
//! introduction argues against. "Given a body of documents, these systems
//! build the inverted list index from scratch, laying out each list
//! sequentially and contiguously to others on disk (with no gaps). [...]
//! Periodically, e.g., every weekend, new documents would be added to the
//! database and a brand new index would be built."
//!
//! The rebuild baseline re-writes the ENTIRE index (all postings to date,
//! perfectly sequential and gap-free) at each batch; the incremental
//! policies update in place. Expected: rebuild wins on utilization (1.0)
//! and query cost (1 read/list) by construction, but its cumulative build
//! time grows quadratically with corpus size while incremental updates
//! grow linearly — the crossover is early and dramatic.

use invidx_bench::{emit_figure, emit_table, prepare};
use invidx_core::policy::Policy;
use invidx_sim::{Figure, Series, TextTable};
use invidx_disk::{exercise, IoOp, IoTrace, OpKind, Payload};

fn main() {
    let exp = prepare();
    let p = &exp.params;

    // Rebuild trace: per batch, re-read the cumulative raw text (a rebuild
    // starts from the documents) and write the cumulative index
    // sequentially, striped over all disks — the best possible layout.
    // Parsing/inverting CPU is ignored, which flatters the baseline.
    let bytes_per_posting =
        exp.corpus_stats.raw_text_bytes as f64 / exp.corpus_stats.total_postings.max(1) as f64;
    let mut cumulative_postings = 0u64;
    let mut trace = IoTrace::new();
    for batch in &exp.batches {
        cumulative_postings += batch.postings();
        let raw_blocks = ((cumulative_postings as f64 * bytes_per_posting)
            / p.block_size as f64)
            .ceil() as u64;
        let index_blocks = cumulative_postings.div_ceil(p.block_postings);
        for (kind, total_blocks) in [(OpKind::Read, raw_blocks), (OpKind::Write, index_blocks)] {
            let per_disk = total_blocks.div_ceil(p.disks as u64);
            for d in 0..p.disks {
                let blocks = per_disk.min(total_blocks.saturating_sub(d as u64 * per_disk));
                if blocks == 0 {
                    continue;
                }
                trace.push(IoOp {
                    kind,
                    disk: d,
                    start: 0,
                    blocks,
                    payload: Payload::LongList { word: 0, postings: blocks * p.block_postings },
                });
            }
        }
        trace.end_batch();
    }
    let rebuild = exercise(&trace, &p.exercise_config());

    let mut series = vec![Series {
        name: "full rebuild".into(),
        points: rebuild
            .cumulative_seconds
            .iter()
            .enumerate()
            .map(|(i, &s)| ((i + 1) as f64, s))
            .collect(),
    }];
    // Latency growth: last update vs the half-way update. A full rebuild
    // grows linearly with database size forever; incremental updates track
    // the (bounded) batch size.
    let growth = |b: &[f64]| b.last().copied().unwrap_or(0.0) / b[b.len() / 2].max(1e-9);
    let mut rows = vec![vec![
        "full rebuild".to_string(),
        format!("{:.0}", rebuild.total_seconds()),
        format!("{:.1}", rebuild.batch_seconds.last().copied().unwrap_or(0.0)),
        format!("{:.2}x", growth(&rebuild.batch_seconds)),
        "1.00".into(),
        "1.00".into(),
    ]];

    for policy in [Policy::update_optimized(), Policy::balanced(), Policy::query_optimized()] {
        let run = exp.run_policy(policy).expect("policy");
        series.push(Series {
            name: policy.label(),
            points: run
                .exercise
                .cumulative_seconds
                .iter()
                .enumerate()
                .map(|(i, &s)| ((i + 1) as f64, s))
                .collect(),
        });
        rows.push(vec![
            policy.label(),
            format!("{:.0}", run.exercise.total_seconds()),
            format!("{:.1}", run.exercise.batch_seconds.last().copied().unwrap_or(0.0)),
            format!("{:.2}x", growth(&run.exercise.batch_seconds)),
            format!("{:.2}", run.disks.final_avg_reads),
            format!("{:.2}", run.disks.final_utilization),
        ]);
    }

    emit_figure(&Figure {
        id: "baseline_rebuild".into(),
        title: "Incremental updates vs full index reconstruction".into(),
        x_label: "index after update".into(),
        y_label: "cumulative time (seconds)".into(),
        series,
    });
    emit_table(&TextTable {
        id: "baseline_rebuild_summary".into(),
        title: "Rebuild vs incremental (final index)".into(),
        headers: vec![
            "Strategy".into(),
            "Total s".into(),
            "Last update s".into(),
            "Latency growth".into(),
            "Reads/list".into(),
            "Util".into(),
        ],
        rows,
    });
}
