//! Ablation: database scaling (the paper's tech note [10] extrapolates to
//! "larger synthetic text document databases" and reports the algorithms
//! "scale well to larger databases, given the correct parameters").
//!
//! Corpus volume is swept at 0.5x / 1x / 2x / 4x daily document volume,
//! with the bucket space scaled in proportion ("the correct parameters");
//! expected: build time and I/O grow near-linearly with postings.

use invidx_bench::{emit_table, params, quick};
use invidx_core::policy::Policy;
use invidx_corpus::CorpusParams;
use invidx_sim::{Experiment, SimParams, TextTable};

fn main() {
    let base = params();
    let scales: &[f64] = if quick() { &[0.5, 1.0] } else { &[0.5, 1.0, 2.0, 4.0] };
    let mut rows = Vec::new();
    for &scale in scales {
        let corpus = CorpusParams {
            docs_per_weekday: (base.corpus.docs_per_weekday as f64 * scale) as usize,
            ..base.corpus.clone()
        };
        // "Given the correct parameters": bucket space scales with volume.
        let p = SimParams {
            corpus,
            bucket_size: (base.bucket_size as f64 * scale).round().max(10.0) as u64,
            blocks_per_disk: (base.blocks_per_disk as f64 * scale.max(1.0)) as u64,
            ..base.clone()
        };
        let exp = Experiment::prepare(p).expect("prepare");
        let run = exp.run_policy(Policy::balanced()).expect("run");
        rows.push(vec![
            format!("{scale}x"),
            exp.corpus_stats.total_postings.to_string(),
            exp.buckets.total_updates().to_string(),
            run.disks.trace.ops.len().to_string(),
            format!("{:.0}", run.exercise.total_seconds()),
            format!(
                "{:.2}",
                run.exercise.total_seconds() / exp.corpus_stats.total_postings as f64 * 1e6
            ),
        ]);
    }
    emit_table(&TextTable {
        id: "ablation_corpus_scale".into(),
        title: "Corpus-volume scaling (policy 'new z prop 2', bucket space scaled along)".into(),
        headers: vec![
            "Scale".into(),
            "Postings".into(),
            "Long updates".into(),
            "I/O ops".into(),
            "Modeled s".into(),
            "us/posting".into(),
        ],
        rows,
    });
}
