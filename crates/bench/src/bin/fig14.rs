//! Figure 14: time per update, per policy (the non-cumulative Figure 13).
//! Expected shape: update times grow with the number of long lists; `new
//! 0` stays nearly flat (coalesced sequential writes); `whole z` is the
//! policy most sensitive to update-size variation.

use invidx_bench::{emit_figure, figure_policies, prepare};
use invidx_sim::disks::is_out_of_space;
use invidx_sim::{Figure, Series};

fn main() {
    let exp = prepare();
    let mut series = Vec::new();
    for policy in figure_policies() {
        match exp.run_policy(policy) {
            Ok(run) => series.push(Series::from_updates(
                policy.label(),
                run.exercise.batch_seconds.iter().copied(),
            )),
            Err(e) if is_out_of_space(&e) => {
                println!("{}: disks not large enough (omitted, as in the paper)", policy.label());
            }
            Err(e) => panic!("policy {policy}: {e}"),
        }
    }
    emit_figure(&Figure {
        id: "figure14".into(),
        title: "Time per update (modeled disks)".into(),
        x_label: "update".into(),
        y_label: "time per update (seconds)".into(),
        series,
    });
}
