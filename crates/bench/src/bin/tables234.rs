//! Tables 2–4: the paper's definitional tables, printed from the live
//! types so that code and framing cannot drift apart. Table 2 enumerates
//! the policy variables; Table 3 shows a batch-update fragment; Table 4
//! lists the experimental parameters.

use invidx_bench::{emit_table, params};
use invidx_core::policy::{Alloc, Limit, Policy, Style};
use invidx_corpus::{generate_batches, CorpusParams};
use invidx_sim::TextTable;

fn main() {
    // Table 2: policy variables, rendered from the enums themselves.
    let row = |variable: &str, policy: Policy, meaning: &str| {
        let value = match (variable, policy.limit, policy.style, policy.alloc) {
            ("Limit", Limit::Never, _, _) => "0".to_string(),
            ("Limit", Limit::Fits, _, _) => "z".to_string(),
            ("Style", _, s, _) => match s {
                Style::Fill { extent_blocks } => format!("fill (e = {extent_blocks})"),
                Style::New => "new".into(),
                Style::Whole => "whole".into(),
            },
            ("Alloc", _, _, a) => match a {
                Alloc::Constant { k } => format!("constant (k = {k})"),
                Alloc::Block { k } => format!("block (k = {k})"),
                Alloc::Proportional { k } => format!("proportional (k = {k})"),
            },
            _ => unreachable!("table rows cover the three variables"),
        };
        vec![variable.to_string(), value, meaning.to_string()]
    };
    let fill = Policy::extent_based();
    let never = Policy::update_optimized();
    let prop = Policy::query_optimized();
    let block = Policy::new(Style::New, Limit::Fits, Alloc::Block { k: 2 });
    let constant = Policy::new(Style::New, Limit::Fits, Alloc::Constant { k: 10 });
    emit_table(&TextTable {
        id: "table2".into(),
        title: "Variables and values determining a long-list allocation policy".into(),
        headers: vec!["Variable".into(), "Value".into(), "Meaning".into()],
        rows: vec![
            row("Limit", never, "Never update in-place"),
            row("Limit", prop, "Update in-place if enough space"),
            row("Style", fill, "Fill in fixed size extents"),
            row("Style", Policy::balanced(), "Write a new chunk when appropriate"),
            row("Style", prop, "Long lists are single whole chunks"),
            row("Alloc", constant, "Constant extra postings reserved"),
            row("Alloc", block, "Multiple of a fixed sized block reserved"),
            row("Alloc", prop, "Proportional extra postings reserved"),
        ],
    });

    // Table 3: a batch-update fragment (word strings + document counts).
    let (batches, _) = generate_batches(CorpusParams::tiny());
    let rows: Vec<Vec<String>> = batches[0]
        .pairs
        .iter()
        .take(6)
        .map(|&(w, c)| vec![invidx_corpus::vocab::word_string(w), c.to_string()])
        .collect();
    emit_table(&TextTable {
        id: "table3".into(),
        title: "A fragment of a batch update: words and document counts".into(),
        headers: vec!["word".into(), "documents".into()],
        rows,
    });

    // Table 4: experimental parameters, from the live SimParams.
    let p = params();
    emit_table(&TextTable {
        id: "table4".into(),
        title: "Experimental parameters and base-case values".into(),
        headers: vec!["Variable".into(), "Value".into(), "Description".into()],
        rows: vec![
            vec!["Buckets".into(), p.buckets.to_string(), "Number of buckets".into()],
            vec!["BucketSize".into(), p.bucket_size.to_string(), "Size of bucket (units)".into()],
            vec![
                "BucketTotal".into(),
                format!("{:.2} M", p.buckets as f64 * p.bucket_size as f64 / 1e6),
                "Buckets x BucketSize".into(),
            ],
            vec![
                "BlockPosting".into(),
                p.block_postings.to_string(),
                "Postings per Block".into(),
            ],
            vec!["Disks".into(), p.disks.to_string(), "Number of Disks".into()],
            vec!["BlockSize".into(), p.block_size.to_string(), "Bytes per Block".into()],
            vec![
                "BufferBlock".into(),
                p.buffer_blocks.to_string(),
                "I/O buffer memory (blocks)".into(),
            ],
        ],
    });
}
