//! Ablation: scaling. The paper's §7 and tech note [10] study "the
//! performance improvements due to speeding up disk or adding more disks"
//! and "the performance of updates on an optical disk". Three sweeps:
//! number of disks, disk speed multiplier, and disk technology profiles
//! (1994 SCSI-2, modern HDD, SSD, magneto-optical).

use invidx_bench::{emit_table, prepare};
use invidx_core::policy::Policy;
use invidx_disk::{exercise, DiskProfile, ExerciseConfig};
use invidx_sim::{SimParams, TextTable};

fn main() {
    let exp = prepare();
    let policy = Policy::balanced();

    // Sweep 1: number of disks. The compute-disks stage must rerun (disk
    // assignment changes the trace), the bucket stage does not.
    let mut rows = Vec::new();
    for disks in [1u16, 2, 4, 8, 16] {
        let params = SimParams { disks, ..exp.params.clone() };
        let out =
            invidx_sim::compute_disks(&params, policy, &exp.buckets.long_updates).expect("disks");
        let timing = exercise(&out.trace, &params.exercise_config());
        rows.push(vec![
            disks.to_string(),
            out.trace.ops.len().to_string(),
            format!("{:.1}", timing.total_seconds()),
        ]);
    }
    emit_table(&TextTable {
        id: "ablation_disks".into(),
        title: format!("Adding disks (policy '{policy}')"),
        headers: vec!["Disks".into(), "I/O ops".into(), "Modeled s".into()],
        rows,
    });

    // Sweep 2: uniformly faster disks over the 8-disk base trace.
    let base = exp.run_policy(policy).expect("base run");
    let mut rows = Vec::new();
    for factor in [1.0f64, 2.0, 4.0, 8.0] {
        let cfg = ExerciseConfig {
            profile: exp.params.profile.speedup(factor),
            ..exp.params.exercise_config()
        };
        let timing = exercise(&base.disks.trace, &cfg);
        rows.push(vec![format!("{factor}x"), format!("{:.1}", timing.total_seconds())]);
    }
    emit_table(&TextTable {
        id: "ablation_diskspeed".into(),
        title: "Speeding up the disks (same trace)".into(),
        headers: vec!["Speedup".into(), "Modeled s".into()],
        rows,
    });

    // Sweep 3: disk technology profiles.
    let bs = exp.params.block_size;
    let mut rows = Vec::new();
    for profile in [
        DiskProfile::seagate_1994(bs),
        DiskProfile::optical_1994(bs),
        DiskProfile::modern_hdd(bs),
        DiskProfile::ssd(bs),
    ] {
        let cfg = ExerciseConfig { profile: profile.clone(), ..exp.params.exercise_config() };
        let timing = exercise(&base.disks.trace, &cfg);
        rows.push(vec![profile.name.clone(), format!("{:.1}", timing.total_seconds())]);
    }
    emit_table(&TextTable {
        id: "ablation_profiles".into(),
        title: "Disk technology profiles (same trace)".into(),
        headers: vec!["Profile".into(), "Modeled s".into()],
        rows,
    });
}
