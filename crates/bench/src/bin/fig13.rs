//! Figure 13: cumulative wall time to build the final index, per policy,
//! from the exercise-disks stage (disk timing model). Expected shape:
//! `whole 0` slowest; `new 0` fastest and near-linear thanks to write
//! coalescing; the time spread (~3x) is wider than the I/O-operation
//! spread because coalescing compresses sequential write streams.

use invidx_bench::{emit_figure, figure_policies, fmt_secs, prepare};
use invidx_sim::disks::is_out_of_space;
use invidx_sim::{Figure, Series};

fn main() {
    let exp = prepare();
    let mut series = Vec::new();
    let mut finals = Vec::new();
    for policy in figure_policies() {
        match exp.run_policy(policy) {
            Ok(run) => {
                finals.push((policy.label(), run.exercise.total_seconds()));
                series.push(Series {
                    name: policy.label(),
                    points: run
                        .exercise
                        .cumulative_seconds
                        .iter()
                        .enumerate()
                        .map(|(i, &s)| ((i + 1) as f64, s))
                        .collect(),
                });
            }
            Err(e) if is_out_of_space(&e) => {
                println!(
                    "{}: disks not large enough to store the long lists (the paper omits \
                     fill 0 from Figure 13 for exactly this reason)",
                    policy.label()
                );
            }
            Err(e) => panic!("policy {policy}: {e}"),
        }
    }
    emit_figure(&Figure {
        id: "figure13".into(),
        title: "Cumulative time to build the final index (modeled disks)".into(),
        x_label: "index after update".into(),
        y_label: "cumulative time (seconds)".into(),
        series,
    });
    finals.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    println!("\nfinal build times (fastest to slowest):");
    for (label, secs) in &finals {
        println!("  {label:12} {} s", fmt_secs(*secs));
    }
    if let (Some(first), Some(last)) = (finals.first(), finals.last()) {
        println!("spread: {:.1}x (the paper reports ~3x)", last.1 / first.1);
    }
}
