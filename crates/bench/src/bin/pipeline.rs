//! The experiment pipeline as file-based command-line stages — the paper's
//! Figure 3 processes, decoupled by on-disk trace formats exactly as the
//! authors ran them ("the decoupling of each process from the subsequent
//! process permits varying parameters of a process", §4.5).
//!
//! ```sh
//! pipeline invert  batches.txt              # News -> batch updates
//! pipeline buckets batches.txt long.txt     # batch updates -> long-list updates
//! pipeline disks   long.txt "new z prop 2" io.txt   # -> I/O trace (Figure 6 format)
//! pipeline exercise io.txt                  # I/O trace -> timings
//! ```
//!
//! With no arguments the whole pipeline runs in-process through the real
//! [`invidx_core::DualIndex`] and the exerciser — the quickest way to see
//! the observability layer light up:
//!
//! ```sh
//! INVIDX_QUICK=1 INVIDX_METRICS=results/metrics pipeline
//! ```
//!
//! `INVIDX_QUICK=1` switches every stage to the tiny parameter set.

use invidx_bench::params;
use invidx_core::policy::Policy;
use invidx_corpus::batch::{batches_from_trace_text, batches_to_trace_text};
use invidx_disk::{exercise, IoTrace};
use invidx_sim::{BucketPipeline, SimParams};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pipeline                 # full in-process run, all stages\n  \
         pipeline invert <out.batches>\n  pipeline buckets <in.batches> <out.long>\n  \
         pipeline disks <in.long> <policy> <out.iotrace>\n  pipeline exercise <in.iotrace>\n\n\
         policies: \"new 0\", \"new z prop 2\", \"whole z prop 1.2\", \"fill z e=4\", ..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let p = params();
    match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        [] => run_all(&p),
        ["invert", out] => invert(&p, out),
        ["buckets", input, out] => buckets(&p, input, out),
        ["disks", input, policy, out] => disks(&p, input, policy, out),
        ["exercise", input] => run_exercise(&p, input),
        _ => usage(),
    }
}

/// Full end-to-end run: invert + buckets via [`invidx_bench::prepare`],
/// then the integrated index and the exerciser for one balanced policy —
/// every subsystem the observability layer instruments gets traffic.
fn run_all(p: &SimParams) -> ExitCode {
    let exp = invidx_bench::prepare();
    let policy = Policy::balanced();
    let (reports, trace) = match invidx_sim::run_dual_index(p, policy, &exp.batches) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("dual-index run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = exercise(&trace, &p.exercise_config());
    println!("update\tseconds\tcumulative\tphys_requests\tchunk_allocs\trelocations");
    for (i, r) in reports.iter().enumerate() {
        println!(
            "{}\t{:.3}\t{:.3}\t{}\t{}\t{}",
            i + 1,
            result.batch_seconds[i],
            result.cumulative_seconds[i],
            result.phys_requests[i],
            r.obs.chunk_allocs,
            r.obs.chunk_relocations
        );
    }
    invidx_obs::log_progress(
        "pipeline",
        &format!(
            "total {:.1}s over {} batches under '{policy}' on '{}' x{}",
            result.total_seconds(),
            trace.batches(),
            p.profile.name,
            p.disks
        ),
    );
    invidx_bench::write_metrics_snapshot();
    ExitCode::SUCCESS
}

fn invert(p: &SimParams, out: &str) -> ExitCode {
    let (batches, stats) = invidx_corpus::generate_batches(p.corpus.clone());
    if let Err(e) = std::fs::write(out, batches_to_trace_text(&batches)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{}: {} batches, {} words, {} postings",
        out,
        batches.len(),
        stats.total_words,
        stats.total_postings
    );
    ExitCode::SUCCESS
}

fn buckets(p: &SimParams, input: &str, out: &str) -> ExitCode {
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let batches = match batches_from_trace_text(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot parse {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pipeline = match BucketPipeline::new(p.buckets, p.bucket_size) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("bucket setup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match pipeline.run(&batches) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bucket stage failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(out, batches_to_trace_text(&result.long_updates)) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("{out}: {} long-list updates over {} batches", result.total_updates(), batches.len());
    for (i, c) in result.categories.iter().enumerate() {
        eprintln!(
            "  update {:>3}: {:>6} words (new {:.2} bucket {:.2} long {:.2})",
            i + 1,
            c.words,
            c.frac_new(),
            c.frac_bucket(),
            c.frac_long()
        );
    }
    ExitCode::SUCCESS
}

fn disks(p: &SimParams, input: &str, policy: &str, out: &str) -> ExitCode {
    let policy: Policy = match policy.parse() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bad policy: {e}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let updates = match batches_from_trace_text(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot parse {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match invidx_sim::compute_disks(p, policy, &updates) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("compute-disks failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(out, result.trace.to_text()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{out}: {} operations under '{policy}' (util {:.2}, reads/list {:.2}, \
         {} in-place updates)",
        result.trace.ops.len(),
        result.final_utilization,
        result.final_avg_reads,
        result.final_stats.in_place_updates
    );
    ExitCode::SUCCESS
}

fn run_exercise(p: &SimParams, input: &str) -> ExitCode {
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match IoTrace::from_text(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = exercise(&trace, &p.exercise_config());
    println!("update\tseconds\tcumulative\tphys_requests");
    for (i, (&s, &c)) in
        result.batch_seconds.iter().zip(&result.cumulative_seconds).enumerate()
    {
        println!("{}\t{:.3}\t{:.3}\t{}", i + 1, s, c, result.phys_requests[i]);
    }
    eprintln!(
        "total {:.1}s over {} batches on '{}' x{}",
        result.total_seconds(),
        trace.batches(),
        p.profile.name,
        p.disks
    );
    ExitCode::SUCCESS
}
