//! Ablation: free-space allocation strategy. The paper uses first-fit and
//! names best-fit and the buddy system (Cutting & Pedersen) as
//! alternatives "not considered to keep the space of possible solutions
//! manageable" — here we consider them: same workload, same policy, three
//! allocators, comparing build time, external fragmentation, and blocks
//! consumed.

use invidx_bench::{emit_table, prepare};
use invidx_core::policy::Policy;
use invidx_corpus::BatchUpdate;
use invidx_sim::{SimParams, TextTable};
use invidx_disk::{
    exercise, BuddyAllocator, Disk, DiskArray, ExtentAllocator, FitStrategy, FreeList,
    SparseDevice,
};
use invidx_core::longlist::{LongConfig, LongStore};
use invidx_core::postings::PostingList;
use invidx_core::types::{DocId, WordId};
use std::collections::HashMap;

/// Which allocator to build per disk.
#[derive(Clone, Copy, Debug)]
enum Kind {
    FirstFit,
    BestFit,
    Buddy,
}

fn build_array(params: &SimParams, kind: Kind) -> DiskArray {
    let disks = (0..params.disks)
        .map(|_| {
            let alloc: Box<dyn ExtentAllocator> = match kind {
                Kind::FirstFit => {
                    Box::new(FreeList::new(params.blocks_per_disk, FitStrategy::FirstFit))
                }
                Kind::BestFit => {
                    Box::new(FreeList::new(params.blocks_per_disk, FitStrategy::BestFit))
                }
                Kind::Buddy => Box::new(BuddyAllocator::covering(params.blocks_per_disk)),
            };
            Disk {
                device: Box::new(SparseDevice::new(
                    // Buddy may round capacity up; give the device the same
                    // reach so writes beyond blocks_per_disk still land.
                    params.blocks_per_disk.next_power_of_two(),
                    params.block_size,
                )),
                alloc,
            }
        })
        .collect();
    DiskArray::new(disks)
}

/// Run the long-list stage only (no bucket/directory shadow writes, which
/// would need `reserve` support the buddy allocator lacks) under one
/// allocator kind.
fn run(params: &SimParams, kind: Kind, updates: &[BatchUpdate], policy: Policy) -> Vec<String> {
    let mut array = build_array(params, kind);
    array.start_trace();
    let mut store = LongStore::new(LongConfig {
        block_postings: params.block_postings,
        policy,
        codec: Default::default(),
    });
    let mut counters: HashMap<WordId, u32> = HashMap::new();
    let wall = std::time::Instant::now();
    for batch in updates {
        for &(w, count) in &batch.pairs {
            let word = WordId(w);
            let c = counters.entry(word).or_insert(0);
            let list = PostingList::from_sorted((*c..*c + count).map(DocId).collect());
            *c += count;
            store.append(&mut array, word, &list).expect("append");
        }
        store.free_released(&mut array).expect("release");
        array.end_batch();
    }
    let cpu = wall.elapsed();
    let trace = array.take_trace();
    let modeled = exercise(&trace, &params.exercise_config());
    let frag: f64 = (0..params.disks)
        .map(|d| array.allocator(d).external_fragmentation())
        .sum::<f64>()
        / params.disks as f64;
    let used = array.total_blocks() - array.free_blocks();
    vec![
        format!("{kind:?}"),
        format!("{:.1}", modeled.total_seconds()),
        used.to_string(),
        format!("{:.3}", frag),
        format!("{:.2}", cpu.as_secs_f64()),
    ]
}

fn main() {
    let exp = prepare();
    for policy in [Policy::balanced(), Policy::query_optimized()] {
        let rows = [Kind::FirstFit, Kind::BestFit, Kind::Buddy]
            .into_iter()
            .map(|k| run(&exp.params, k, &exp.buckets.long_updates, policy))
            .collect();
        emit_table(&TextTable {
            id: format!("ablation_freelist_{}", policy.label().replace(' ', "_").replace('.', "")),
            title: format!("Allocator ablation under policy '{policy}' (long lists only)"),
            headers: vec![
                "Allocator".into(),
                "Modeled s".into(),
                "Blocks used".into(),
                "Ext frag".into(),
                "CPU s".into(),
            ],
            rows,
        });
    }
}
