//! Figure 8: cumulative I/O operations needed to build the final index,
//! per policy. Expected shape (paper §5.2.1): increasing slope everywhere;
//! `new 0` and `fill 0` lowest; in-place updates (`z`) roughly double the
//! operations; `whole` is the upper bound and within ~10% of the in-place
//! styles.

use invidx_bench::{emit_figure, figure_policies, prepare};
use invidx_sim::disks::is_out_of_space;
use invidx_sim::{Figure, Series};

fn main() {
    let exp = prepare();
    let mut series = Vec::new();
    for policy in figure_policies() {
        match exp.run_policy(policy) {
            Ok(run) => series.push(Series::from_updates(
                policy.label(),
                run.disks.per_batch.iter().map(|b| b.cumulative_ops as f64),
            )),
            Err(e) if is_out_of_space(&e) => {
                println!("{}: disks not large enough (as in the paper for fill 0)", policy.label());
            }
            Err(e) => panic!("policy {policy}: {e}"),
        }
    }
    emit_figure(&Figure {
        id: "figure08".into(),
        title: "Cumulative I/O operations to build the final index".into(),
        x_label: "index after update".into(),
        y_label: "cumulative I/O operations".into(),
        series,
    });
}
