//! Ablation: what durability costs. The paper targets "7 days a week, 24
//! hours a day continuous operation" (§1); the `invidx-durable` crate buys
//! crash safety with a write-ahead log and periodic checkpoints. This
//! ablation ingests the same document stream through (a) the plain
//! [`DualIndex`] over file-backed devices (volatile: a crash loses
//! everything) and (b) [`DurableIndex`] under different durability knobs,
//! then reopens each durable store to price recovery itself.
//!
//! Knobs swept: WAL fsync-on-commit on/off, checkpoint cadence (never /
//! every 8 records / every record). Expected: the WAL append is cheap, the
//! fsync dominates the per-batch overhead, and eager checkpointing trades
//! ingest time for near-zero replay at recovery.

use invidx_bench::{emit_table, quick};
use invidx_core::index::{DualIndex, IndexConfig};
use invidx_core::policy::Policy;
use invidx_core::types::{DocId, WordId};
use invidx_corpus::{CorpusGenerator, CorpusParams};
use invidx_disk::{BlockDevice, Disk, DiskArray, FileDevice, FitStrategy, FreeList};
use invidx_durable::{DurableIndex, DurableOptions, StoreGeometry};
use invidx_obs::{counter_value, names};
use invidx_sim::TextTable;
use std::path::PathBuf;
use std::time::Instant;

const DISKS: u16 = 4;
const BLOCK_SIZE: usize = 1024;
const DOCS_PER_BATCH: usize = 50;

fn corpus() -> CorpusParams {
    CorpusParams {
        days: if quick() { 2 } else { 4 },
        docs_per_weekday: if quick() { 100 } else { 500 },
        vocab_ranks: 100_000,
        interrupted_day: None,
        ..CorpusParams::tiny()
    }
}

fn config() -> IndexConfig {
    IndexConfig::builder()
        .num_buckets(256)
        .bucket_capacity_units(400)
        .block_postings(25)
        .policy(Policy::balanced())
        .materialize_buckets(true)
        .build()
        .expect("valid config")
}

fn geometry() -> StoreGeometry {
    StoreGeometry {
        disks: DISKS,
        blocks_per_disk: if quick() { 50_000 } else { 200_000 },
        block_size: BLOCK_SIZE as u32,
    }
}

fn tmpdir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("invidx-abl-durability-{}-{label}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Ingest the document stream into `index`, flushing every
/// [`DOCS_PER_BATCH`] docs. Returns the number of flushes.
fn ingest<T>(
    docs: &[(u32, Vec<u64>)],
    index: &mut T,
    insert: impl Fn(&mut T, DocId, &[u64]),
    flush: impl Fn(&mut T),
) -> u64 {
    let mut flushes = 0;
    for (i, (id, words)) in docs.iter().enumerate() {
        insert(index, DocId(*id), words);
        if (i + 1) % DOCS_PER_BATCH == 0 {
            flush(index);
            flushes += 1;
        }
    }
    if !docs.len().is_multiple_of(DOCS_PER_BATCH) {
        flush(index);
        flushes += 1;
    }
    flushes
}

struct Variant {
    label: &'static str,
    fsync_wal: bool,
    checkpoint_every: u64,
}

const VARIANTS: [Variant; 4] = [
    Variant { label: "wal fsync, ckpt never", fsync_wal: true, checkpoint_every: 0 },
    Variant { label: "wal fsync, ckpt 8", fsync_wal: true, checkpoint_every: 8 },
    Variant { label: "wal fsync, ckpt 1", fsync_wal: true, checkpoint_every: 1 },
    Variant { label: "wal nosync, ckpt 8", fsync_wal: false, checkpoint_every: 8 },
];

fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

fn main() {
    let docs: Vec<(u32, Vec<u64>)> = CorpusGenerator::new(corpus())
        .flat_map(|day| day.docs.into_iter())
        .map(|d| (d.id + 1, d.word_ranks))
        .collect();
    let total_postings: u64 = docs.iter().map(|(_, w)| w.len() as u64).sum();
    invidx_obs::log_progress(
        "ablation",
        &format!("{} documents, {} postings", docs.len(), total_postings),
    );

    let mut rows = Vec::new();

    // Baseline: the plain index over the same file-backed devices — fast,
    // and gone after a crash.
    {
        let dir = tmpdir("plain");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let disks = (0..DISKS)
            .map(|d| {
                let device: Box<dyn BlockDevice> = Box::new(
                    FileDevice::create(
                        dir.join(format!("disk-{d}.dat")),
                        geometry().blocks_per_disk,
                        BLOCK_SIZE,
                    )
                    .expect("create device"),
                );
                Disk {
                    device,
                    alloc: Box::new(FreeList::new(
                        geometry().blocks_per_disk,
                        FitStrategy::FirstFit,
                    )),
                }
            })
            .collect();
        let mut index = DualIndex::create(DiskArray::new(disks), config()).expect("create");
        let t = Instant::now();
        let flushes = ingest(
            &docs,
            &mut index,
            |ix, doc, words| {
                ix.insert_document(doc, words.iter().map(|&r| WordId(r))).expect("insert")
            },
            |ix| {
                ix.flush_batch().expect("flush");
            },
        );
        rows.push(vec![
            "plain (volatile)".to_string(),
            flushes.to_string(),
            format!("{:.2}", t.elapsed().as_secs_f64()),
            "0.00".into(),
            "0".into(),
            "0".into(),
            "0.00".into(),
            "-".into(),
            "-".into(),
        ]);
        drop(index);
        std::fs::remove_dir_all(&dir).ok();
    }

    for v in VARIANTS {
        let dir = tmpdir(v.label.replace([' ', ','], "-").as_str());
        let opts = DurableOptions {
            checkpoint_every: v.checkpoint_every,
            fsync_wal: v.fsync_wal,
            ..Default::default()
        };
        let before = [
            counter_value(names::WAL_BYTES),
            counter_value(names::WAL_FSYNCS),
            counter_value(names::CHECKPOINT_WRITES),
            counter_value(names::CHECKPOINT_BYTES),
        ];
        let mut index =
            DurableIndex::create(&dir, config(), geometry(), opts).expect("create durable");
        let t = Instant::now();
        let flushes = ingest(
            &docs,
            &mut index,
            |ix, doc, words| {
                ix.insert_document(doc, words.iter().map(|&r| WordId(r))).expect("insert")
            },
            |ix| {
                ix.flush().expect("flush");
            },
        );
        let ingest_secs = t.elapsed().as_secs_f64();
        drop(index);
        let after = [
            counter_value(names::WAL_BYTES),
            counter_value(names::WAL_FSYNCS),
            counter_value(names::CHECKPOINT_WRITES),
            counter_value(names::CHECKPOINT_BYTES),
        ];

        let t = Instant::now();
        let reopened =
            DurableIndex::open(&dir, config(), opts).expect("recover");
        let recover_secs = t.elapsed().as_secs_f64();
        let replayed = reopened.recovery().map_or(0, |r| r.replayed_records);
        drop(reopened);
        std::fs::remove_dir_all(&dir).ok();

        rows.push(vec![
            v.label.to_string(),
            flushes.to_string(),
            format!("{ingest_secs:.2}"),
            mb(after[0] - before[0]),
            (after[1] - before[1]).to_string(),
            (after[2] - before[2]).to_string(),
            mb(after[3] - before[3]),
            format!("{recover_secs:.2}"),
            replayed.to_string(),
        ]);
    }

    emit_table(&TextTable {
        id: "ablation_durability".into(),
        title: format!(
            "Durability overhead: {} docs, {} postings, {} docs/batch",
            docs.len(),
            total_postings,
            DOCS_PER_BATCH
        ),
        headers: vec![
            "Variant".into(),
            "Flushes".into(),
            "Ingest s".into(),
            "WAL MB".into(),
            "fsyncs".into(),
            "Ckpts".into(),
            "Ckpt MB".into(),
            "Recover s".into(),
            "Replayed".into(),
        ],
        rows,
    });
}
