//! Figure 9: long-list internal disk utilization per policy, after each
//! update. Expected shape: `whole` stays near 1.0 regardless of in-place
//! updates; `new 0`/`fill 0` fall dramatically; adding in-place updates
//! (`z`) recovers much of the loss.

use invidx_bench::{emit_figure, figure_policies, prepare};
use invidx_sim::disks::is_out_of_space;
use invidx_sim::{Figure, Series};

fn main() {
    let exp = prepare();
    let mut series = Vec::new();
    for policy in figure_policies() {
        match exp.run_policy(policy) {
            Ok(run) => series.push(Series::from_updates(
                policy.label(),
                run.disks.per_batch.iter().map(|b| b.utilization),
            )),
            Err(e) if is_out_of_space(&e) => {
                println!("{}: disks not large enough (as in the paper for fill 0)", policy.label());
            }
            Err(e) => panic!("policy {policy}: {e}"),
        }
    }
    emit_figure(&Figure {
        id: "figure09".into(),
        title: "Long-list internal disk utilization".into(),
        x_label: "index after update".into(),
        y_label: "internal utilization".into(),
        series,
    });
}
