//! Ablation: read latency while the writer ingests. The copy-on-write
//! snapshot read path exists for exactly one claim — a reader never takes
//! a lock the writer holds, so query latency under a heavy ingest stream
//! should look like query latency on an idle index. The old `RwLock` path
//! made precisely the opposite trade: every batch apply stalled all
//! readers for the whole add+flush window.
//!
//! Two measured phases against one in-process service, same query pool,
//! same reader count:
//!
//! * **idle** — readers replay the pool with the writer parked;
//! * **under ingest** — the same replay while a writer thread applies
//!   batches back to back with no pause between them.
//!
//! The result cache is off, so every request crosses the full snapshot
//! read path; queries execute in-process (no TCP, no admission queue) so
//! the comparison isolates the path the snapshot refactor changed.
//!
//! Reported per phase: throughput and p50/p95/p99 latency, plus the
//! p99 ratio between phases. `INVIDX_QUICK=1` shrinks everything to CI
//! scale. With `INVIDX_MAX_P99_INGEST_FACTOR=<x>` the run exits non-zero
//! unless p99-under-ingest stays within `x`× the idle p99.

use invidx_bench::{emit_table, init_metrics, quick};
use invidx_core::index::IndexConfig;
use invidx_corpus::vocab::word_string;
use invidx_corpus::zipf::ZipfTable;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use invidx_serve::{QueryService, Request, ServeConfig};
use invidx_sim::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const READERS: usize = 4;
const VOCAB_RANKS: usize = 2_000;
const WORDS_PER_DOC: usize = 12;
const ZIPF_S: f64 = 1.05;

struct Scale {
    seed_batches: usize,
    docs_per_batch: usize,
    requests_per_reader: usize,
    query_pool: usize,
}

fn scale() -> Scale {
    if quick() {
        Scale { seed_batches: 6, docs_per_batch: 40, requests_per_reader: 2_000, query_pool: 64 }
    } else {
        Scale { seed_batches: 12, docs_per_batch: 80, requests_per_reader: 10_000, query_pool: 96 }
    }
}

fn make_batch(s: &Scale, zipf: &ZipfTable, rng: &mut StdRng) -> Vec<String> {
    (0..s.docs_per_batch)
        .map(|_| {
            (0..WORDS_PER_DOC)
                .map(|_| word_string(zipf.sample(rng)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

fn make_queries(s: &Scale, zipf: &ZipfTable, rng: &mut StdRng) -> Vec<Request> {
    (0..s.query_pool)
        .map(|i| {
            let mut w = || word_string(zipf.sample(rng));
            match i % 4 {
                0 => Request::Boolean(w()),
                1 => Request::Boolean(format!("{} and {}", w(), w())),
                2 => Request::Boolean(format!("({} or {}) and {}", w(), w(), w())),
                _ => Request::Near(w(), w(), 5),
            }
        })
        .collect()
}

/// Replay the pool from `READERS` threads; per-request latencies, merged.
fn measure(
    service: &Arc<QueryService<SearchEngine>>,
    queries: &Arc<Vec<Request>>,
    requests_per_reader: usize,
) -> (Vec<u64>, f64) {
    let t = Instant::now();
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let service = Arc::clone(service);
            let queries = Arc::clone(queries);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x1A7E9C + r as u64);
                let mut latencies = Vec::with_capacity(requests_per_reader);
                for _ in 0..requests_per_reader {
                    let req = &queries[rng.random_range(0..queries.len())];
                    let q = Instant::now();
                    service.execute(req).expect("query");
                    latencies.push(q.elapsed().as_micros() as u64);
                }
                latencies
            })
        })
        .collect();
    let mut all: Vec<u64> =
        readers.into_iter().flat_map(|h| h.join().expect("reader")).collect();
    let secs = t.elapsed().as_secs_f64();
    all.sort_unstable();
    (all, secs)
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

fn row(label: &str, latencies_us: &[u64], secs: f64) -> Vec<String> {
    vec![
        label.to_string(),
        latencies_us.len().to_string(),
        format!("{:.0}", latencies_us.len() as f64 / secs),
        format!("{:.3}", percentile(latencies_us, 0.50)),
        format!("{:.3}", percentile(latencies_us, 0.95)),
        format!("{:.3}", percentile(latencies_us, 0.99)),
    ]
}

fn main() {
    init_metrics();
    let s = scale();
    let zipf = ZipfTable::new(VOCAB_RANKS, ZIPF_S);
    let mut rng = StdRng::seed_from_u64(0x1D1E5EED);
    let queries = Arc::new(make_queries(&s, &zipf, &mut rng));

    let engine =
        SearchEngine::create(sparse_array(4, 200_000, 512), IndexConfig::small()).unwrap();
    let config = ServeConfig::builder().result_cache_capacity(0).build().unwrap();
    let service = Arc::new(QueryService::with_config(engine, config).expect("serve"));
    for _ in 0..s.seed_batches {
        let batch = make_batch(&s, &zipf, &mut rng);
        service.ingest_batch(&batch).expect("seed");
    }
    invidx_obs::log_progress(
        "latency_under_ingest",
        &format!(
            "{} seed batches x {} docs, {} queries in pool, {} readers x {} requests/phase",
            s.seed_batches, s.docs_per_batch, queries.len(), READERS, s.requests_per_reader
        ),
    );

    // Phase 1: idle writer.
    let (idle_us, idle_secs) = measure(&service, &queries, s.requests_per_reader);

    // Phase 2: the same replay while a writer applies batches back to
    // back. The stop flag is checked between batches, so the writer is
    // mid-apply for essentially the whole measured window.
    let epoch_before = service.epoch();
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let mut rng = StdRng::seed_from_u64(0xFEED1E);
        let s = scale();
        let zipf = ZipfTable::new(VOCAB_RANKS, ZIPF_S);
        std::thread::spawn(move || {
            let mut batches = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let batch = make_batch(&s, &zipf, &mut rng);
                service.ingest_batch(&batch).expect("ingest");
                batches += 1;
            }
            batches
        })
    };
    let (ingest_us, ingest_secs) = measure(&service, &queries, s.requests_per_reader);
    stop.store(true, Ordering::Relaxed);
    let batches_applied = writer.join().expect("writer");
    assert!(
        service.epoch() > epoch_before && batches_applied > 0,
        "the writer must actually have ingested during the measured window"
    );

    let idle_p99 = percentile(&idle_us, 0.99);
    let ingest_p99 = percentile(&ingest_us, 0.99);
    let factor = if idle_p99 > 0.0 { ingest_p99 / idle_p99 } else { 0.0 };

    emit_table(&TextTable {
        id: "ablation_latency_under_ingest".into(),
        title: format!(
            "Read latency under ingest: {READERS} readers on the lock-free snapshot \
             path, idle vs {batches_applied} batches x {} docs applied back to back \
             (p99 ratio {factor:.2}x)",
            s.docs_per_batch
        ),
        headers: vec![
            "Phase".into(),
            "Requests".into(),
            "Req/s".into(),
            "p50 ms".into(),
            "p95 ms".into(),
            "p99 ms".into(),
        ],
        rows: vec![
            row("idle writer", &idle_us, idle_secs),
            row("under ingest", &ingest_us, ingest_secs),
        ],
    });

    if let Ok(max) = std::env::var("INVIDX_MAX_P99_INGEST_FACTOR") {
        let max: f64 = max.parse().expect("INVIDX_MAX_P99_INGEST_FACTOR must be a number");
        if factor > max {
            eprintln!(
                "FAIL: p99 under ingest {ingest_p99:.3} ms is {factor:.2}x idle \
                 ({idle_p99:.3} ms) > allowed {max:.2}x"
            );
            std::process::exit(1);
        }
        println!(
            "OK: p99 under ingest {ingest_p99:.3} ms is {factor:.2}x idle \
             ({idle_p99:.3} ms) <= {max:.2}x"
        );
    }
}
