//! Figure 10: average read operations needed to read a word with a long
//! list, per policy, after each update. Expected shape: `whole` pinned at
//! 1.0; `fill 0`/`new 0` climb steeply; in-place updates keep `new z` and
//! `fill z` within a small factor of whole.

use invidx_bench::{emit_figure, figure_policies, prepare};
use invidx_sim::disks::is_out_of_space;
use invidx_sim::{Figure, Series};

fn main() {
    let exp = prepare();
    let mut series = Vec::new();
    let mut finals: Vec<(String, f64)> = Vec::new();
    for policy in figure_policies() {
        match exp.run_policy(policy) {
            Ok(run) => {
                finals.push((policy.label(), run.disks.final_avg_reads));
                series.push(Series::from_updates(
                    policy.label(),
                    run.disks.per_batch.iter().map(|b| b.avg_reads_per_long_list),
                ));
            }
            Err(e) if is_out_of_space(&e) => {
                println!("{}: disks not large enough (as in the paper for fill 0)", policy.label());
            }
            Err(e) => panic!("policy {policy}: {e}"),
        }
    }
    emit_figure(&Figure {
        id: "figure10".into(),
        title: "Average read operations per long list".into(),
        x_label: "index after update".into(),
        y_label: "average read operations per long list".into(),
        series,
    });
    // The paper's §5.2.1 ratios: whole beats fill z by ~1.5x and new z by
    // ~2x in the final index.
    for (a, b) in [("whole z", "fill z"), ("whole z", "new z")] {
        let get = |n: &str| finals.iter().find(|(l, _)| l == n).map(|&(_, v)| v);
        if let (Some(x), Some(y)) = (get(a), get(b)) {
            println!("final avg reads: {b} / {a} = {:.2}", y / x);
        }
    }
}
