//! Ablation: posting-list compression, modeled through `BlockPosting`.
//!
//! The paper notes that `BlockPosting` and `BlockSize` "implicitly model
//! the efficiency of the compression algorithm applied to long lists"
//! (§4.4), and that the Zobel–Moffat–Sacks-Davis compression methods
//! "complement this paper well" (§6). Our delta-varint codec measures the
//! achievable ratio on this corpus's actual gap distribution, and the
//! sweep shows what better compression (more postings per block) buys:
//! fewer blocks, fewer seeks, faster builds — at identical policy logic.

use invidx_bench::{emit_table, params, prepare};
use invidx_core::policy::Policy;
use invidx_core::postings::{fixed, varint};
use invidx_core::types::DocId;
use invidx_sim::{SimParams, TextTable};
use invidx_disk::exercise;

fn main() {
    // Part 1: measured compression ratio of the delta-varint codec on
    // realistic long lists (gap structure from the bucket-stage output).
    let exp = prepare();
    let mut raw = 0usize;
    let mut packed = 0usize;
    let mut lists = 0usize;
    // Rebuild representative long lists: concatenate each word's update
    // counts into one posting list with monotone ids.
    use std::collections::HashMap;
    let mut totals: HashMap<u64, u32> = HashMap::new();
    for b in &exp.buckets.long_updates {
        for &(w, c) in &b.pairs {
            *totals.entry(w).or_insert(0) += c;
        }
    }
    for (i, (_, &count)) in totals.iter().enumerate() {
        if i % 37 != 0 {
            continue; // sample ~3% of lists
        }
        // Doc-id gaps ~ total docs / list length, the dominant regime.
        let n = count as usize;
        let stride = (exp.corpus_stats.documents as usize / n.max(1)).max(1) as u32;
        let docs: Vec<DocId> = (0..n as u32).map(|i| DocId(i * stride)).collect();
        raw += fixed::encoded_len(docs.len());
        packed += varint::encode(&docs).len();
        lists += 1;
    }
    let ratio = raw as f64 / packed.max(1) as f64;
    println!(
        "delta-varint on {lists} sampled long lists: {:.2}x compression \
         ({} KB -> {} KB)\n",
        ratio,
        raw / 1024,
        packed / 1024
    );

    // Part 2: sweep BlockPosting — the knob that compression turns.
    let base = params();
    let mut rows = Vec::new();
    for bp in [50u64, 100, 200, 400, 800] {
        // Quick mode shrinks the block; skip sweep points that cannot fit.
        if bp * 4 > base.block_size as u64 {
            invidx_obs::log_progress(
                "ablation",
                &format!("skipping bp={bp}: exceeds the {}-byte block", base.block_size),
            );
            continue;
        }
        let p = SimParams { block_postings: bp, ..base.clone() };
        let out = invidx_sim::compute_disks(&p, Policy::balanced(), &exp.buckets.long_updates)
            .expect("disks");
        let timing = exercise(&out.trace, &p.exercise_config());
        rows.push(vec![
            bp.to_string(),
            out.trace.ops.len().to_string(),
            format!("{:.2}", out.final_utilization),
            format!("{:.2}", out.final_avg_reads),
            format!("{:.1}", timing.total_seconds()),
        ]);
    }
    emit_table(&TextTable {
        id: "ablation_compression".into(),
        title: format!(
            "BlockPosting sweep (compression model; measured varint ratio {ratio:.2}x \
             would support ~{} postings/block at 4 KB)",
            (100.0 * ratio) as u64
        ),
        headers: vec![
            "BlockPosting".into(),
            "I/O ops".into(),
            "Util".into(),
            "Reads/list".into(),
            "Modeled s".into(),
        ],
        rows,
    });
}
