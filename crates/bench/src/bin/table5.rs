//! Table 5: allocation strategies for the **new** style (with in-place
//! updates) — average reads per long list, utilization, in-place updates
//! performed, and the fraction of possible in-place updates. The paper
//! chooses each strategy's constant "by increasing it until long list
//! utilization was at 70%"; we report a small sweep bracketing that level.
//! Expected outcome: proportional offers the best read performance at
//! comparable utilization.

use invidx_bench::{emit_table, prepare};
use invidx_core::policy::{Alloc, Limit, Policy, Style};
use invidx_sim::TextTable;

fn main() {
    let exp = prepare();
    let allocs: Vec<(&str, String, Alloc)> = vec![
        ("constant", "100".into(), Alloc::Constant { k: 100 }),
        ("constant", "300".into(), Alloc::Constant { k: 300 }),
        ("constant", "700".into(), Alloc::Constant { k: 700 }),
        ("block", "2".into(), Alloc::Block { k: 2 }),
        ("block", "4".into(), Alloc::Block { k: 4 }),
        ("proportional", "1.2".into(), Alloc::Proportional { k: 1.2 }),
        ("proportional", "2.0".into(), Alloc::Proportional { k: 2.0 }),
    ];
    let mut rows = Vec::new();
    for (name, k, alloc) in allocs {
        let policy = Policy::new(Style::New, Limit::Fits, alloc);
        let run = exp.run_policy(policy).expect("policy run");
        let s = run.disks.final_stats;
        rows.push(vec![
            name.to_string(),
            k,
            format!("{:.2}", run.disks.final_avg_reads),
            format!("{:.2}", run.disks.final_utilization),
            s.in_place_updates.to_string(),
            format!("{:.2}", s.in_place_fraction()),
        ]);
    }
    emit_table(&TextTable {
        id: "table5".into(),
        title: "Allocation strategies, new style (final index)".into(),
        headers: vec![
            "Allocation".into(),
            "k".into(),
            "Read".into(),
            "Util".into(),
            "In-place".into(),
            "Frac".into(),
        ],
        rows,
    });
    let total_possible = exp
        .run_policy(Policy::new(Style::New, Limit::Fits, Alloc::Constant { k: 0 }))
        .expect("baseline")
        .disks
        .final_stats
        .possible_in_place;
    println!("total possible in-place updates: {total_possible}");
}
