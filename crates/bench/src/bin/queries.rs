//! Query performance, executed (extension of Figure 10). The paper
//! estimates query cost from chunk counts; here both retrieval-model
//! workloads of §5.2.1 are actually run against live indexes built under
//! each policy, with every read traced and timed on the disk model.
//!
//! Expected: the Figure 10 ordering carries over to executed vector-space
//! queries (whole < fill z < new z << new 0); boolean queries, dominated
//! by bucket-resident infrequent words, discriminate policies far less.

use invidx_bench::{emit_table, prepare, quick};
use invidx_sim::{build_dual_index, execute_queries, QueryWorkload, TextTable};

fn main() {
    let exp = prepare();
    let n_queries = if quick() { 30 } else { 200 };
    let vector = QueryWorkload::vector_space(&exp.params.corpus, n_queries, 0xBEEF);
    let boolean = QueryWorkload::boolean(&exp.params.corpus, n_queries, 0xBEEF);

    let mut rows = Vec::new();
    for policy in invidx_bench::figure_policies() {
        let (index, _) = match build_dual_index(&exp.params, policy, &exp.batches) {
            Ok(x) => x,
            Err(e) if invidx_sim::disks::is_out_of_space(&e) => {
                println!("{}: disks not large enough (skipped)", policy.label());
                continue;
            }
            Err(e) => panic!("{policy}: {e}"),
        };
        index.array().take_trace(); // discard the build trace
        for workload in [&vector, &boolean] {
            let cost = execute_queries(&index, &exp.params, workload).expect("queries");
            rows.push(vec![
                policy.label(),
                format!("{:?}", cost.model),
                format!("{:.1}", cost.ops_per_query()),
                format!("{:.1}", cost.ms_per_query()),
                format!("{:.2}", cost.long_words as f64 / cost.hit_words.max(1) as f64),
                cost.postings.to_string(),
            ]);
        }
    }
    emit_table(&TextTable {
        id: "queries".into(),
        title: format!("Executed query workloads ({n_queries} queries per model)"),
        headers: vec![
            "Policy".into(),
            "Model".into(),
            "Ops/query".into(),
            "ms/query".into(),
            "Long frac".into(),
            "Postings".into(),
        ],
        rows,
    });
}
