//! Table 6: allocation strategies for the **whole** style. Reads are
//! always 1.0 for this style, so the trade-off is utilization vs the
//! number of in-place updates (which avoid whole-list copies). Expected
//! outcome: proportional is "the only strategy to offer at least ~60-70%
//! for both utilization and the fraction of in-place updates".

use invidx_bench::{emit_table, prepare};
use invidx_core::policy::{Alloc, Limit, Policy, Style};
use invidx_sim::TextTable;

fn main() {
    let exp = prepare();
    let allocs: Vec<(&str, String, Alloc)> = vec![
        ("constant", "0".into(), Alloc::Constant { k: 0 }),
        ("constant", "700".into(), Alloc::Constant { k: 700 }),
        ("constant", "1000".into(), Alloc::Constant { k: 1000 }),
        ("block", "2".into(), Alloc::Block { k: 2 }),
        ("block", "4".into(), Alloc::Block { k: 4 }),
        ("block", "8".into(), Alloc::Block { k: 8 }),
        ("proportional", "1.2".into(), Alloc::Proportional { k: 1.2 }),
        ("proportional", "1.75".into(), Alloc::Proportional { k: 1.75 }),
        ("proportional", "2.0".into(), Alloc::Proportional { k: 2.0 }),
    ];
    let mut rows = Vec::new();
    for (name, k, alloc) in allocs {
        let policy = Policy::new(Style::Whole, Limit::Fits, alloc);
        let run = exp.run_policy(policy).expect("policy run");
        let s = run.disks.final_stats;
        assert!(
            (run.disks.final_avg_reads - 1.0).abs() < 1e-9,
            "whole style must keep one chunk per list"
        );
        rows.push(vec![
            name.to_string(),
            k,
            format!("{:.2}", run.disks.final_utilization),
            s.in_place_updates.to_string(),
            format!("{:.2}", s.in_place_fraction()),
        ]);
    }
    emit_table(&TextTable {
        id: "table6".into(),
        title: "Allocation strategies, whole style (final index; Read = 1.0 throughout)".into(),
        headers: vec![
            "Allocation".into(),
            "k".into(),
            "Util".into(),
            "In-place".into(),
            "Frac".into(),
        ],
        rows,
    });
}
