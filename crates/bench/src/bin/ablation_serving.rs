//! Ablation: concurrent serving under load. The paper argues for
//! incremental updates precisely so the index can stay online — "7 days a
//! week, 24 hours a day" (§1) — which only matters if queries keep flowing
//! *while* batches land. This load generator drives the `invidx-serve`
//! stack end to end over its TCP wire protocol:
//!
//! * **Sustained phase** — 8 closed-loop clients replay a Zipf-weighted
//!   query stream against the server while a writer thread keeps ingesting
//!   batches. Every response's `(epoch, docs)` pair is checked against a
//!   single-threaded oracle replay of the same batch schedule; one
//!   mismatch fails the run.
//! * **Open-loop phase** — arrivals are sampled from a Poisson process at
//!   a fixed offered rate (same Zipf query mix) and each request gets its
//!   own connection and thread; arrivals never wait for completions, so a
//!   saturating server can't throttle its own load generator, and latency
//!   is measured from the *scheduled* arrival instant — queueing delay
//!   counts. Every response is oracle-checked.
//! * **Overload phase** — the server is rebuilt with a deliberately tiny
//!   queue (1 reader, high-water 4) and its writer wedged, then burst
//!   clients flood it. The point under test: the server answers with
//!   *typed* `ERR overloaded` / `ERR timeout` lines instead of queueing
//!   unboundedly or dropping connections.
//!
//! Reported: throughput, p50/p95/p99 latency, cache hit rate, shed rate.
//! `INVIDX_QUICK=1` shrinks the corpus and request counts to CI scale.
//! With `INVIDX_MAX_P99_MS=<ms>` the run exits non-zero unless the
//! sustained-phase p99 latency stays at or under `ms`.

use invidx_bench::{emit_table, init_metrics, quick};
use invidx_core::index::IndexConfig;
use invidx_corpus::vocab::word_string;
use invidx_corpus::zipf::ZipfTable;
use invidx_disk::sparse_array;
use invidx_ir::SearchEngine;
use invidx_serve::{
    parse_response, Payload, QueryService, Request, ServeConfig, Server,
};
use invidx_sim::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const VOCAB_RANKS: u64 = 2_000;
const WORDS_PER_DOC: usize = 12;
const ZIPF_S: f64 = 1.05;

struct Scale {
    batches: usize,
    docs_per_batch: usize,
    requests_per_client: usize,
    query_pool: usize,
}

fn scale() -> Scale {
    if quick() {
        Scale { batches: 6, docs_per_batch: 20, requests_per_client: 200, query_pool: 48 }
    } else {
        Scale { batches: 16, docs_per_batch: 60, requests_per_client: 1_500, query_pool: 96 }
    }
}

/// Zipf-sampled document text: frequent ranks dominate, like real text.
fn make_batches(s: &Scale, zipf: &ZipfTable, rng: &mut StdRng) -> Vec<Vec<String>> {
    (0..s.batches)
        .map(|_| {
            (0..s.docs_per_batch)
                .map(|_| {
                    (0..WORDS_PER_DOC)
                        .map(|_| word_string(zipf.sample(rng)))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect()
        })
        .collect()
}

/// The query pool the clients replay (itself Zipf-weighted: queries are
/// built from the same skewed rank distribution, so popular words repeat —
/// which is exactly what gives the result cache something to do).
fn make_queries(s: &Scale, zipf: &ZipfTable, rng: &mut StdRng) -> Vec<Request> {
    (0..s.query_pool)
        .map(|i| {
            let mut w = || word_string(zipf.sample(rng));
            match i % 4 {
                0 => Request::Boolean(w()),
                1 => Request::Boolean(format!("{} and {}", w(), w())),
                2 => Request::Boolean(format!("({} or {}) and {}", w(), w(), w())),
                _ => Request::Near(w(), w(), 5),
            }
        })
        .collect()
}

fn run_oracle_request(engine: &SearchEngine, req: &Request) -> Vec<u32> {
    let list = match req {
        Request::Boolean(q) => engine.boolean_str(q).expect("oracle boolean"),
        Request::Near(w1, w2, win) => engine.within(w1, w2, *win).expect("oracle near"),
        other => panic!("not in the oracle mix: {other:?}"),
    };
    list.docs().iter().map(|d| d.0).collect()
}

/// `oracle[epoch][wire-form] = expected docs` from a single-threaded replay.
fn build_oracle(
    schedule: &[Vec<String>],
    queries: &[Request],
) -> Vec<HashMap<String, Vec<u32>>> {
    let mut engine =
        SearchEngine::create(sparse_array(4, 200_000, 512), IndexConfig::small()).unwrap();
    let row = |e: &SearchEngine| {
        queries.iter().map(|q| (q.to_wire(), run_oracle_request(e, q))).collect()
    };
    let mut oracle = vec![row(&engine)];
    for batch in schedule {
        for text in batch {
            engine.add_document(text).unwrap();
        }
        engine.flush().unwrap();
        oracle.push(row(&engine));
    }
    oracle
}

struct ClientOutcome {
    latencies_us: Vec<u64>,
    ok: u64,
    shed: u64,
    timeouts: u64,
}

/// One closed-loop TCP client: send a request line, wait for the reply,
/// oracle-check it, repeat.
fn run_client(
    addr: std::net::SocketAddr,
    queries: &[Request],
    oracle: &[HashMap<String, Vec<u32>>],
    requests: usize,
    seed: u64,
    mismatches: &AtomicU64,
) -> ClientOutcome {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out =
        ClientOutcome { latencies_us: Vec::with_capacity(requests), ok: 0, shed: 0, timeouts: 0 };
    let mut line = String::new();
    for _ in 0..requests {
        let req = &queries[rng.random_range(0..queries.len())];
        let t = Instant::now();
        writeln!(writer, "{}", req.to_wire()).expect("send");
        writer.flush().expect("flush");
        line.clear();
        reader.read_line(&mut line).expect("recv");
        out.latencies_us.push(t.elapsed().as_micros() as u64);
        match parse_response(&line).expect("well-formed reply") {
            Ok(resp) => {
                let Payload::Docs(got) = &resp.payload else {
                    panic!("unexpected payload: {line}")
                };
                let want = &oracle[resp.epoch as usize][&req.to_wire()];
                if got != want {
                    mismatches.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "MISMATCH {} at epoch {}: got {got:?}, oracle {want:?}",
                        req.to_wire(),
                        resp.epoch
                    );
                }
                out.ok += 1;
            }
            Err(e) if e.code() == "overloaded" => out.shed += 1,
            Err(e) if e.code() == "timeout" => out.timeouts += 1,
            Err(e) => panic!("unexpected serving error: {e}"),
        }
    }
    out
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

struct PhaseRow {
    label: String,
    clients: usize,
    requests: u64,
    ok: u64,
    shed: u64,
    timeouts: u64,
    secs: f64,
    latencies_us: Vec<u64>,
    cache_hit_rate: f64,
}

impl PhaseRow {
    fn cells(mut self) -> Vec<String> {
        self.latencies_us.sort_unstable();
        vec![
            self.label,
            self.clients.to_string(),
            self.requests.to_string(),
            self.ok.to_string(),
            self.shed.to_string(),
            self.timeouts.to_string(),
            format!("{:.0}", self.ok as f64 / self.secs),
            format!("{:.2}", percentile(&self.latencies_us, 0.50)),
            format!("{:.2}", percentile(&self.latencies_us, 0.95)),
            format!("{:.2}", percentile(&self.latencies_us, 0.99)),
            format!("{:.1}%", self.cache_hit_rate * 100.0),
            format!("{:.1}%", self.shed as f64 / self.requests.max(1) as f64 * 100.0),
        ]
    }
}

/// Sustained phase: 8 clients vs 1 writer, every result oracle-checked.
fn sustained_phase(
    s: &Scale,
    schedule: Arc<Vec<Vec<String>>>,
    queries: Arc<Vec<Request>>,
    oracle: Arc<Vec<HashMap<String, Vec<u32>>>>,
) -> PhaseRow {
    let engine =
        SearchEngine::create(sparse_array(4, 200_000, 512), IndexConfig::small()).unwrap();
    let config = ServeConfig::builder()
        .result_cache_capacity(512)
        .readers(4)
        .high_water(1_024)
        .deadline(Duration::from_secs(30))
        .build()
        .expect("valid serve config");
    let service = Arc::new(QueryService::with_config(engine, config).expect("serve"));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), config).expect("bind");
    let addr = server.addr();
    let mismatches = Arc::new(AtomicU64::new(0));

    let t = Instant::now();
    let writer = {
        let service = Arc::clone(&service);
        let schedule = Arc::clone(&schedule);
        std::thread::spawn(move || {
            for batch in schedule.iter() {
                service.ingest_batch(batch).expect("ingest");
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let queries = Arc::clone(&queries);
            let oracle = Arc::clone(&oracle);
            let mismatches = Arc::clone(&mismatches);
            let requests = s.requests_per_client;
            std::thread::spawn(move || {
                run_client(addr, &queries, &oracle, requests, 0xC0FFEE + c as u64, &mismatches)
            })
        })
        .collect();
    let outcomes: Vec<ClientOutcome> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    writer.join().unwrap();
    let secs = t.elapsed().as_secs_f64();
    server.shutdown();

    let bad = mismatches.load(Ordering::Relaxed);
    assert_eq!(bad, 0, "{bad} oracle mismatches — serving returned incorrect results");
    let stats = service.stats();
    assert_eq!(stats.batches as usize, s.batches, "writer must have kept updating");
    let lookups = stats.cache_hits + stats.cache_misses;
    PhaseRow {
        label: "sustained (oracle-checked)".into(),
        clients: CLIENTS,
        requests: outcomes.iter().map(|o| o.latencies_us.len() as u64).sum(),
        ok: outcomes.iter().map(|o| o.ok).sum(),
        shed: outcomes.iter().map(|o| o.shed).sum(),
        timeouts: outcomes.iter().map(|o| o.timeouts).sum(),
        secs,
        latencies_us: outcomes.into_iter().flat_map(|o| o.latencies_us).collect(),
        cache_hit_rate: if lookups == 0 { 0.0 } else { stats.cache_hits as f64 / lookups as f64 },
    }
}

/// Open-loop phase: fixed-rate Poisson arrivals against a warm server.
/// Unlike the closed-loop sustained phase, the arrival process is
/// independent of completions — each arrival gets its own connection and
/// thread, and latency is charged from the request's *scheduled* arrival
/// time, so backlog shows up as latency rather than as a slowed client.
fn open_loop_phase(
    queries: Arc<Vec<Request>>,
    oracle: Arc<Vec<HashMap<String, Vec<u32>>>>,
    schedule: &[Vec<String>],
) -> PhaseRow {
    let engine =
        SearchEngine::create(sparse_array(4, 200_000, 512), IndexConfig::small()).unwrap();
    let config = ServeConfig::builder()
        .result_cache_capacity(512)
        .readers(4)
        .high_water(256)
        .deadline(Duration::from_secs(5))
        .build()
        .expect("valid serve config");
    let service = Arc::new(QueryService::with_config(engine, config).expect("serve"));
    for batch in schedule {
        service.ingest_batch(batch).expect("seed");
    }
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), config).expect("bind");
    let addr = server.addr();
    let mismatches = Arc::new(AtomicU64::new(0));
    let (rate, window) = if quick() {
        (400.0, Duration::from_secs(2))
    } else {
        (1_000.0, Duration::from_secs(4))
    };

    let (tx, rx) = std::sync::mpsc::channel::<(u8, u64)>(); // (0 ok | 1 shed | 2 timeout, us)
    let mut rng = StdRng::seed_from_u64(0x09E71007);
    let started = Instant::now();
    let mut next = Duration::ZERO;
    let mut arrivals = 0u64;
    let mut workers = Vec::new();
    while next < window {
        let due = started + next;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        arrivals += 1;
        let pick = rng.random_range(0..queries.len());
        let queries = Arc::clone(&queries);
        let oracle = Arc::clone(&oracle);
        let mismatches = Arc::clone(&mismatches);
        let tx = tx.clone();
        workers.push(std::thread::spawn(move || {
            let req = &queries[pick];
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = BufWriter::new(stream);
            writeln!(writer, "{}", req.to_wire()).expect("send");
            writer.flush().expect("flush");
            let mut line = String::new();
            reader.read_line(&mut line).expect("recv");
            let latency = due.elapsed().as_micros() as u64;
            match parse_response(&line).expect("well-formed reply") {
                Ok(resp) => {
                    let Payload::Docs(got) = &resp.payload else {
                        panic!("unexpected payload: {line}")
                    };
                    let want = &oracle[resp.epoch as usize][&req.to_wire()];
                    if got != want {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "MISMATCH {} at epoch {}: got {got:?}, oracle {want:?}",
                            req.to_wire(),
                            resp.epoch
                        );
                    }
                    let _ = tx.send((0, latency));
                }
                Err(e) if e.code() == "overloaded" => drop(tx.send((1, latency))),
                Err(e) if e.code() == "timeout" => drop(tx.send((2, latency))),
                Err(e) => panic!("unexpected serving error: {e}"),
            }
        }));
        // Exponential inter-arrival; u < 1.0 keeps the log finite.
        let u: f64 = rng.random();
        next += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
    }
    for w in workers {
        w.join().expect("worker");
    }
    let secs = started.elapsed().as_secs_f64();
    drop(tx);
    server.shutdown();

    let bad = mismatches.load(Ordering::Relaxed);
    assert_eq!(bad, 0, "{bad} oracle mismatches in the open-loop phase");
    let mut out = PhaseRow {
        label: format!("open loop ({rate:.0}/s Poisson)"),
        clients: 1, // one arrival process, not a closed client pool
        requests: arrivals,
        ok: 0,
        shed: 0,
        timeouts: 0,
        secs,
        latencies_us: Vec::new(),
        cache_hit_rate: 0.0,
    };
    for (kind, latency) in rx {
        match kind {
            0 => {
                out.ok += 1;
                out.latencies_us.push(latency);
            }
            1 => out.shed += 1,
            _ => out.timeouts += 1,
        }
    }
    assert!(out.ok > 0, "open loop produced no successful responses");
    let stats = service.stats();
    let lookups = stats.cache_hits + stats.cache_misses;
    out.cache_hit_rate =
        if lookups == 0 { 0.0 } else { stats.cache_hits as f64 / lookups as f64 };
    out
}

/// Overload phase: tiny queue, wedged writer, burst clients. The server
/// must degrade by answering typed load errors, not by queueing forever.
fn overload_phase(queries: Arc<Vec<Request>>, seed_batch: &[String]) -> PhaseRow {
    let engine =
        SearchEngine::create(sparse_array(2, 50_000, 256), IndexConfig::small()).unwrap();
    let config = ServeConfig::builder()
        .result_cache_capacity(0)
        .readers(1)
        .high_water(4)
        .deadline(Duration::from_millis(20))
        .build()
        .expect("valid serve config");
    let service = Arc::new(QueryService::with_config(engine, config).expect("serve"));
    service.ingest_batch(seed_batch).expect("seed");
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), config).expect("bind");
    let addr = server.addr();

    // Wedge the single reader behind the engine write lock so the queue
    // fills and admission control has to act.
    let wedge_service = Arc::clone(&service);
    let hold = Duration::from_millis(if quick() { 300 } else { 800 });
    let wedge = std::thread::spawn(move || {
        wedge_service.with_blocked_writer(|| std::thread::sleep(hold));
    });

    let burst_clients = 16;
    let per_client = 40;
    let t = Instant::now();
    let clients: Vec<_> = (0..burst_clients)
        .map(|c| {
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = BufWriter::new(stream);
                let mut rng = StdRng::seed_from_u64(0xBAD10AD + c as u64);
                let mut out = ClientOutcome {
                    latencies_us: Vec::with_capacity(per_client),
                    ok: 0,
                    shed: 0,
                    timeouts: 0,
                };
                let mut line = String::new();
                for _ in 0..per_client {
                    let req = &queries[rng.random_range(0..queries.len())];
                    let t = Instant::now();
                    writeln!(writer, "{}", req.to_wire()).expect("send");
                    writer.flush().expect("flush");
                    line.clear();
                    reader.read_line(&mut line).expect("recv");
                    out.latencies_us.push(t.elapsed().as_micros() as u64);
                    match parse_response(&line).expect("well-formed reply") {
                        Ok(_) => out.ok += 1,
                        Err(e) if e.code() == "overloaded" => out.shed += 1,
                        Err(e) if e.code() == "timeout" => out.timeouts += 1,
                        Err(e) => panic!("untyped degradation: {e}"),
                    }
                }
                out
            })
        })
        .collect();
    let outcomes: Vec<ClientOutcome> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let secs = t.elapsed().as_secs_f64();
    wedge.join().unwrap();
    server.shutdown();

    let shed: u64 = outcomes.iter().map(|o| o.shed).sum();
    let timeouts: u64 = outcomes.iter().map(|o| o.timeouts).sum();
    assert!(
        shed + timeouts > 0,
        "deliberate overload produced no typed load responses — admission control is inert"
    );
    let stats = service.stats();
    assert_eq!(stats.shed, shed, "server-side shed counter must match client-observed sheds");
    PhaseRow {
        label: "overload (1 reader, hw 4)".into(),
        clients: burst_clients,
        requests: (burst_clients * per_client) as u64,
        ok: outcomes.iter().map(|o| o.ok).sum(),
        shed,
        timeouts,
        secs,
        latencies_us: outcomes.into_iter().flat_map(|o| o.latencies_us).collect(),
        cache_hit_rate: 0.0,
    }
}

fn main() {
    init_metrics();
    let s = scale();
    let zipf = ZipfTable::new(VOCAB_RANKS as usize, ZIPF_S);
    let mut rng = StdRng::seed_from_u64(0x5EED5EED);
    let schedule = Arc::new(make_batches(&s, &zipf, &mut rng));
    let queries = Arc::new(make_queries(&s, &zipf, &mut rng));
    invidx_obs::log_progress(
        "serving",
        &format!(
            "{} batches x {} docs, {} queries in pool, {} clients x {} requests",
            s.batches, s.docs_per_batch, queries.len(), CLIENTS, s.requests_per_client
        ),
    );
    let oracle = Arc::new(build_oracle(&schedule, &queries));
    invidx_obs::log_progress("serving", "oracle replay built; starting load");

    let sustained =
        sustained_phase(&s, Arc::clone(&schedule), Arc::clone(&queries), Arc::clone(&oracle));
    let open_loop = open_loop_phase(Arc::clone(&queries), oracle, &schedule);
    let overload = overload_phase(queries, &schedule[0]);

    let sustained_p99_ms = {
        let mut us = sustained.latencies_us.clone();
        us.sort_unstable();
        percentile(&us, 0.99)
    };

    emit_table(&TextTable {
        id: "ablation_serving".into(),
        title: format!(
            "Concurrent serving: {} docs ingested live, Zipf(s={ZIPF_S}) queries, \
             every sustained-phase result oracle-checked",
            s.batches * s.docs_per_batch
        ),
        headers: vec![
            "Phase".into(),
            "Clients".into(),
            "Requests".into(),
            "OK".into(),
            "Shed".into(),
            "Timeout".into(),
            "Req/s".into(),
            "p50 ms".into(),
            "p95 ms".into(),
            "p99 ms".into(),
            "Cache hit".into(),
            "Shed rate".into(),
        ],
        rows: vec![sustained.cells(), open_loop.cells(), overload.cells()],
    });

    if let Ok(max) = std::env::var("INVIDX_MAX_P99_MS") {
        let max: f64 = max.parse().expect("INVIDX_MAX_P99_MS must be a number");
        if sustained_p99_ms > max {
            eprintln!("FAIL: sustained-phase p99 {sustained_p99_ms:.2} ms > SLO {max:.2} ms");
            std::process::exit(1);
        }
        println!("OK: sustained-phase p99 {sustained_p99_ms:.2} ms <= SLO {max:.2} ms");
    }
}
