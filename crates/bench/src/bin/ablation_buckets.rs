//! Ablation: bucket tuning. The paper defers "the issue of tuning the size
//! of the buckets and the number of buckets" to its technical note [10],
//! noting the tuning "uniformly affects the results". This sweep makes the
//! trade-off concrete: more/larger buckets absorb more postings (fewer
//! long lists, fewer long-list I/Os) but cost more to flush each batch.

use invidx_bench::{emit_table, params};
use invidx_core::policy::Policy;
use invidx_sim::{Experiment, SimParams, TextTable};

fn run(base: &SimParams, buckets: usize, bucket_size: u64) -> Vec<String> {
    let params = SimParams { buckets, bucket_size, ..base.clone() };
    let exp = Experiment::prepare(params).expect("prepare");
    let run = exp.run_policy(Policy::balanced()).expect("policy");
    let last = exp.buckets.categories.last().expect("batches");
    vec![
        buckets.to_string(),
        bucket_size.to_string(),
        format!("{:.2} M", buckets as f64 * bucket_size as f64 / 1e6),
        exp.buckets.total_updates().to_string(),
        format!("{:.2}", last.frac_long()),
        run.disks.trace.ops.len().to_string(),
        format!("{:.1}", run.exercise.total_seconds()),
    ]
}

fn main() {
    let base = params();
    let sweep: Vec<(usize, u64)> = if invidx_bench::quick() {
        vec![(64, 100), (128, 200), (256, 400)]
    } else {
        vec![
            (1024, 500),
            (2048, 500),
            (4096, 250),
            (4096, 500),
            (4096, 1000),
            (8192, 500),
            (8192, 1000),
        ]
    };
    let rows = sweep.into_iter().map(|(b, s)| run(&base, b, s)).collect();
    emit_table(&TextTable {
        id: "ablation_buckets".into(),
        title: "Bucket tuning sweep (policy: new z prop 2.0)".into(),
        headers: vec![
            "Buckets".into(),
            "BucketSize".into(),
            "Total units".into(),
            "Long updates".into(),
            "Final long frac".into(),
            "I/O ops".into(),
            "Modeled s".into(),
        ],
        rows,
    });
}
