//! Criterion micro-benchmarks for the hot paths of every substrate:
//! Zipf sampling, the lexer, posting codecs and merges, bucket operations,
//! the extent allocators, and trace coalescing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use invidx_core::bucket::BucketStore;
use invidx_core::codec::{self, PostingsCodec};
use invidx_core::postings::{fixed, varint, PostingList};
use invidx_core::types::{DocId, WordId};
use invidx_corpus::lexer;
use invidx_ir::{rank_exhaustive, rank_seeded, Bm25Params, PostingSource};
use invidx_corpus::zipf::{ZipfRejection, ZipfTable};
use invidx_disk::{
    coalesce_batch, BuddyAllocator, ExtentAllocator, FitStrategy, FreeList, IoOp, OpKind, Payload,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf");
    g.throughput(Throughput::Elements(1));
    let table = ZipfTable::new(1_000_000, 1.1);
    let mut rng = StdRng::seed_from_u64(7);
    g.bench_function("table_1M", |b| b.iter(|| black_box(table.sample(&mut rng))));
    let rej = ZipfRejection::new(1_000_000_000, 1.1);
    g.bench_function("rejection_1G", |b| b.iter(|| black_box(rej.sample(&mut rng))));
    g.finish();
}

fn bench_lexer(c: &mut Criterion) {
    let doc = {
        let params = invidx_corpus::CorpusParams {
            days: 1,
            docs_per_weekday: 1,
            tokens_per_doc_median: 300.0,
            min_doc_chars: 10,
            interrupted_day: None,
            ..invidx_corpus::CorpusParams::tiny()
        };
        let day = invidx_corpus::CorpusGenerator::new(params).next().expect("one day");
        invidx_corpus::doc::render(&day.docs[0])
    };
    let mut g = c.benchmark_group("lexer");
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("document_words", |b| b.iter(|| black_box(lexer::document_words(&doc))));
    g.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let docs: Vec<DocId> = (0..10_000u32).map(|i| DocId(i * 3)).collect();
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Elements(docs.len() as u64));
    g.bench_function("fixed_encode", |b| {
        let mut buf = vec![0u8; fixed::encoded_len(docs.len())];
        b.iter(|| fixed::encode_into(black_box(&docs), &mut buf))
    });
    let fixed_bytes = {
        let mut buf = vec![0u8; fixed::encoded_len(docs.len())];
        fixed::encode_into(&docs, &mut buf);
        buf
    };
    g.bench_function("fixed_decode", |b| {
        b.iter(|| black_box(fixed::decode(&fixed_bytes, docs.len()).unwrap()))
    });
    g.bench_function("varint_encode", |b| b.iter(|| black_box(varint::encode(&docs))));
    let varint_bytes = varint::encode(&docs);
    g.bench_function("varint_decode", |b| {
        b.iter(|| black_box(varint::decode(&varint_bytes).unwrap()))
    });
    g.finish();
}

fn bench_codec_streams(c: &mut Criterion) {
    // Long-list shape: 10k postings, mixed small gaps — the regime the
    // coding-block streams are built for.
    let docs: Vec<DocId> = (0..10_000u32).map(|i| DocId(i * 3)).collect();
    let mut g = c.benchmark_group("codec_stream");
    g.throughput(Throughput::Elements(docs.len() as u64));
    for codec in [PostingsCodec::VarintDelta, PostingsCodec::BitPacked] {
        g.bench_function(format!("{codec}_encode"), |b| {
            b.iter(|| black_box(codec::encode_stream(codec, &docs, 128)))
        });
        let stream = codec::encode_stream(codec, &docs, 128);
        g.bench_function(format!("{codec}_decode"), |b| {
            b.iter(|| black_box(codec::decode_stream(&stream, docs.len() as u64).unwrap()))
        });
        // Skip-decode from the middle: the per-block max_doc entries let
        // half the stream go untouched.
        g.bench_function(format!("{codec}_skip_half"), |b| {
            b.iter(|| {
                black_box(codec::decode_stream_from(&stream, docs.len() as u64, 15_000).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_ranked_topk(c: &mut Criterion) {
    /// Synthetic postings: word `w` holds every `STRIDES[w]`-th doc id.
    struct Lists(Vec<PostingList>);
    impl PostingSource for Lists {
        fn postings(&self, word: WordId) -> invidx_core::types::Result<PostingList> {
            Ok(self.0[word.0 as usize].clone())
        }
    }
    const N: u32 = 50_000;
    const STRIDES: [u32; 5] = [2, 7, 31, 131, 997];
    let lists = Lists(
        STRIDES
            .iter()
            .map(|&s| PostingList::from_sorted((0..N / s).map(|i| DocId(i * s)).collect()))
            .collect(),
    );
    let total: u64 = STRIDES.iter().map(|&s| (N / s) as u64).sum();
    let terms: Vec<(WordId, f64)> = STRIDES
        .iter()
        .enumerate()
        .map(|(w, &s)| (WordId(w as u64), (1.0 + N as f64 / (N / s) as f64).ln()))
        .collect();
    let lens: std::collections::HashMap<DocId, u32> =
        (0..N).map(|d| (DocId(d), 5 + (d * 13) % 37)).collect();
    let avgdl = lens.values().map(|&l| l as u64).sum::<u64>() as f64 / N as f64;
    let p = Bm25Params::default();
    let mut g = c.benchmark_group("ranked_topk");
    g.throughput(Throughput::Elements(total));
    g.bench_function("wand_top10", |b| {
        b.iter(|| black_box(rank_seeded(&lists, &terms, &lens, avgdl, p, 10).unwrap()))
    });
    g.bench_function("exhaustive_top10", |b| {
        b.iter(|| black_box(rank_exhaustive(&lists, &terms, &lens, avgdl, p, 10).unwrap()))
    });
    g.finish();
}

fn bench_merges(c: &mut Criterion) {
    let a = PostingList::from_sorted((0..20_000u32).map(|i| DocId(i * 2)).collect());
    let b_list = PostingList::from_sorted((0..20_000u32).map(|i| DocId(i * 3)).collect());
    let mut g = c.benchmark_group("merge");
    g.throughput(Throughput::Elements((a.len() + b_list.len()) as u64));
    g.bench_function("union", |b| b.iter(|| black_box(a.union(&b_list))));
    g.bench_function("intersect", |b| b.iter(|| black_box(a.intersect(&b_list))));
    g.bench_function("difference", |b| b.iter(|| black_box(a.difference(&b_list))));
    g.finish();
}

fn bench_buckets(c: &mut Criterion) {
    let mut g = c.benchmark_group("bucket");
    g.bench_function("insert_small_lists", |b| {
        b.iter_batched(
            || BucketStore::new(64, 500).expect("store"),
            |mut store| {
                for i in 0..500u64 {
                    let list =
                        PostingList::from_sorted(vec![DocId(i as u32), DocId(i as u32 + 1)]);
                    black_box(store.insert(WordId(i + 1), &list).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("serialize_bucket", |b| {
        let mut store = BucketStore::new(1, 2000).expect("store");
        for i in 0..200u64 {
            let docs: Vec<DocId> = (0..8u32).map(|j| DocId(i as u32 * 10 + j)).collect();
            store.insert(WordId(i + 1), &PostingList::from_sorted(docs)).unwrap();
        }
        b.iter(|| black_box(store.serialize_bucket(0, 32 * 1024).unwrap()))
    });
    g.finish();
}

fn bench_allocators(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocator");
    fn churn(alloc: &mut dyn ExtentAllocator) {
        let mut held: Vec<(u64, u64)> = Vec::with_capacity(512);
        let mut state = 0xabcdefu64;
        for _ in 0..1000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if !state.is_multiple_of(3) || held.is_empty() {
                let want = 1 + (state >> 33) % 16;
                if let Ok(s) = alloc.alloc(want) {
                    held.push((s, want));
                }
            } else {
                let idx = ((state >> 17) as usize) % held.len();
                let (s, l) = held.swap_remove(idx);
                alloc.free(s, l).unwrap();
            }
        }
        for (s, l) in held {
            alloc.free(s, l).unwrap();
        }
    }
    g.bench_function("first_fit_churn", |b| {
        b.iter_batched(
            || FreeList::new(1 << 20, FitStrategy::FirstFit),
            |mut a| churn(&mut a),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("best_fit_churn", |b| {
        b.iter_batched(
            || FreeList::new(1 << 20, FitStrategy::BestFit),
            |mut a| churn(&mut a),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("buddy_churn", |b| {
        b.iter_batched(|| BuddyAllocator::new(20), |mut a| churn(&mut a), BatchSize::SmallInput)
    });
    g.finish();
}

fn bench_coalescing(c: &mut Criterion) {
    let ops: Vec<IoOp> = (0..10_000u64)
        .map(|i| IoOp {
            kind: OpKind::Write,
            disk: (i % 8) as u16,
            start: (i / 8) * 2,
            blocks: 2,
            payload: Payload::LongList { word: i, postings: 100 },
        })
        .collect();
    let mut g = c.benchmark_group("exercise");
    g.throughput(Throughput::Elements(ops.len() as u64));
    g.bench_function("coalesce_10k_ops", |b| b.iter(|| black_box(coalesce_batch(&ops, 8, 128))));
    g.finish();
}

criterion_group!(
    benches,
    bench_zipf,
    bench_lexer,
    bench_codecs,
    bench_codec_streams,
    bench_ranked_topk,
    bench_merges,
    bench_buckets,
    bench_allocators,
    bench_coalescing
);
criterion_main!(benches);
