//! Criterion macro-benchmarks: the experiment pipeline stages and the
//! integrated index, on a reduced corpus.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use invidx_core::index::{DualIndex, IndexConfig};
use invidx_core::policy::Policy;
use invidx_core::types::{DocId, WordId};
use invidx_corpus::{generate_batches, BatchUpdate, CorpusParams};
use invidx_disk::{exercise, sparse_array};
use invidx_sim::{BucketPipeline, Experiment, SimParams};
use std::hint::black_box;

fn apply(ix: &mut DualIndex, batches: &[BatchUpdate]) {
    use std::collections::HashMap;
    let mut counters: HashMap<WordId, u32> = HashMap::new();
    for batch in batches {
        for &(w, count) in &batch.pairs {
            let word = WordId(w);
            let c = counters.entry(word).or_insert(0);
            let list = invidx_core::postings::PostingList::from_sorted(
                (*c..*c + count).map(DocId).collect(),
            );
            *c += count;
            ix.insert_list(word, &list).expect("insert");
        }
        ix.flush_batch().expect("flush");
    }
}

fn bench_stages(c: &mut Criterion) {
    let params = SimParams::tiny();
    let (batches, stats) = generate_batches(params.corpus.clone());
    let exp = Experiment::prepare(params.clone()).expect("prepare");
    let base_run = exp.run_policy(Policy::balanced()).expect("run");

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(stats.total_postings));

    g.bench_function("invert_index", |b| {
        b.iter(|| black_box(generate_batches(params.corpus.clone())))
    });
    g.bench_function("compute_buckets", |b| {
        b.iter(|| {
            let p = BucketPipeline::new(params.buckets, params.bucket_size).expect("pipeline");
            black_box(p.run(&batches).expect("run"))
        })
    });
    for policy in [Policy::update_optimized(), Policy::balanced(), Policy::query_optimized()] {
        g.bench_function(format!("compute_disks/{policy}"), |b| {
            b.iter(|| {
                black_box(
                    invidx_sim::compute_disks(&params, policy, &exp.buckets.long_updates)
                        .expect("disks"),
                )
            })
        });
    }
    g.bench_function("exercise_disks", |b| {
        b.iter(|| black_box(exercise(&base_run.disks.trace, &params.exercise_config())))
    });
    g.finish();
}

fn bench_dual_index(c: &mut Criterion) {
    let corpus = CorpusParams { days: 4, docs_per_weekday: 60, ..CorpusParams::tiny() };
    let (batches, stats) = generate_batches(corpus);
    let config = |policy| {
        IndexConfig::builder()
            .num_buckets(128)
            .bucket_capacity_units(200)
            .block_postings(20)
            .policy(policy)
            .materialize_buckets(false)
            .build()
            .expect("valid config")
    };
    let mut g = c.benchmark_group("dual_index");
    g.sample_size(10);
    g.throughput(Throughput::Elements(stats.total_postings));
    for policy in [Policy::update_optimized(), Policy::balanced(), Policy::query_optimized()] {
        g.bench_function(format!("build/{policy}"), |b| {
            b.iter_batched(
                || sparse_array(4, 500_000, 512),
                |array| {
                    let mut ix = DualIndex::create(array, config(policy)).expect("create");
                    apply(&mut ix, &batches);
                    black_box(ix.batches())
                },
                BatchSize::SmallInput,
            )
        });
    }
    // Query path: build once, then measure reads.
    let array = sparse_array(4, 500_000, 512);
    let mut ix = DualIndex::create(array, config(Policy::balanced())).expect("create");
    apply(&mut ix, &batches);
    let words: Vec<WordId> = batches[0].pairs.iter().take(64).map(|&(w, _)| WordId(w)).collect();
    g.bench_function("query_64_words", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &w in &words {
                total += ix.postings(w).expect("read").len();
            }
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_stages, bench_dual_index);
criterion_main!(benches);
