//! Regression: a failed metadata flush must not advance the batch count.
//!
//! `DualIndex::flush_batch` used to bump `batch_no` *before*
//! `flush_metadata`, so an I/O error inside the flush left the in-memory
//! counter one ahead of the superblock on disk — a retried flush then
//! double-counted the batch and rotated the directory onto the wrong
//! disk. The counter now advances only after the commit point (the
//! superblock write) succeeds; this test injects a device failure in the
//! middle of the second flush and checks the invariant.

use invidx_core::index::{DualIndex, IndexConfig};
use invidx_core::types::{DocId, WordId};
use invidx_disk::{BlockDevice, Disk, DiskArray, FitStrategy, FreeList, SparseDevice};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A device that fails writes once a shared budget is exhausted.
struct FailingDevice {
    inner: SparseDevice,
    budget: Arc<AtomicU64>,
}

impl BlockDevice for FailingDevice {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read(&self, start: u64, buf: &mut [u8]) -> invidx_disk::Result<()> {
        self.inner.read(start, buf)
    }

    fn write(&mut self, start: u64, data: &[u8]) -> invidx_disk::Result<()> {
        let remaining = self.budget.load(Ordering::SeqCst);
        if remaining == 0 {
            return Err(invidx_disk::DiskError::OutOfSpace { requested: 0, largest_free: 0 });
        }
        self.budget.fetch_sub(1, Ordering::SeqCst);
        self.inner.write(start, data)
    }
}

fn failing_array(disks: u16, blocks: u64, block_size: usize, budget: &Arc<AtomicU64>) -> DiskArray {
    let disks = (0..disks)
        .map(|_| Disk {
            device: Box::new(FailingDevice {
                inner: SparseDevice::new(blocks, block_size),
                budget: Arc::clone(budget),
            }) as Box<dyn BlockDevice>,
            alloc: Box::new(FreeList::new(blocks, FitStrategy::FirstFit)),
        })
        .collect();
    DiskArray::new(disks)
}

fn add_batch(index: &mut DualIndex, docs: std::ops::Range<u32>) {
    for d in docs {
        let words = (1..=10u64).map(WordId).collect::<Vec<_>>();
        index.insert_document(DocId(d), words).expect("insert");
    }
}

#[test]
fn failed_metadata_flush_leaves_batch_count_unchanged() {
    let budget = Arc::new(AtomicU64::new(u64::MAX));
    let array = failing_array(2, 20_000, 512, &budget);
    let mut index = DualIndex::create(array, IndexConfig::small()).expect("create");

    add_batch(&mut index, 1..20);
    index.flush_batch().expect("first flush");
    assert_eq!(index.batches(), 1);

    // Exhaust the write budget: the second flush fails inside
    // `flush_metadata` (the bucket/directory shadow writes), after the
    // in-memory batch has already drained.
    add_batch(&mut index, 20..40);
    budget.store(0, Ordering::SeqCst);
    let err = index.flush_batch();
    assert!(err.is_err(), "flush must fail with a zero write budget");
    assert_eq!(index.batches(), 1, "failed flush must not advance the batch count");

    // With the budget restored the retry commits exactly one more batch.
    budget.store(u64::MAX, Ordering::SeqCst);
    index.flush_batch().expect("retried flush");
    assert_eq!(index.batches(), 2);
    let postings = index.postings(WordId(1)).expect("read");
    assert_eq!(postings.docs().len(), 39);
}

#[test]
fn repeated_flush_failures_never_advance_the_count() {
    // Torture the commit point: fail the flush at every possible write
    // offset in turn; the count must hold at 1 through every failure and
    // reach exactly 2 on the first success.
    let budget = Arc::new(AtomicU64::new(u64::MAX));
    let array = failing_array(2, 20_000, 512, &budget);
    let mut index = DualIndex::create(array, IndexConfig::small()).expect("create");
    add_batch(&mut index, 1..10);
    index.flush_batch().expect("first flush");
    add_batch(&mut index, 10..20);

    let mut allowed = 0u64;
    loop {
        budget.store(allowed, Ordering::SeqCst);
        match index.flush_batch() {
            Ok(_) => break,
            Err(_) => {
                assert_eq!(index.batches(), 1, "after failure with {allowed} writes allowed");
                allowed += 1;
                assert!(allowed < 10_000, "flush never succeeded");
            }
        }
    }
    assert_eq!(index.batches(), 2);
}
