//! Oracle: an index with a block cache is **observably identical** to one
//! without. The cache sits between the read path and the device, so it may
//! change *which* reads hit the device (that is the point) but never what
//! any query returns and never a single byte of device state.
//!
//! Two twins run every randomized schedule — inserts, flushes, deletes,
//! sweeps, compactions, reads — one with a deliberately tiny cache (so
//! eviction, pinning, and write-through invalidation all fire) and one
//! with the cache off. After every flush the batch reports must agree;
//! after the full schedule every posting list and every device byte must
//! agree.

use invidx_core::index::{BatchReport, DualIndex, IndexConfig};
use invidx_core::policy::Policy;
use invidx_core::types::{DocId, WordId};
use invidx_disk::{sparse_array, DiskArray};
use proptest::prelude::*;

const DISKS: u16 = 2;
const BLOCKS_PER_DISK: u64 = 6_000;
const BLOCK_SIZE: usize = 256;

/// Deterministic skewed word set for a document: a hot head that grows
/// long lists, a warm middle, and a rare tail word.
fn doc_words(d: u32) -> Vec<WordId> {
    let mut words = Vec::new();
    for w in 1..=6u64 {
        if !(d as u64 + w).is_multiple_of(7) {
            words.push(WordId(w));
        }
    }
    for k in 0..4u64 {
        words.push(WordId(7 + (d as u64 * 5 + k * 11) % 40));
    }
    words.push(WordId(60 + (d as u64 * 13) % 400));
    words
}

fn config(cache_blocks: usize, threads: usize) -> IndexConfig {
    IndexConfig::builder()
        .num_buckets(16)
        .bucket_capacity_units(40)
        .block_postings(8)
        .policy(Policy::balanced())
        .materialize_buckets(true)
        .ingest_threads(threads)
        .cache_blocks(cache_blocks)
        .cache_shards(2)
        .build()
        .expect("valid config")
}

fn device_bytes(array: &DiskArray) -> Vec<Vec<u8>> {
    (0..DISKS)
        .map(|disk| {
            let mut bytes = vec![0u8; (BLOCKS_PER_DISK as usize) * BLOCK_SIZE];
            for start in (0..BLOCKS_PER_DISK).step_by(256) {
                let blocks = 256.min(BLOCKS_PER_DISK - start) as usize;
                let off = start as usize * BLOCK_SIZE;
                array
                    .read_untraced(disk, start, &mut bytes[off..off + blocks * BLOCK_SIZE])
                    .expect("read");
            }
            bytes
        })
        .collect()
}

/// One randomized step, applied to both twins in lockstep.
#[derive(Debug, Clone)]
enum Op {
    /// Insert 1–8 documents and flush the batch.
    Batch(u8),
    /// Logically delete one already-inserted document.
    Delete(u8),
    /// Run the deletion sweep.
    Sweep,
    /// Compact long lists and rebuild buckets.
    Compact,
    /// Read a word's postings through the query path.
    Query(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Batches and queries dominate the schedule; the structural ops ride
    // along often enough to fire on most cases.
    prop_oneof![
        any::<u8>().prop_map(Op::Batch),
        any::<u8>().prop_map(Op::Batch),
        any::<u8>().prop_map(Op::Delete),
        Just(Op::Sweep),
        Just(Op::Compact),
        any::<u16>().prop_map(Op::Query),
        any::<u16>().prop_map(Op::Query),
    ]
}

struct Twin {
    ix: DualIndex,
    threads: usize,
}

impl Twin {
    fn new(cache_blocks: usize, threads: usize) -> Self {
        let array = sparse_array(DISKS, BLOCKS_PER_DISK, BLOCK_SIZE);
        let ix = DualIndex::create(array, config(cache_blocks, threads)).expect("create");
        Self { ix, threads }
    }

    fn apply(&mut self, op: &Op, next_doc: u32) -> Option<BatchReport> {
        match op {
            Op::Batch(n) => {
                let docs = (0..1 + (*n as u32 % 8))
                    .map(|i| (DocId(next_doc + i), doc_words(next_doc + i)))
                    .collect();
                self.ix.insert_documents(docs, self.threads).expect("insert");
                Some(self.ix.flush_batch().expect("flush"))
            }
            Op::Delete(k) => {
                if next_doc > 1 {
                    self.ix.delete_document(DocId(1 + *k as u32 % (next_doc - 1)));
                }
                None
            }
            Op::Sweep => {
                self.ix.sweep().expect("sweep");
                None
            }
            Op::Compact => {
                self.ix.compact().expect("compact");
                None
            }
            Op::Query(w) => {
                let word = WordId(1 + *w as u64 % 500);
                self.ix.postings(word).expect("query");
                None
            }
        }
    }
}

/// Compare reports field-by-field, excluding the process-global `obs`
/// deltas (other tests in the binary perturb them).
fn assert_reports_eq(a: &BatchReport, b: &BatchReport) {
    assert_eq!(a.batch, b.batch);
    assert_eq!(a.words, b.words);
    assert_eq!(a.postings, b.postings);
    assert_eq!(a.new_words, b.new_words);
    assert_eq!(a.evictions, b.evictions);
    assert_eq!(a.long_appends, b.long_appends);
    assert_eq!(a.long_chunks_total, b.long_chunks_total);
    assert_eq!(a.long_blocks_total, b.long_blocks_total);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_index_is_observably_identical_to_uncached(
        ops in prop::collection::vec(arb_op(), 1..24),
        threads in 1usize..3,
    ) {
        // 48 blocks is far below the working set of this schedule, so the
        // CLOCK hand turns and invalidation hits resident frames.
        let mut cached = Twin::new(48, threads);
        let mut plain = Twin::new(0, threads);
        let mut next_doc = 1u32;
        for op in &ops {
            let ra = cached.apply(op, next_doc);
            let rb = plain.apply(op, next_doc);
            if let Op::Batch(n) = op {
                next_doc += 1 + (*n as u32 % 8);
                assert_reports_eq(&ra.unwrap(), &rb.unwrap());
            }
        }
        // Every word the schedule could have touched reads identically.
        for w in (1..=6).chain(7..47).chain(60..460) {
            let a = cached.ix.postings(WordId(w)).expect("cached read");
            let b = plain.ix.postings(WordId(w)).expect("plain read");
            prop_assert_eq!(a, b, "postings for word {}", w);
        }
        prop_assert_eq!(
            cached.ix.doc_frequency(WordId(1)),
            plain.ix.doc_frequency(WordId(1))
        );
        // The cache must never have changed a device byte.
        prop_assert_eq!(device_bytes(cached.ix.array()), device_bytes(plain.ix.array()));
        prop_assert_eq!(cached.ix.array().free_blocks(), plain.ix.array().free_blocks());
    }
}

/// A budget smaller than one long list: the pin scope keeps every frame of
/// the in-flight read resident, inserts that find all frames pinned bypass
/// the cache (counted), and the read still returns the full list.
#[test]
fn pinned_reads_survive_a_budget_smaller_than_one_list() {
    let build = |cache_blocks: usize| {
        let array = sparse_array(DISKS, BLOCKS_PER_DISK, BLOCK_SIZE);
        let config = IndexConfig::builder()
            .num_buckets(8)
            .bucket_capacity_units(20)
            .block_postings(8)
            .policy(Policy::update_optimized()) // New style: many chunks
            .materialize_buckets(true)
            .cache_blocks(cache_blocks)
            .cache_shards(1)
            .build()
            .expect("valid config");
        let mut ix = DualIndex::create(array, config).expect("create");
        // Word 1 in every document: overflows its bucket fast and then
        // appends one new chunk per batch.
        for b in 0..12u32 {
            for d in 1..=20u32 {
                let doc = b * 20 + d;
                ix.insert_document(DocId(doc), [WordId(1), WordId(2 + doc as u64 % 5)])
                    .expect("insert");
            }
            ix.flush_batch().expect("flush");
        }
        ix
    };
    let tiny = build(2); // two frames cannot hold one multi-chunk list
    let plain = build(0);
    let stats_before = tiny.cache_stats().expect("cache is on");
    let got = tiny.postings(WordId(1)).expect("read under pressure");
    let want = plain.postings(WordId(1)).expect("uncached read");
    assert_eq!(got, want);
    assert_eq!(got.len(), 240);
    let stats = tiny.cache_stats().expect("cache is on");
    assert!(
        stats.bypasses > stats_before.bypasses,
        "a 2-block budget under a multi-chunk pinned read must bypass inserts \
         (before {} after {})",
        stats_before.bypasses,
        stats.bypasses
    );
    assert!(stats.budget_blocks == 2 && stats.resident_blocks <= 2);
}

/// Parallel apply buffers writes in a capture and commits them in one
/// dispatch; the cache is invalidated at that commit point. A word whose
/// chunks were cached before the batch must read its post-batch state.
#[test]
fn capture_commit_invalidates_cached_frames() {
    let array = sparse_array(DISKS, BLOCKS_PER_DISK, BLOCK_SIZE);
    // Whole style with in-place updates: appends that fit overwrite the
    // blocks a warm read left resident, so commit-point invalidation must
    // fire for the next read to see the new bytes.
    let config = IndexConfig::builder()
        .num_buckets(16)
        .bucket_capacity_units(40)
        .block_postings(8)
        .policy(Policy::query_optimized())
        .materialize_buckets(true)
        .ingest_threads(4)
        .cache_blocks(128)
        .cache_shards(2)
        .build()
        .expect("valid config");
    let mut ix = DualIndex::create(array, config).expect("create");
    let mut next_doc = 1u32;
    let mut batch = |ix: &mut DualIndex, n: u32| {
        let docs = (0..n).map(|i| (DocId(next_doc + i), doc_words(next_doc + i))).collect();
        ix.insert_documents(docs, 4).expect("insert");
        ix.flush_batch().expect("flush");
        next_doc += n;
    };
    for _ in 0..10 {
        batch(&mut ix, 8);
    }
    assert!(
        (1..=6).any(|w| matches!(ix.location(WordId(w)), invidx_core::WordLocation::Long)),
        "hot words must have grown long lists for the cache to matter"
    );
    // Warm the cache on the hot words' chunks: the first pass faults the
    // blocks in, the second pass must be answered from residents.
    for w in 1..=6 {
        ix.postings(WordId(w)).expect("fault-in read");
    }
    let before: Vec<_> =
        (1..=6).map(|w| ix.postings(WordId(w)).expect("warm read")).collect();
    for _ in 0..6 {
        batch(&mut ix, 8);
    }
    // Every post-batch read must see the appended postings, not the frames
    // cached at the old epoch.
    for (i, old) in before.iter().enumerate() {
        let now = ix.postings(WordId(i as u64 + 1)).expect("post-batch read");
        assert!(
            now.len() > old.len(),
            "word {} grew from {} to {} postings",
            i + 1,
            old.len(),
            now.len()
        );
    }
    let stats = ix.cache_stats().expect("cache is on");
    assert!(stats.invalidations > 0, "captured writes must invalidate resident frames");
    assert!(stats.hits > 0, "warm reads should have hit");
}

/// Regression: `read_cost` counts device reads and must stay 0 for a word
/// whose postings are still in the in-memory batch, while `postings` and
/// `doc_frequency` already include that pending state.
#[test]
fn mem_only_word_has_zero_read_cost_but_live_postings() {
    let array = sparse_array(DISKS, BLOCKS_PER_DISK, BLOCK_SIZE);
    let mut ix = DualIndex::create(array, config(0, 1)).expect("create");
    ix.insert_document(DocId(1), [WordId(99)]).expect("insert");
    ix.insert_document(DocId(2), [WordId(99)]).expect("insert");
    assert_eq!(ix.read_cost(WordId(99)), 0, "unflushed word costs no device reads");
    assert_eq!(ix.doc_frequency(WordId(99)), 2, "doc_frequency includes the mem batch");
    assert_eq!(ix.postings(WordId(99)).expect("read").len(), 2);
    ix.flush_batch().expect("flush");
    // Flushed to a bucket: still short, and doc_frequency is unchanged.
    assert_eq!(ix.doc_frequency(WordId(99)), 2);
    assert_eq!(ix.postings(WordId(99)).expect("read").len(), 2);
}

#[test]
fn config_builder_validates_at_build() {
    assert!(IndexConfig::builder().build().is_ok());
    assert!(IndexConfig::builder().num_buckets(0).build().is_err());
    assert!(IndexConfig::builder().ingest_threads(0).build().is_err());
    assert!(
        IndexConfig::builder().cache_blocks(64).cache_shards(0).build().is_err(),
        "a cache with zero shards is rejected at build()"
    );
    let c = IndexConfig::builder()
        .cache_blocks(64)
        .cache_shards(4)
        .ingest_threads(2)
        .build()
        .expect("valid config");
    assert_eq!((c.cache_blocks, c.cache_shards, c.ingest_threads), (64, 4, 2));
}
