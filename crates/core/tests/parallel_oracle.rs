//! Oracle: the parallel ingest pipeline is **byte-identical** to the
//! sequential one. The same 20-batch corpus runs through a 1-thread index
//! and an 8-thread index, and everything observable must agree — every
//! `BatchReport` field (except the process-global `obs` deltas, which
//! other tests running in the same process perturb), the full device
//! bytes of every disk (superblock, buckets, directory, long lists),
//! per-disk usage, the free-space count, sampled posting lists, and the
//! complete I/O trace in issue order.

use invidx_core::index::{BatchReport, DualIndex, IndexConfig};
use invidx_core::policy::Policy;
use invidx_core::types::{DocId, WordId};
use invidx_disk::{sparse_array, DiskArray, IoTrace};

const DISKS: u16 = 4;
const BLOCKS_PER_DISK: u64 = 6_000;
const BLOCK_SIZE: usize = 512;
const BATCHES: usize = 20;
const DOCS_PER_BATCH: u32 = 30;

/// A deterministic 20-batch corpus with a skewed word distribution: a hot
/// head (words 1..=8 in almost every document, so they overflow buckets
/// and grow long lists), a warm middle, and a long tail of rare words.
fn corpus() -> Vec<Vec<(DocId, Vec<WordId>)>> {
    let mut batches = Vec::with_capacity(BATCHES);
    let mut next_doc = 1u32;
    for b in 0..BATCHES as u64 {
        let mut docs = Vec::with_capacity(DOCS_PER_BATCH as usize);
        for _ in 0..DOCS_PER_BATCH {
            let d = next_doc;
            next_doc += 1;
            let mut words = Vec::new();
            for w in 1..=8u64 {
                if !(d as u64 + w).is_multiple_of(9) {
                    words.push(WordId(w));
                }
            }
            for k in 0..6u64 {
                words.push(WordId(9 + (d as u64 * 7 + k * 13 + b) % 120));
            }
            words.push(WordId(200 + (d as u64 * 31 + b * 17) % 2_000));
            // Unsorted input with duplicates: normalization is part of
            // what must match.
            words.push(words[0]);
            docs.push((DocId(d), words));
        }
        batches.push(docs);
    }
    batches
}

fn config(threads: usize) -> IndexConfig {
    IndexConfig::builder()
        .num_buckets(32)
        .bucket_capacity_units(60)
        .block_postings(10)
        .policy(Policy::balanced())
        .materialize_buckets(true)
        .ingest_threads(threads)
        .build()
        .expect("valid config")
}

fn build(threads: usize) -> (DualIndex, Vec<BatchReport>, IoTrace) {
    let array = sparse_array(DISKS, BLOCKS_PER_DISK, BLOCK_SIZE);
    let mut index = DualIndex::create(array, config(threads)).expect("create");
    index.array().start_trace();
    let mut reports = Vec::new();
    for batch in corpus() {
        index.insert_documents(batch, threads).expect("insert");
        reports.push(index.flush_batch().expect("flush"));
    }
    let trace = index.array().take_trace();
    (index, reports, trace)
}

fn device_bytes(array: &DiskArray) -> Vec<Vec<u8>> {
    (0..DISKS)
        .map(|disk| {
            let mut bytes = vec![0u8; (BLOCKS_PER_DISK as usize) * BLOCK_SIZE];
            for start in (0..BLOCKS_PER_DISK).step_by(256) {
                let blocks = 256.min(BLOCKS_PER_DISK - start) as usize;
                let off = start as usize * BLOCK_SIZE;
                array
                    .read_untraced(disk, start, &mut bytes[off..off + blocks * BLOCK_SIZE])
                    .expect("read");
            }
            bytes
        })
        .collect()
}

/// Compare every report field except `obs` (process-global counters —
/// concurrent tests in the same binary make them non-deterministic).
fn assert_reports_eq(seq: &BatchReport, par: &BatchReport, batch: usize) {
    let ctx = format!("batch {batch}");
    assert_eq!(seq.batch, par.batch, "{ctx}: batch");
    assert_eq!(seq.words, par.words, "{ctx}: words");
    assert_eq!(seq.postings, par.postings, "{ctx}: postings");
    assert_eq!(seq.new_words, par.new_words, "{ctx}: new_words");
    assert_eq!(seq.bucket_words, par.bucket_words, "{ctx}: bucket_words");
    assert_eq!(seq.long_words, par.long_words, "{ctx}: long_words");
    assert_eq!(seq.evictions, par.evictions, "{ctx}: evictions");
    assert_eq!(seq.long_appends, par.long_appends, "{ctx}: long_appends");
    assert_eq!(seq.long_words_total, par.long_words_total, "{ctx}: long_words_total");
    assert_eq!(seq.long_chunks_total, par.long_chunks_total, "{ctx}: long_chunks_total");
    assert_eq!(seq.long_blocks_total, par.long_blocks_total, "{ctx}: long_blocks_total");
    assert_eq!(seq.long_postings_total, par.long_postings_total, "{ctx}: long_postings_total");
    assert_eq!(seq.bucket_units, par.bucket_units, "{ctx}: bucket_units");
    assert!((seq.utilization - par.utilization).abs() < 1e-12, "{ctx}: utilization");
    assert!(
        (seq.avg_reads_per_long_list - par.avg_reads_per_long_list).abs() < 1e-12,
        "{ctx}: avg_reads_per_long_list"
    );
}

#[test]
fn parallel_ingest_is_byte_identical_to_sequential() {
    let (seq_index, seq_reports, seq_trace) = build(1);
    let (par_index, par_reports, par_trace) = build(8);

    assert_eq!(seq_reports.len(), BATCHES);
    for (b, (s, p)) in seq_reports.iter().zip(&par_reports).enumerate() {
        assert_reports_eq(s, p, b);
    }
    assert!(
        seq_reports.last().unwrap().evictions > 0
            || seq_reports.iter().any(|r| r.evictions > 0),
        "corpus must exercise the eviction/long-list path"
    );

    // Full device state: every block of every disk, superblock included.
    let seq_bytes = device_bytes(seq_index.array());
    let par_bytes = device_bytes(par_index.array());
    for disk in 0..DISKS as usize {
        if seq_bytes[disk] != par_bytes[disk] {
            let first =
                seq_bytes[disk].iter().zip(&par_bytes[disk]).position(|(a, b)| a != b).unwrap();
            panic!("disk {disk} differs at byte {first} (block {})", first / BLOCK_SIZE);
        }
    }

    // Allocator state.
    assert_eq!(seq_index.array().per_disk_usage(), par_index.array().per_disk_usage());
    assert_eq!(seq_index.array().free_blocks(), par_index.array().free_blocks());

    // The I/O trace: same ops in the same issue order.
    assert_eq!(seq_trace.ops.len(), par_trace.ops.len(), "trace length");
    for (i, (s, p)) in seq_trace.ops.iter().zip(&par_trace.ops).enumerate() {
        assert_eq!(s, p, "trace op {i}");
    }

    // Sampled posting lists through the read path (bucket + long words).
    for w in [1u64, 2, 5, 8, 9, 40, 100, 250, 1_999] {
        let s = seq_index.postings(WordId(w)).expect("seq read");
        let p = par_index.postings(WordId(w)).expect("par read");
        assert_eq!(s, p, "postings for word {w}");
    }
}

#[test]
fn every_thread_count_agrees_with_sequential_state() {
    let (seq_index, _, _) = build(1);
    let seq_bytes = device_bytes(seq_index.array());
    for threads in [2usize, 3, 5] {
        let (par_index, _, _) = build(threads);
        assert_eq!(
            device_bytes(par_index.array()),
            seq_bytes,
            "device bytes differ at {threads} threads"
        );
    }
}
