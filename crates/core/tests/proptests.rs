//! Property-based tests for the dual-structure index core: posting-list
//! algebra against set models, codec round trips, bucket conservation, the
//! Figure 2 algorithm under arbitrary policies, and the full index against
//! a reference model.

use invidx_core::bucket::BucketStore;
use invidx_core::index::{DualIndex, IndexConfig};
use invidx_core::longlist::{LongConfig, LongStore};
use invidx_core::policy::{Alloc, Limit, Policy, Style};
use invidx_core::postings::{fixed, varint, PostingList};
use invidx_core::types::{DocId, WordId};
use invidx_disk::sparse_array;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn sorted_docs(max_len: usize) -> impl Strategy<Value = Vec<DocId>> {
    prop::collection::btree_set(0u32..5_000, 0..max_len)
        .prop_map(|s| s.into_iter().map(DocId).collect())
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    let style = prop_oneof![
        (1u64..6).prop_map(|e| Style::Fill { extent_blocks: e }),
        Just(Style::New),
        Just(Style::Whole),
    ];
    let limit = prop_oneof![Just(Limit::Never), Just(Limit::Fits)];
    let alloc = prop_oneof![
        (0u64..200).prop_map(|k| Alloc::Constant { k }),
        (1u64..8).prop_map(|k| Alloc::Block { k }),
        (10u64..40).prop_map(|k| Alloc::Proportional { k: k as f64 / 10.0 }),
    ];
    (style, limit, alloc).prop_map(|(s, l, a)| Policy::new(s, l, a))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn posting_algebra_matches_set_model(a in sorted_docs(80), b in sorted_docs(80)) {
        let pa = PostingList::from_sorted(a.clone());
        let pb = PostingList::from_sorted(b.clone());
        let sa: BTreeSet<DocId> = a.into_iter().collect();
        let sb: BTreeSet<DocId> = b.into_iter().collect();
        let as_vec = |s: BTreeSet<DocId>| s.into_iter().collect::<Vec<_>>();
        let union = pa.union(&pb);
        let intersect = pa.intersect(&pb);
        let difference = pa.difference(&pb);
        prop_assert_eq!(union.docs(), as_vec(sa.union(&sb).copied().collect()));
        prop_assert_eq!(intersect.docs(), as_vec(sa.intersection(&sb).copied().collect()));
        prop_assert_eq!(difference.docs(), as_vec(sa.difference(&sb).copied().collect()));
    }

    #[test]
    fn union_is_commutative_and_idempotent(a in sorted_docs(60), b in sorted_docs(60)) {
        let pa = PostingList::from_sorted(a);
        let pb = PostingList::from_sorted(b);
        prop_assert_eq!(pa.union(&pb), pb.union(&pa));
        prop_assert_eq!(pa.union(&pa), pa.clone());
        prop_assert_eq!(pa.intersect(&pa), pa.clone());
        prop_assert!(pa.difference(&pa).is_empty());
    }

    #[test]
    fn codecs_round_trip(docs in sorted_docs(200)) {
        let bytes = varint::encode(&docs);
        prop_assert_eq!(varint::decode(&bytes).expect("decode"), docs.clone());
        let mut buf = vec![0u8; fixed::encoded_len(docs.len())];
        fixed::encode_into(&docs, &mut buf);
        prop_assert_eq!(fixed::decode(&buf, docs.len()).expect("decode"), docs);
    }

    #[test]
    fn varint_never_longer_than_fixed_plus_header(docs in sorted_docs(200)) {
        let bytes = varint::encode(&docs);
        // Worst case: 5 bytes for the first doc id, then gaps <= original
        // values; the count header adds a handful of bytes.
        prop_assert!(bytes.len() <= fixed::encoded_len(docs.len()) + docs.len() + 10);
    }
}

// ----- bucket store conservation -----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bucket_store_conserves_postings_and_respects_capacity(
        inserts in prop::collection::vec((1u64..40, 1u32..30), 1..120),
        nbuckets in 1usize..8,
        capacity in 4u64..60,
    ) {
        let mut store = BucketStore::new(nbuckets, capacity).expect("store");
        let mut next: BTreeMap<u64, u32> = BTreeMap::new();
        let mut evicted_postings = 0u64;
        let mut inserted = 0u64;
        let mut long: BTreeSet<u64> = BTreeSet::new();
        for (word, count) in inserts {
            if long.contains(&word) {
                continue; // the index never re-inserts long words
            }
            let c = next.entry(word).or_insert(0);
            let docs: Vec<DocId> = (*c..*c + count).map(DocId).collect();
            *c += count;
            inserted += count as u64;
            let out = store.insert(WordId(word), &PostingList::from_sorted(docs)).expect("insert");
            for (w, list) in out.evicted {
                evicted_postings += list.len() as u64;
                long.insert(w.0);
            }
            // Capacity bound after every insert.
            for b in 0..nbuckets {
                prop_assert!(store.bucket(b).units() <= capacity);
            }
        }
        prop_assert_eq!(store.total_postings() + evicted_postings, inserted);
    }

    /// Checkpoint-path serialization: a bucket round-trips through
    /// `serialize_bucket`/`load_bucket` at EXACTLY its serialized size (the
    /// tightest block region that can hold it), survives padding up to the
    /// worst-case region, and is rejected one byte short of fitting.
    #[test]
    fn bucket_serialization_at_exact_region_boundary(
        inserts in prop::collection::vec((1u64..40, 1u32..30), 0..40),
        capacity in 8u64..80,
    ) {
        let mut store = BucketStore::new(1, capacity).expect("store");
        let mut next: BTreeMap<u64, u32> = BTreeMap::new();
        let mut long: BTreeSet<u64> = BTreeSet::new();
        for (word, count) in inserts {
            if long.contains(&word) {
                continue;
            }
            let c = next.entry(word).or_insert(0);
            let docs: Vec<DocId> = (*c..*c + count).map(DocId).collect();
            *c += count;
            let out = store.insert(WordId(word), &PostingList::from_sorted(docs)).expect("insert");
            for (w, _) in out.evicted {
                long.insert(w.0);
            }
        }
        // Exact size: 4-byte count + 12 bytes per word + 4 per posting.
        let exact = 4
            + store.bucket(0).iter().map(|(_, l)| 12 + 4 * l.len()).sum::<usize>();
        let tight = store.serialize_bucket(0, exact).expect("fits exactly");
        prop_assert_eq!(tight.len(), exact);
        let mut restored = BucketStore::new(1, capacity).expect("store");
        restored.load_bucket(0, &tight).expect("load");
        let got: Vec<_> = restored.bucket(0).iter().map(|(w, l)| (w, l.clone())).collect();
        let want: Vec<_> = store.bucket(0).iter().map(|(w, l)| (w, l.clone())).collect();
        prop_assert_eq!(got, want);
        // One byte short must be refused, never truncated.
        if exact > 4 {
            prop_assert!(store.serialize_bucket(0, exact - 1).is_err());
        }
        // Padding to the worst-case region (what checkpoints actually use)
        // round-trips identically.
        let worst = store.worst_case_bucket_bytes().max(exact);
        let padded = store.serialize_bucket(0, worst).expect("fits padded");
        prop_assert_eq!(padded.len(), worst);
        let mut restored2 = BucketStore::new(1, capacity).expect("store");
        restored2.load_bucket(0, &padded).expect("load padded");
        let got2: Vec<_> = restored2.bucket(0).iter().map(|(w, l)| (w, l.clone())).collect();
        let want2: Vec<_> = store.bucket(0).iter().map(|(w, l)| (w, l.clone())).collect();
        prop_assert_eq!(got2, want2);
    }
}

// ----- long store: Figure 2 under arbitrary policies -----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn long_store_preserves_content_under_any_policy(
        policy in arb_policy(),
        updates in prop::collection::vec((0u64..6, 1u32..60), 1..60),
    ) {
        let config = LongConfig { block_postings: 10, policy, codec: Default::default() };
        let mut store = LongStore::new(config);
        let mut array = sparse_array(3, 100_000, 256);
        let mut model: BTreeMap<u64, Vec<DocId>> = BTreeMap::new();
        let mut next: BTreeMap<u64, u32> = BTreeMap::new();
        for (word, count) in updates {
            let c = next.entry(word).or_insert(0);
            let docs: Vec<DocId> = (*c..*c + count).map(DocId).collect();
            *c += count;
            model.entry(word).or_default().extend(&docs);
            store
                .append(&mut array, WordId(word), &PostingList::from_sorted(docs))
                .expect("append");
            store.free_released(&mut array).expect("release");
        }
        for (&word, docs) in &model {
            let got = store.read_list(&array, None, WordId(word)).expect("read");
            prop_assert_eq!(got.docs(), docs.as_slice());
            // Whole style: exactly one chunk per word, always.
            if matches!(policy.style, Style::Whole) {
                prop_assert_eq!(store.directory().get(WordId(word)).expect("entry").num_chunks(), 1);
            }
        }
        // Utilization is a true fraction; chunk accounting is consistent.
        let util = store.directory().utilization(10);
        prop_assert!(util > 0.0 && util <= 1.0);
        prop_assert!(store.directory().total_postings() == model.values().map(|v| v.len() as u64).sum::<u64>());
    }
}

// ----- full index vs reference model -----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dual_index_matches_reference_model(
        policy in arb_policy(),
        // Documents: (number of words, word-seed) pairs; doc ids ascend.
        docs in prop::collection::vec((1usize..12, 0u64..1000), 1..80),
        flush_every in 1usize..10,
    ) {
        let array = sparse_array(2, 100_000, 256);
        let config = IndexConfig::builder()
            .num_buckets(8)
            .bucket_capacity_units(30)
            .block_postings(10)
            .policy(policy)
            .materialize_buckets(false)
            .build()
            .expect("valid config");
        let mut index = DualIndex::create(array, config).expect("create");
        let mut model: BTreeMap<u64, Vec<DocId>> = BTreeMap::new();
        for (i, (nwords, seed)) in docs.iter().enumerate() {
            let doc = DocId(i as u32 + 1);
            let words: BTreeSet<u64> =
                (0..*nwords).map(|j| 1 + (seed.wrapping_mul(31).wrapping_add(j as u64 * 7)) % 40).collect();
            index.insert_document(doc, words.iter().map(|&w| WordId(w))).expect("insert");
            for &w in &words {
                model.entry(w).or_default().push(doc);
            }
            if (i + 1) % flush_every == 0 {
                index.flush_batch().expect("flush");
            }
        }
        index.flush_batch().expect("flush");
        for (&w, docs) in &model {
            let got = index.postings(WordId(w)).expect("query");
            prop_assert_eq!(got.docs(), docs.as_slice(), "word {} under {}", w, policy);
        }
    }

    #[test]
    fn parallel_invert_matches_sequential_memindex(
        // Documents: (word-seed, word-count) pairs; doc ids ascend.
        docs in prop::collection::vec((0u64..500, 0usize..20), 0..60),
        workers in 1usize..9,
        shards in 1usize..33,
    ) {
        let batch: Vec<(DocId, Vec<WordId>)> = docs
            .iter()
            .enumerate()
            .map(|(i, (seed, n))| {
                let words = (0..*n)
                    .map(|j| WordId(1 + seed.wrapping_mul(17).wrapping_add(j as u64 * 13) % 200))
                    .collect();
                (DocId(i as u32 + 1), words)
            })
            .collect();
        let mut seq = invidx_core::memindex::MemIndex::new();
        for (doc, words) in &batch {
            seq.add_document(*doc, words.iter().copied()).expect("add");
        }
        let par = invidx_core::invert_batch(batch, workers, shards).expect("invert");
        prop_assert_eq!(par.postings(), seq.postings());
        prop_assert_eq!(par.documents(), seq.documents());
        prop_assert_eq!(par.last_doc(), seq.last_doc());
        let s: Vec<_> = seq.iter().collect();
        let p: Vec<_> = par.iter().collect();
        prop_assert_eq!(p, s, "workers {} shards {}", workers, shards);
    }
}
