//! Regression test for the free-list invariant checkpoints: every
//! `alloc`/`free`/`reserve` on a [`invidx_disk::FreeList`] runs
//! `check_invariants` under `debug_assertions` (panicking on violation),
//! so driving the full index through allocation-heavy workloads under
//! each policy style exercises the checkpoints on every path — chunk
//! allocation, shadow-paged metadata flips, whole-style relocation,
//! RELEASE-list frees, sweep rewrites and compaction.

use invidx_core::index::{DualIndex, IndexConfig};
use invidx_core::policy::{Alloc, Limit, Policy, Style};
use invidx_core::types::{DocId, WordId};
use invidx_disk::{sparse_array, ExtentAllocator, FitStrategy, FreeList};

fn style_policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("fill", Policy::new(Style::Fill { extent_blocks: 4 }, Limit::Fits, Alloc::Constant { k: 0 })),
        ("new", Policy::new(Style::New, Limit::Fits, Alloc::Proportional { k: 2.0 })),
        ("whole", Policy::new(Style::Whole, Limit::Fits, Alloc::Proportional { k: 1.2 })),
    ]
}

/// A churny workload: a few hot words growing past the bucket threshold
/// (forcing migrations and repeated long-list growth), deletions plus a
/// sweep (freeing and reallocating chunks), and a final compaction.
fn churn(policy: Policy) -> DualIndex {
    let array = sparse_array(2, 100_000, 256);
    let config = IndexConfig::builder()
        .num_buckets(8)
        .bucket_capacity_units(20)
        .block_postings(10)
        .policy(policy)
        .materialize_buckets(false)
        .build()
        .expect("valid config");
    let mut index = DualIndex::create(array, config).expect("create");
    let mut doc = 1u32;
    for batch in 0..8 {
        for _ in 0..12 {
            let words = (0..6).map(|j| WordId(1 + (doc as u64 * 7 + j) % 23));
            index.insert_document(DocId(doc), words).expect("insert");
            doc += 1;
        }
        index.flush_batch().expect("flush");
        if batch == 4 {
            for d in (1..doc).step_by(3) {
                index.delete_document(DocId(d));
            }
            index.sweep().expect("sweep");
            index.flush_batch().expect("post-sweep flush");
        }
    }
    index.compact().expect("compact");
    index
}

#[test]
fn freelist_checkpoints_hold_under_fill_new_whole_styles() {
    for (name, policy) in style_policies() {
        // Under debug_assertions any invariant violation panics inside the
        // allocator itself; reaching the end of the workload is the pass.
        let index = churn(policy);
        assert!(index.batches() > 0, "style {name}: no batches flushed");
    }
}

#[test]
fn explicit_invariant_audit_after_alloc_free_interleaving() {
    // Direct allocator-level checkpoint coverage, independent of the
    // index: a first-fit list keeps sorted, coalesced, in-bounds extents
    // through an adversarial alloc/free interleaving.
    let mut fl = FreeList::new(512, FitStrategy::FirstFit);
    let mut live: Vec<(u64, u64)> = Vec::new();
    for round in 0..6 {
        for len in [1u64, 3, 7, 2, 9, 4] {
            if let Ok(start) = fl.alloc(len) {
                live.push((start, len));
            }
        }
        // Free every other extent to fragment the space.
        let mut i = 0;
        live.retain(|&(start, len)| {
            i += 1;
            if i % 2 == round % 2 {
                fl.free(start, len).expect("free");
                false
            } else {
                true
            }
        });
        fl.check_invariants().expect("invariants after round");
    }
    for (start, len) in live.drain(..) {
        fl.free(start, len).expect("final free");
    }
    fl.check_invariants().expect("pristine invariants");
    assert_eq!(fl.free_blocks(), fl.total_blocks());
}
