//! Parallel batch inversion: word-sharded in-memory index build.
//!
//! The paper's invert step ("when a new document arrives it is parsed and
//! its words are inserted into an in-memory inverted index", §2) is pure
//! CPU work, so a batch's documents can be inverted across a worker pool.
//! The build is **word-sharded**: each worker owns the words whose id
//! hashes into its shards, scans every document in document order, and
//! accumulates only its own words' lists. Because the shards partition the
//! vocabulary and every worker sees the documents in the same order, the
//! merged result is byte-identical to the sequential build for *any*
//! worker or shard count — the property the oracle tests and the shard
//! proptest pin down.

use crate::memindex::MemIndex;
use crate::postings::PostingList;
use crate::types::{DocId, IndexError, Result, WordId};
use std::collections::BTreeMap;

/// The shard a word's id hashes into (Fibonacci multiplicative hash — word
/// ids are dense ranks, so low-bit modulo would correlate with frequency).
pub fn shard_of(word: WordId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (word.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards
}

/// Invert a batch of documents into a [`MemIndex`] using `workers` threads
/// over `shards` word shards. Equivalent to adding each document in order
/// with [`MemIndex::add_document`] to a fresh index: same lists, same
/// counts, same ordering floor — regardless of `workers` and `shards`.
///
/// Documents must carry strictly increasing ids; duplicate words within a
/// document are deduplicated; word id 0 is rejected as reserved. All
/// validation runs up front in document order, so the reported error never
/// depends on worker interleaving.
pub fn invert_batch(
    mut docs: Vec<(DocId, Vec<WordId>)>,
    workers: usize,
    shards: usize,
) -> Result<MemIndex> {
    let workers = workers.max(1);
    let shards = shards.max(1);
    let mut last: Option<DocId> = None;
    for (doc, words) in &docs {
        if let Some(l) = last {
            if *doc <= l {
                return Err(IndexError::OutOfOrderDocument { have: l, new: *doc });
            }
        }
        if words.contains(&WordId(0)) {
            return Err(IndexError::InvalidConfig("word id 0 is reserved".into()));
        }
        last = Some(*doc);
    }
    let documents = docs.len() as u64;
    let last_doc = last;

    // Phase 1 — normalize each document's word set (sort + dedup), the
    // same canonical form `add_document` produces, partitioned by
    // contiguous document ranges.
    let chunk = docs.len().div_ceil(workers).max(1);
    std::thread::scope(|s| {
        for group in docs.chunks_mut(chunk) {
            s.spawn(move || {
                for (_, words) in group {
                    words.sort_unstable();
                    words.dedup();
                }
            });
        }
    });

    // Phase 2 — shard-invert: worker k owns every shard s with
    // s % workers == k, scans all documents in order, and keeps only its
    // own words. The shards partition the vocabulary, so the workers'
    // maps are disjoint and their union is order-independent.
    let docs_ref = &docs;
    let maps: Vec<Result<BTreeMap<WordId, PostingList>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(shards))
            .map(|k| {
                s.spawn(move || -> Result<BTreeMap<WordId, PostingList>> {
                    let mut map: BTreeMap<WordId, PostingList> = BTreeMap::new();
                    for (doc, words) in docs_ref {
                        for &w in words {
                            if shard_of(w, shards) % workers == k {
                                map.entry(w).or_default().push(w, *doc)?;
                            }
                        }
                    }
                    Ok(map)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });

    let mut merged: BTreeMap<WordId, PostingList> = BTreeMap::new();
    let mut postings = 0u64;
    for map in maps {
        let map = map?;
        postings += map.values().map(|l| l.len() as u64).sum::<u64>();
        merged.extend(map);
    }

    if workers > 1 {
        use invidx_obs::names;
        invidx_obs::counter!(names::INGEST_INVERT_BATCHES).inc();
        let mut per_shard = vec![0u64; shards];
        for (w, l) in &merged {
            per_shard[shard_of(*w, shards)] += l.len() as u64;
        }
        let registry = invidx_obs::registry();
        for (s, n) in per_shard.iter().enumerate() {
            if *n > 0 {
                registry.counter(&names::per_shard(names::INGEST_SHARD_POSTINGS, s)).add(*n);
            }
        }
    }
    Ok(MemIndex::from_parts(merged, postings, documents, last_doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_docs() -> Vec<(DocId, Vec<WordId>)> {
        (1..=40u32)
            .map(|d| {
                let words = (1..=12u64)
                    .filter(|w| !(d as u64 + w).is_multiple_of(3))
                    .flat_map(|w| [WordId(w), WordId(w)]) // duplicates
                    .collect();
                (DocId(d), words)
            })
            .collect()
    }

    fn sequential(docs: &[(DocId, Vec<WordId>)]) -> MemIndex {
        let mut m = MemIndex::new();
        for (d, ws) in docs {
            m.add_document(*d, ws.iter().copied()).unwrap();
        }
        m
    }

    #[test]
    fn matches_sequential_for_any_worker_and_shard_count() {
        let docs = sample_docs();
        let seq = sequential(&docs);
        let expected: Vec<_> = seq.iter().map(|(w, l)| (w, l.clone())).collect();
        for workers in [1usize, 2, 3, 8] {
            for shards in [1usize, 2, 5, 16] {
                let par = invert_batch(docs.clone(), workers, shards).unwrap();
                let got: Vec<_> = par.iter().map(|(w, l)| (w, l.clone())).collect();
                assert_eq!(got, expected, "workers={workers} shards={shards}");
                assert_eq!(par.postings(), seq.postings());
                assert_eq!(par.documents(), seq.documents());
                assert_eq!(par.last_doc(), seq.last_doc());
            }
        }
    }

    #[test]
    fn validation_runs_in_document_order() {
        let docs = vec![
            (DocId(2), vec![WordId(1)]),
            (DocId(1), vec![WordId(0)]), // both errors present; order wins
        ];
        assert!(matches!(
            invert_batch(docs, 4, 4),
            Err(IndexError::OutOfOrderDocument { have: DocId(2), new: DocId(1) })
        ));
        let docs = vec![(DocId(1), vec![WordId(0)])];
        assert!(matches!(invert_batch(docs, 4, 4), Err(IndexError::InvalidConfig(_))));
    }

    #[test]
    fn empty_batch_yields_empty_index() {
        let m = invert_batch(Vec::new(), 8, 8).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.last_doc(), None);
    }

    #[test]
    fn shards_partition_the_vocabulary() {
        let shards = 7;
        for w in 1..200u64 {
            let s = shard_of(WordId(w), shards);
            assert!(s < shards);
            // Stable: the same word always lands in the same shard.
            assert_eq!(s, shard_of(WordId(w), shards));
        }
    }
}
