//! Compressed postings codecs for long-list blocks.
//!
//! The paper models compression implicitly: `BlockPosting` "implicitly
//! models the efficiency of the compression algorithm applied to long
//! lists" (§4.4), so a plain chunk stores exactly `BlockPosting` 4-byte
//! doc ids per block. This module makes the compression *real*: a chunk's
//! data region becomes a stream of self-describing **coding blocks**, each
//! covering up to `BlockPosting` postings, so the same chunk needs fewer
//! device blocks to hold the same list — multiplying the effective block
//! cache and cutting device bytes per query.
//!
//! ## Stream layout
//!
//! A stream is a sequence of coding blocks. Each starts with a fixed
//! 10-byte header:
//!
//! ```text
//! mode:    u8    0 = plain escape, 1 = varint delta, 2 = bit-packed
//! count:   u16   postings in this coding block (1 ..= BlockPosting)
//! bytes:   u16   payload length in bytes
//! max_doc: u32   largest doc id in the block — the per-block skip entry
//! max_tf:  u8    largest within-document term frequency (1: postings
//!                carry document presence, not positions — the max-score
//!                metadata ranked retrieval bounds scores with)
//! ```
//!
//! Payloads:
//!
//! * **mode 0 (plain escape)** — `count` 4-byte little-endian doc ids.
//!   The encoder falls back to this whenever a compressed payload would
//!   exceed the plain one, so a coding block is never larger than
//!   `10 + 4·count` bytes.
//! * **mode 1 (varint delta)** — the first doc id `+1`, then the gaps
//!   between consecutive ids, all as LEB128 varints (gaps are ≥ 1 because
//!   posting lists are strictly increasing).
//! * **mode 2 (bit-packed, PFOR-style)** — `first_doc: u32` little-endian,
//!   `width: u8`, then `count − 1` values of `gap − 1` packed LSB-first at
//!   `width` bits each.
//!
//! ## The capacity guarantee
//!
//! Chunk allocation and the paper's Figure 2 policy machinery account for
//! space in *postings*: a chunk of `B` blocks holds up to
//! `B · BlockPosting` postings. Compressed streams keep that accounting
//! safe via one validated invariant: `10 + 4·BlockPosting ≤ block_size`
//! (see [`crate::longlist::LongConfig::validate`]). Then a stream of `n`
//! postings spans `ceil(n / BlockPosting)` coding blocks of at most
//! `block_size` bytes each — never more device blocks than the plain
//! layout — so every in-place update, fill extent, and reserved-space
//! decision the policy makes for plain data remains valid verbatim.

use crate::postings::fixed;
use crate::types::{DocId, IndexError, Result};

/// How long-list (and sealed-segment) postings are laid out on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PostingsCodec {
    /// The seed layout: fixed 4-byte little-endian doc ids,
    /// `BlockPosting` per block, no headers. Byte-identical to the paper
    /// reproduction's original format.
    #[default]
    Plain,
    /// Delta gaps as LEB128 varints inside self-describing coding blocks.
    VarintDelta,
    /// PFOR-style fixed-width bit packing of `gap − 1` values inside
    /// self-describing coding blocks.
    BitPacked,
}

impl PostingsCodec {
    /// Stable on-disk tag (superblock / checkpoint field).
    pub fn as_u8(self) -> u8 {
        match self {
            Self::Plain => 0,
            Self::VarintDelta => 1,
            Self::BitPacked => 2,
        }
    }

    /// Inverse of [`Self::as_u8`].
    pub fn from_u8(tag: u8) -> Result<Self> {
        match tag {
            0 => Ok(Self::Plain),
            1 => Ok(Self::VarintDelta),
            2 => Ok(Self::BitPacked),
            other => Err(IndexError::Corruption(format!("unknown postings codec tag {other}"))),
        }
    }

    /// Parse a human-readable codec name (CLI flags, configs).
    pub fn parse(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "plain" | "fixed" => Ok(Self::Plain),
            "varint" | "varint-delta" => Ok(Self::VarintDelta),
            "bitpacked" | "bit-packed" | "pfor" => Ok(Self::BitPacked),
            other => Err(IndexError::InvalidConfig(format!(
                "unknown postings codec {other:?} (expected plain, varint, or bitpacked)"
            ))),
        }
    }

    /// True for the codecs that store coding-block streams (everything
    /// except [`PostingsCodec::Plain`]).
    pub fn is_compressed(self) -> bool {
        !matches!(self, Self::Plain)
    }
}

impl std::fmt::Display for PostingsCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::Plain => "plain",
            Self::VarintDelta => "varint",
            Self::BitPacked => "bitpacked",
        };
        write!(f, "{name}")
    }
}

/// Fixed size of a coding-block header.
pub const HEADER_LEN: usize = 10;

const MODE_PLAIN: u8 = 0;
const MODE_VARINT: u8 = 1;
const MODE_PACKED: u8 = 2;

fn push_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*pos)
            .ok_or_else(|| IndexError::Corruption("codec varint truncated".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(IndexError::Corruption("codec varint overflow".into()));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn varint_payload(docs: &[DocId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(docs.len() * 2);
    let mut prev = 0u64;
    for (i, d) in docs.iter().enumerate() {
        let v = d.0 as u64;
        let gap = if i == 0 { v + 1 } else { v - prev };
        push_varint(gap, &mut out);
        prev = v;
    }
    out
}

fn packed_payload(docs: &[DocId]) -> Vec<u8> {
    let first = docs[0].0;
    // Width = bits needed for the largest (gap − 1); 0 when every gap is 1
    // (a dense run) or the block holds a single posting.
    let mut max_rel = 0u32;
    for w in docs.windows(2) {
        max_rel = max_rel.max(w[1].0 - w[0].0 - 1);
    }
    let width = (32 - max_rel.leading_zeros()) as u8;
    let nvals = docs.len() - 1;
    let mut out = Vec::with_capacity(5 + (nvals * width as usize).div_ceil(8));
    out.extend_from_slice(&first.to_le_bytes());
    out.push(width);
    if width > 0 {
        let mut acc = 0u64;
        let mut bits = 0u32;
        for w in docs.windows(2) {
            let v = (w[1].0 - w[0].0 - 1) as u64;
            acc |= v << bits;
            bits += width as u32;
            while bits >= 8 {
                out.push((acc & 0xff) as u8);
                acc >>= 8;
                bits -= 8;
            }
        }
        if bits > 0 {
            out.push((acc & 0xff) as u8);
        }
    }
    out
}

fn unpack_payload(payload: &[u8], count: usize) -> Result<Vec<DocId>> {
    if payload.len() < 5 {
        return Err(IndexError::Corruption("bit-packed payload truncated".into()));
    }
    let first = u32::from_le_bytes(payload[0..4].try_into().expect("4"));
    let width = payload[4] as u32;
    if width > 32 {
        return Err(IndexError::Corruption(format!("bit-packed width {width} exceeds 32")));
    }
    let nvals = count - 1;
    let need = 5 + (nvals * width as usize).div_ceil(8);
    if payload.len() < need {
        return Err(IndexError::Corruption("bit-packed payload truncated".into()));
    }
    let mut out = Vec::with_capacity(count);
    out.push(DocId(first));
    if nvals == 0 {
        return Ok(out);
    }
    let mut acc = 0u64;
    let mut bits = 0u32;
    let mut pos = 5usize;
    let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
    let mut prev = first as u64;
    for _ in 0..nvals {
        while bits < width {
            acc |= (payload[pos] as u64) << bits;
            pos += 1;
            bits += 8;
        }
        let rel = acc & mask;
        acc >>= width;
        bits -= width;
        let v = prev + rel + 1;
        if v > u32::MAX as u64 {
            return Err(IndexError::Corruption("bit-packed doc id overflow".into()));
        }
        out.push(DocId(v as u32));
        prev = v;
    }
    Ok(out)
}

/// Encode one coding block (≤ `BlockPosting` postings) for `codec`,
/// appending header + payload to `out`. Falls back to the plain escape
/// when compression would not pay.
fn encode_block(codec: PostingsCodec, docs: &[DocId], out: &mut Vec<u8>) {
    debug_assert!(!docs.is_empty() && docs.len() <= u16::MAX as usize);
    let plain_len = fixed::encoded_len(docs.len());
    let payload = match codec {
        PostingsCodec::Plain => unreachable!("plain lists are not coding-block streams"),
        PostingsCodec::VarintDelta => varint_payload(docs),
        PostingsCodec::BitPacked => packed_payload(docs),
    };
    let (mode, payload) = if payload.len() > plain_len {
        let mut raw = vec![0u8; plain_len];
        fixed::encode_into(docs, &mut raw);
        (MODE_PLAIN, raw)
    } else {
        let mode = match codec {
            PostingsCodec::VarintDelta => MODE_VARINT,
            PostingsCodec::BitPacked => MODE_PACKED,
            PostingsCodec::Plain => unreachable!(),
        };
        (mode, payload)
    };
    out.push(mode);
    out.extend_from_slice(&(docs.len() as u16).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    out.extend_from_slice(&docs.last().expect("non-empty").0.to_le_bytes());
    out.push(1); // max_tf: binary term frequency in a presence index.
    out.extend_from_slice(&payload);
}

/// Encode a sorted posting list as a coding-block stream, `block_postings`
/// postings per coding block. An empty list encodes to an empty stream.
pub fn encode_stream(codec: PostingsCodec, docs: &[DocId], block_postings: u64) -> Vec<u8> {
    debug_assert!(codec.is_compressed(), "plain lists use the fixed layout");
    let mut out = Vec::with_capacity(docs.len() + 16);
    for block in docs.chunks(block_postings as usize) {
        encode_block(codec, block, &mut out);
    }
    out
}

/// One decoded coding-block header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// Encoding mode of the payload.
    pub mode: u8,
    /// Postings in the block.
    pub count: u16,
    /// Payload length in bytes.
    pub bytes: u16,
    /// Largest doc id in the block — the skip entry.
    pub max_doc: u32,
    /// Largest within-document term frequency (1 for presence postings).
    pub max_tf: u8,
}

fn read_header(stream: &[u8], pos: usize) -> Result<BlockHeader> {
    if stream.len() < pos + HEADER_LEN {
        return Err(IndexError::Corruption("coding-block header truncated".into()));
    }
    let h = &stream[pos..pos + HEADER_LEN];
    Ok(BlockHeader {
        mode: h[0],
        count: u16::from_le_bytes(h[1..3].try_into().expect("2")),
        bytes: u16::from_le_bytes(h[3..5].try_into().expect("2")),
        max_doc: u32::from_le_bytes(h[5..9].try_into().expect("4")),
        max_tf: h[9],
    })
}

fn decode_payload(header: BlockHeader, payload: &[u8]) -> Result<Vec<DocId>> {
    let count = header.count as usize;
    let docs = match header.mode {
        MODE_PLAIN => fixed::decode(payload, count)?,
        MODE_VARINT => {
            let mut pos = 0usize;
            let mut out = Vec::with_capacity(count);
            let mut prev = 0u64;
            for i in 0..count {
                let gap = read_varint(payload, &mut pos)?;
                if gap == 0 {
                    return Err(IndexError::Corruption("zero gap in coding block".into()));
                }
                let v = if i == 0 { gap - 1 } else { prev + gap };
                if v > u32::MAX as u64 {
                    return Err(IndexError::Corruption("varint doc id overflow".into()));
                }
                out.push(DocId(v as u32));
                prev = v;
            }
            out
        }
        MODE_PACKED => unpack_payload(payload, count)?,
        other => {
            return Err(IndexError::Corruption(format!("unknown coding-block mode {other}")))
        }
    };
    if docs.last().map(|d| d.0) != Some(header.max_doc) {
        return Err(IndexError::Corruption("coding-block skip entry disagrees with payload".into()));
    }
    Ok(docs)
}

/// Decode a coding-block stream of exactly `expected` postings.
///
/// Trailing bytes after the last coding block (block padding) are ignored;
/// a stream that runs dry before `expected` postings, or whose headers
/// disagree with their payloads, is corruption.
pub fn decode_stream(stream: &[u8], expected: u64) -> Result<Vec<DocId>> {
    let mut docs: Vec<DocId> = Vec::with_capacity(expected as usize);
    let mut pos = 0usize;
    while (docs.len() as u64) < expected {
        let header = read_header(stream, pos)?;
        if header.count == 0 {
            return Err(IndexError::Corruption("empty coding block".into()));
        }
        pos += HEADER_LEN;
        if stream.len() < pos + header.bytes as usize {
            return Err(IndexError::Corruption("coding-block payload truncated".into()));
        }
        let block = decode_payload(header, &stream[pos..pos + header.bytes as usize])?;
        pos += header.bytes as usize;
        if docs.len() as u64 + block.len() as u64 > expected {
            return Err(IndexError::Corruption(format!(
                "coding blocks overrun the expected {expected} postings"
            )));
        }
        docs.extend(block);
    }
    Ok(docs)
}

/// Decode only the postings `≥ min_doc`, using each block's `max_doc` skip
/// entry to step over whole blocks without touching their payloads.
/// Returns the surviving postings; blocks are skipped, not partially
/// decoded, so the first surviving block may contribute ids `< min_doc`
/// that are then filtered.
pub fn decode_stream_from(stream: &[u8], expected: u64, min_doc: u32) -> Result<Vec<DocId>> {
    let mut docs: Vec<DocId> = Vec::new();
    let mut seen = 0u64;
    let mut pos = 0usize;
    while seen < expected {
        let header = read_header(stream, pos)?;
        if header.count == 0 {
            return Err(IndexError::Corruption("empty coding block".into()));
        }
        pos += HEADER_LEN;
        if stream.len() < pos + header.bytes as usize {
            return Err(IndexError::Corruption("coding-block payload truncated".into()));
        }
        if header.max_doc >= min_doc {
            let block = decode_payload(header, &stream[pos..pos + header.bytes as usize])?;
            docs.extend(block.into_iter().filter(|d| d.0 >= min_doc));
        }
        pos += header.bytes as usize;
        seen += header.count as u64;
        if seen > expected {
            return Err(IndexError::Corruption(format!(
                "coding blocks overrun the expected {expected} postings"
            )));
        }
    }
    Ok(docs)
}

/// Iterate the stream's block headers (skip entries + max-tf metadata)
/// without decoding any payload.
pub fn stream_headers(stream: &[u8], expected: u64) -> Result<Vec<BlockHeader>> {
    let mut out = Vec::new();
    let mut seen = 0u64;
    let mut pos = 0usize;
    while seen < expected {
        let header = read_header(stream, pos)?;
        if header.count == 0 {
            return Err(IndexError::Corruption("empty coding block".into()));
        }
        pos += HEADER_LEN + header.bytes as usize;
        if stream.len() < pos {
            return Err(IndexError::Corruption("coding-block payload truncated".into()));
        }
        seen += header.count as u64;
        out.push(header);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<DocId> {
        v.iter().map(|&i| DocId(i)).collect()
    }

    #[test]
    fn round_trip_both_codecs() {
        for codec in [PostingsCodec::VarintDelta, PostingsCodec::BitPacked] {
            for docs in [
                vec![],
                vec![0u32],
                vec![u32::MAX],
                vec![0, 1, 2, 3, 4],
                vec![5, 1000, 1001, 4_000_000_000],
                (0..1000u32).map(|i| i * 7).collect(),
                (0..95u32).collect(), // non-multiple of block size
            ] {
                let docs = ids(&docs);
                for bp in [1u64, 3, 10, 100] {
                    let stream = encode_stream(codec, &docs, bp);
                    let back = decode_stream(&stream, docs.len() as u64).unwrap();
                    assert_eq!(back, docs, "{codec} bp={bp}");
                }
            }
        }
    }

    #[test]
    fn coding_block_never_beats_plain_escape() {
        // Adversarial gaps: huge deltas make varint/packed payloads fat;
        // the escape keeps every block within 10 + 4·count bytes.
        let docs: Vec<DocId> =
            (0..64u32).map(|i| DocId(i.wrapping_mul(67_108_864))).collect::<Vec<_>>();
        let docs = {
            let mut v: Vec<u32> = docs.iter().map(|d| d.0).collect();
            v.sort_unstable();
            v.dedup();
            ids(&v)
        };
        for codec in [PostingsCodec::VarintDelta, PostingsCodec::BitPacked] {
            let bp = 10u64;
            let stream = encode_stream(codec, &docs, bp);
            let blocks = (docs.len() as u64).div_ceil(bp);
            assert!(
                stream.len() as u64 <= blocks * (HEADER_LEN as u64 + 4 * bp),
                "{codec} stream overran the escape bound"
            );
            assert_eq!(decode_stream(&stream, docs.len() as u64).unwrap(), docs);
        }
    }

    #[test]
    fn dense_lists_compress_well() {
        let docs = ids(&(1000..3000u32).collect::<Vec<_>>());
        for codec in [PostingsCodec::VarintDelta, PostingsCodec::BitPacked] {
            let stream = encode_stream(codec, &docs, 100);
            assert!(
                stream.len() < fixed::encoded_len(docs.len()) / 2,
                "{codec}: {} bytes for {} raw",
                stream.len(),
                fixed::encoded_len(docs.len())
            );
        }
    }

    #[test]
    fn skip_entries_match_block_maxima() {
        let docs = ids(&(0..55u32).map(|i| i * 3).collect::<Vec<_>>());
        let stream = encode_stream(PostingsCodec::BitPacked, &docs, 10);
        let headers = stream_headers(&stream, docs.len() as u64).unwrap();
        assert_eq!(headers.len(), 6);
        assert_eq!(headers[0].max_doc, 27);
        assert_eq!(headers[5].max_doc, 162);
        assert!(headers.iter().all(|h| h.max_tf == 1));
        // Skip-decode from the middle touches only the tail blocks.
        let tail = decode_stream_from(&stream, docs.len() as u64, 100).unwrap();
        assert_eq!(tail, ids(&(0..55u32).map(|i| i * 3).filter(|&d| d >= 100).collect::<Vec<_>>()));
    }

    #[test]
    fn truncation_and_corruption_detected() {
        let docs = ids(&(0..40u32).collect::<Vec<_>>());
        let stream = encode_stream(PostingsCodec::VarintDelta, &docs, 10);
        assert!(decode_stream(&stream[..stream.len() - 1], 40).is_err());
        assert!(decode_stream(&stream[..5], 40).is_err());
        // Wrong expected count: too many postings wanted.
        assert!(decode_stream(&stream, 41).is_err());
        // Flip the skip entry of the first block.
        let mut bad = stream.clone();
        bad[5] ^= 0xff;
        assert!(decode_stream(&bad, 40).is_err());
        // Unknown mode byte.
        let mut bad = stream;
        bad[0] = 9;
        assert!(decode_stream(&bad, 40).is_err());
    }

    #[test]
    fn trailing_padding_is_tolerated() {
        let docs = ids(&[1, 5, 9]);
        let mut stream = encode_stream(PostingsCodec::BitPacked, &docs, 10);
        stream.extend_from_slice(&[0u8; 300]);
        assert_eq!(decode_stream(&stream, 3).unwrap(), docs);
    }

    #[test]
    fn codec_tags_and_names_round_trip() {
        for codec in [PostingsCodec::Plain, PostingsCodec::VarintDelta, PostingsCodec::BitPacked] {
            assert_eq!(PostingsCodec::from_u8(codec.as_u8()).unwrap(), codec);
            assert_eq!(PostingsCodec::parse(&codec.to_string()).unwrap(), codec);
        }
        assert!(PostingsCodec::from_u8(9).is_err());
        assert!(PostingsCodec::parse("zstd").is_err());
        assert!(!PostingsCodec::Plain.is_compressed());
        assert!(PostingsCodec::BitPacked.is_compressed());
    }
}
