//! The dual-structure index: the paper's contribution, assembled.
//!
//! [`DualIndex`] ties together the in-memory batch index (§2 ¶1), the
//! bucket store for short lists, the policy-driven long-list store, and the
//! end-of-batch flush protocol:
//!
//! 1. documents accumulate in the in-memory index;
//! 2. `flush_batch` pushes each in-memory list to its word's long list (if
//!    one exists) or into bucket `h(w)`, promoting bucket overflows to long
//!    lists;
//! 3. "Periodically, the buckets and the directory are written to disk. At
//!    this time, the disk blocks for the previous buckets and directory are
//!    returned to free space [...] In addition, in the case of the whole
//!    strategy, the old long lists on the RELEASE list are returned to free
//!    space" — the flush is shadow-paged, making each batch an atomic
//!    restart point ("the algorithms and data structures are constructed so
//!    that the incremental update of the index can be restarted if it is
//!    aborted", §1).

use crate::bucket::BucketStore;
use crate::cache::{BlockCache, CacheStats};
use crate::codec::PostingsCodec;
use crate::directory::Directory;
use crate::longlist::{LongConfig, LongStats, LongStore};
use crate::memindex::MemIndex;
use crate::policy::Policy;
use crate::postings::PostingList;
use crate::types::{DocId, IndexError, Result, WordId};
use invidx_disk::{DiskArray, IoOp, OpKind, Payload};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which storage engine serves stored postings.
///
/// `InPlace` is the paper's dual structure: every flush mutates buckets
/// and long-list chunks where they live. `Segmented` keeps the same
/// machinery as a bounded "L0" but seals it into immutable, write-once
/// segment artifacts whenever its stored footprint crosses `l0_budget`
/// bytes; sealed segments are merged tier-by-tier once `fanout` of them
/// accumulate on a level (see the `invidx-segment` crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's in-place dual-structure update path.
    InPlace,
    /// LSM-style tiering: in-place machinery as L0, sealed segments above.
    Segmented {
        /// Seal L0 into a segment when its stored bytes exceed this.
        l0_budget: u64,
        /// Merge a level once this many segments accumulate on it.
        fanout: u32,
    },
}

impl EngineKind {
    /// Default L0 byte budget for `Segmented` when none is given.
    pub const DEFAULT_L0_BUDGET: u64 = 1 << 20;
    /// Default per-level fanout for `Segmented` when none is given.
    pub const DEFAULT_FANOUT: u32 = 4;

    /// A `Segmented` kind with the default budget and fanout.
    pub fn segmented() -> Self {
        Self::Segmented { l0_budget: Self::DEFAULT_L0_BUDGET, fanout: Self::DEFAULT_FANOUT }
    }
}

/// Index-level configuration (the tunables of the paper's Table 4, plus
/// the runtime knobs that grew around them: ingest parallelism and the
/// block cache). Construct via [`IndexConfig::builder`], which validates
/// at `build()`.
#[derive(Debug, Clone, Copy)]
pub struct IndexConfig {
    /// Number of buckets (`Buckets`).
    pub num_buckets: usize,
    /// Capacity of each bucket in units (`BucketSize`): 1 per word + 1 per
    /// posting.
    pub bucket_capacity_units: u64,
    /// Postings per block (`BlockPosting`).
    pub block_postings: u64,
    /// Long-list allocation policy.
    pub policy: Policy,
    /// Physically write bucket contents at flush time. Experiments that
    /// only need traces and statistics turn this off; the I/O trace is
    /// identical either way, but queries-after-restart require it on.
    pub materialize_buckets: bool,
    /// Worker threads for batch inversion and the captured parallel apply
    /// (1 = fully sequential).
    pub ingest_threads: usize,
    /// Block-cache budget in device blocks; 0 disables the cache.
    pub cache_blocks: usize,
    /// Block-cache shard count (clamped to the budget when smaller).
    pub cache_shards: usize,
    /// Storage engine: in-place (the paper) or segment-tiered.
    pub engine: EngineKind,
    /// On-disk encoding of long-list (and sealed-segment) postings.
    /// Recorded in the superblock; changing it on an existing index is
    /// rejected at open time ([`IndexError::CodecMismatch`]).
    pub codec: PostingsCodec,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self::paper_base()
    }
}

impl IndexConfig {
    /// Start building a configuration from [`IndexConfig::paper_base`]
    /// defaults; finish with [`IndexConfigBuilder::build`], which
    /// validates the geometry-independent invariants up front.
    pub fn builder() -> IndexConfigBuilder {
        IndexConfigBuilder { config: Self::paper_base() }
    }

    /// The paper's base-case scale (Table 4 values are OCR-damaged in our
    /// copy; these are the documented reconstruction — see DESIGN.md).
    pub fn paper_base() -> Self {
        Self {
            num_buckets: 4096,
            bucket_capacity_units: 1000,
            block_postings: 100,
            policy: Policy::balanced(),
            materialize_buckets: true,
            ingest_threads: 1,
            cache_blocks: 0,
            cache_shards: 8,
            engine: EngineKind::InPlace,
            codec: PostingsCodec::Plain,
        }
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        Self {
            num_buckets: 16,
            bucket_capacity_units: 40,
            block_postings: 10,
            policy: Policy::balanced(),
            materialize_buckets: true,
            ingest_threads: 1,
            cache_blocks: 0,
            cache_shards: 8,
            engine: EngineKind::InPlace,
            codec: PostingsCodec::Plain,
        }
    }

    /// Replace the policy (builder-style).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Blocks per bucket region: `ceil(BucketSize / BlockPosting)` — one
    /// unit of bucket space is one posting's worth of block space.
    pub fn bucket_blocks(&self) -> u64 {
        self.bucket_capacity_units.div_ceil(self.block_postings)
    }

    /// The geometry-independent invariants (everything [`Self::validate`]
    /// can check without knowing the device block size).
    fn validate_shape(&self) -> Result<()> {
        if self.num_buckets == 0 {
            return Err(IndexError::InvalidConfig("num_buckets must be positive".into()));
        }
        if self.ingest_threads == 0 {
            return Err(IndexError::InvalidConfig(
                "ingest_threads must be at least 1 (1 = sequential)".into(),
            ));
        }
        if self.cache_blocks > 0 && self.cache_shards == 0 {
            return Err(IndexError::InvalidConfig(
                "cache_shards must be positive when the cache is enabled".into(),
            ));
        }
        if let EngineKind::Segmented { l0_budget, fanout } = self.engine {
            if l0_budget == 0 {
                return Err(IndexError::InvalidConfig(
                    "segmented engine needs a positive l0_budget".into(),
                ));
            }
            if fanout < 2 {
                return Err(IndexError::InvalidConfig(
                    "segmented engine needs a fanout of at least 2".into(),
                ));
            }
        }
        Ok(())
    }

    /// Validate against a device block size.
    pub fn validate(&self, block_size: usize) -> Result<()> {
        self.validate_shape()?;
        LongConfig { block_postings: self.block_postings, policy: self.policy, codec: self.codec }
            .validate(block_size)?;
        // The serialized worst case of a bucket must fit its block region.
        let worst = 4 + self.bucket_capacity_units as usize * 12;
        let region = self.bucket_blocks() as usize * block_size;
        if worst > region {
            return Err(IndexError::InvalidConfig(format!(
                "bucket worst-case {worst} bytes exceeds its {region}-byte region; \
                 raise block size or lower bucket capacity"
            )));
        }
        Ok(())
    }
}

/// Builder for [`IndexConfig`]; obtain via [`IndexConfig::builder`].
///
/// Every setter is infallible; [`Self::build`] runs the shape validation
/// (positive bucket count, positive ingest threads, coherent cache
/// settings) so misconfiguration surfaces at construction, not first use.
/// Device-geometry checks still run in [`DualIndex::create`]/
/// [`DualIndex::open`], which know the block size.
#[derive(Debug, Clone)]
pub struct IndexConfigBuilder {
    config: IndexConfig,
}

impl IndexConfigBuilder {
    /// Number of buckets (`Buckets`).
    pub fn num_buckets(mut self, n: usize) -> Self {
        self.config.num_buckets = n;
        self
    }

    /// Capacity of each bucket in units (`BucketSize`).
    pub fn bucket_capacity_units(mut self, units: u64) -> Self {
        self.config.bucket_capacity_units = units;
        self
    }

    /// Postings per block (`BlockPosting`).
    pub fn block_postings(mut self, postings: u64) -> Self {
        self.config.block_postings = postings;
        self
    }

    /// Long-list allocation policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Physically write bucket contents at flush time.
    pub fn materialize_buckets(mut self, on: bool) -> Self {
        self.config.materialize_buckets = on;
        self
    }

    /// Worker threads for batch inversion and the captured parallel apply.
    pub fn ingest_threads(mut self, threads: usize) -> Self {
        self.config.ingest_threads = threads;
        self
    }

    /// Block-cache budget in device blocks (0 disables the cache).
    pub fn cache_blocks(mut self, blocks: usize) -> Self {
        self.config.cache_blocks = blocks;
        self
    }

    /// Block-cache shard count.
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.config.cache_shards = shards;
        self
    }

    /// Storage engine: [`EngineKind::InPlace`] (default) or
    /// [`EngineKind::Segmented`].
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.config.engine = engine;
        self
    }

    /// On-disk postings codec ([`PostingsCodec::Plain`] by default).
    pub fn postings_codec(mut self, codec: PostingsCodec) -> Self {
        self.config.codec = codec;
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> Result<IndexConfig> {
        self.config.validate_shape()?;
        Ok(self.config)
    }
}

/// Where a word's postings live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordLocation {
    /// The word has a long list on disk.
    Long,
    /// The word has a short list in a bucket.
    Short,
    /// The word exists only in the current in-memory batch.
    MemoryOnly,
    /// The word has never been seen.
    Absent,
}

/// Per-batch flush report: the raw material of the paper's Figures 7–12.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct BatchReport {
    /// Batch number (0-based).
    pub batch: u64,
    /// Word-occurrence pairs in the update.
    pub words: u64,
    /// Postings in the update.
    pub postings: u64,
    /// Pairs whose word was previously unseen.
    pub new_words: u64,
    /// Pairs whose word was in a bucket.
    pub bucket_words: u64,
    /// Pairs whose word had a long list.
    pub long_words: u64,
    /// Bucket overflows promoted to long lists during this flush.
    pub evictions: u64,
    /// Long-list appends performed (long-word updates + evictions).
    pub long_appends: u64,
    /// Cumulative long-store counters after this batch.
    pub long_stats: LongStats,
    /// Words with long lists after this batch.
    pub long_words_total: u64,
    /// Chunks across all long lists after this batch.
    pub long_chunks_total: u64,
    /// Blocks allocated to long lists after this batch.
    pub long_blocks_total: u64,
    /// Postings stored in long lists after this batch.
    pub long_postings_total: u64,
    /// Long-list internal utilization (Figure 9's y-axis).
    pub utilization: f64,
    /// Average read operations per long list (Figure 10's y-axis).
    pub avg_reads_per_long_list: f64,
    /// Units occupied across all buckets after this batch.
    pub bucket_units: u64,
    /// Deltas of the global observability counters over this flush
    /// (allocator scans, chunk relocations, coalesces, …).
    pub obs: invidx_obs::ObsDelta,
}

/// Report of a compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Long lists rewritten into one chunk.
    pub lists_rewritten: u64,
    /// Chunks across all long lists before.
    pub chunks_before: u64,
    /// Chunks after (= number of long words).
    pub chunks_after: u64,
    /// Net blocks returned to free space.
    pub blocks_freed: u64,
}

/// Report of a bucket-space rebalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Bucket count before.
    pub old_buckets: usize,
    /// Bucket count after.
    pub new_buckets: usize,
    /// Short lists rehashed into the new bucket array.
    pub moved_words: u64,
    /// Lists that overflowed to long lists during the move.
    pub evictions: u64,
}

/// Report of a deletion sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Postings physically removed.
    pub postings_removed: u64,
    /// Long lists rewritten.
    pub long_rewritten: u64,
    /// Short lists rewritten in their buckets.
    pub short_rewritten: u64,
    /// Words whose lists became empty and were dropped.
    pub words_dropped: u64,
}

const SUPERBLOCK_MAGIC: u64 = 0x1994_0dd5_1ecf_u64;
// Version 2 added the postings-codec tag after `block_postings`.
const SUPERBLOCK_VERSION: u32 = 2;

/// The dual-structure incremental inverted index.
pub struct DualIndex {
    config: IndexConfig,
    array: DiskArray,
    mem: MemIndex,
    buckets: BucketStore,
    longs: LongStore,
    deleted: BTreeSet<DocId>,
    batch_no: u64,
    /// Live on-disk bucket stripes, one per disk: `(disk, start, blocks)`.
    bucket_extents: Vec<(u16, u64, u64)>,
    /// Live on-disk directory extent.
    dir_extent: Option<(u16, u64, u64)>,
    /// Sharded block cache over long-list chunks and bucket stripes
    /// (`None` when `config.cache_blocks == 0`). Registered as the
    /// array's write observer so every committed write invalidates
    /// exactly the blocks it touched.
    cache: Option<Arc<BlockCache>>,
}

/// Build the block cache described by `config` (if any) and register it
/// as the array's write observer.
fn attach_cache(array: &mut DiskArray, config: &IndexConfig) -> Option<Arc<BlockCache>> {
    if config.cache_blocks == 0 {
        array.set_write_observer(None);
        return None;
    }
    let cache =
        Arc::new(BlockCache::new(config.cache_blocks, config.cache_shards, array.block_size()));
    array.set_write_observer(Some(cache.clone()));
    Some(cache)
}

impl DualIndex {
    /// Create a fresh index over `array`. Block 0 of disk 0 is reserved for
    /// the superblock.
    pub fn create(mut array: DiskArray, config: IndexConfig) -> Result<Self> {
        config.validate(array.block_size())?;
        // Reserve the superblock home.
        reserve_on(&mut array, 0, 0, 1)?;
        let buckets = BucketStore::new(config.num_buckets, config.bucket_capacity_units)?;
        let longs = LongStore::new(LongConfig {
            block_postings: config.block_postings,
            policy: config.policy,
            codec: config.codec,
        });
        let cache = attach_cache(&mut array, &config);
        Ok(Self {
            config,
            array,
            mem: MemIndex::new(),
            buckets,
            longs,
            deleted: BTreeSet::new(),
            batch_no: 0,
            bucket_extents: Vec::new(),
            dir_extent: None,
            cache,
        })
    }

    /// The configured ingest worker-pool size.
    pub fn ingest_threads(&self) -> usize {
        self.config.ingest_threads
    }

    /// Block-cache statistics, or `None` when the cache is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The cache to consult for the current read, if any. Capture mode
    /// buffers writes in the array's overlay, which a cache hit would
    /// bypass — so reads issued inside a capture window go straight to
    /// the array (which consults the overlay itself).
    fn query_cache(&self) -> Option<&BlockCache> {
        if self.array.capture_active() {
            None
        } else {
            self.cache.as_deref()
        }
    }

    /// The block cache as layered stores should consult it: `None` when
    /// disabled or inside a capture window. The segment-tiered read path
    /// charges its reads through this so device-byte accounting matches
    /// the in-place engine's.
    pub fn block_cache(&self) -> Option<&BlockCache> {
        self.query_cache()
    }

    /// Is this document logically deleted (pending sweep)?
    pub fn is_deleted(&self, doc: DocId) -> bool {
        self.deleted.contains(&doc)
    }

    /// Bytes of stored postings state in the in-place structures — the
    /// segmented engine's L0 occupancy metric: long-list blocks at block
    /// granularity plus bucket units at 4 bytes/unit (one fixed-width
    /// posting each).
    pub fn stored_bytes(&self) -> u64 {
        let bs = self.array.block_size() as u64;
        self.longs.directory().total_blocks() * bs + self.buckets.total_units() * 4
    }

    /// The configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Completed batches.
    pub fn batches(&self) -> u64 {
        self.batch_no
    }

    /// Borrow the disk array (trace control, usage statistics).
    pub fn array(&self) -> &DiskArray {
        &self.array
    }

    /// Mutable disk array access.
    #[deprecated(
        since = "0.5.0",
        note = "trace control is available through `array()` (it takes `&self`); mutation \
                goes through the purpose-named methods (`set_defer_frees`, \
                `release_deferred_frees`, `flush_devices`, `reserve_extent`, \
                `sidecar_array`)"
    )]
    pub fn array_mut(&mut self) -> &mut DiskArray {
        &mut self.array
    }

    /// Quarantine freed extents instead of returning them to the
    /// allocators ([`DiskArray::defer_frees`]). Durable (WAL) mode runs
    /// with the quarantine on so replay can still read chunks the last
    /// checkpoint references.
    pub fn set_defer_frees(&mut self, on: bool) {
        self.array.defer_frees(on);
    }

    /// Return quarantined freed extents to the allocators — durable mode
    /// calls this right after a checkpoint commits.
    pub fn release_deferred_frees(&mut self) -> Result<()> {
        Ok(self.array.release_deferred()?)
    }

    /// Flush every device to stable storage.
    pub fn flush_devices(&mut self) -> Result<()> {
        Ok(self.array.flush()?)
    }

    /// Re-reserve an extent on a fresh allocator during recovery —
    /// sidecar stores (document store, vocabulary) re-claim their
    /// checkpointed extents with this before WAL replay runs.
    pub fn reserve_extent(&mut self, disk: u16, start: u64, blocks: u64) -> Result<()> {
        reserve_on(&mut self.array, disk, start, blocks)
    }

    /// The disk array as shared storage for sidecar stores that co-locate
    /// their extents with the index's (the IR layer's document store).
    /// Sidecar writes go through [`DiskArray::write_op`] and therefore
    /// notify the block cache like any index write.
    pub fn sidecar_array(&mut self) -> &mut DiskArray {
        &mut self.array
    }

    /// Borrow the long-list directory.
    pub fn directory(&self) -> &Directory {
        self.longs.directory()
    }

    /// Borrow the bucket store.
    pub fn buckets(&self) -> &BucketStore {
        &self.buckets
    }

    /// Borrow the in-memory batch index.
    pub fn mem(&self) -> &MemIndex {
        &self.mem
    }

    /// Long-store lifetime counters.
    pub fn long_stats(&self) -> LongStats {
        self.longs.stats()
    }

    // ----- update path -----

    /// Add a document to the current batch.
    pub fn insert_document<I>(&mut self, doc: DocId, words: I) -> Result<()>
    where
        I: IntoIterator<Item = WordId>,
    {
        self.mem.add_document(doc, words)
    }

    /// Add a whole batch of documents at once, inverting them across the
    /// configured ingest workers (word-sharded, merged deterministically —
    /// see [`crate::parallel::invert_batch`]). Equivalent to calling
    /// [`Self::insert_document`] for each document in order.
    pub fn insert_documents(&mut self, docs: Vec<(DocId, Vec<WordId>)>, threads: usize) -> Result<()> {
        if docs.is_empty() {
            return Ok(());
        }
        if let (Some(last), Some(first)) = (self.mem.last_doc(), docs.first().map(|d| d.0)) {
            if first <= last {
                return Err(IndexError::OutOfOrderDocument { have: last, new: first });
            }
        }
        let threads = threads.max(1);
        let batch = crate::parallel::invert_batch(docs, threads, threads)?;
        self.mem.absorb(batch)
    }

    /// Add a pre-built in-memory list (pipeline replay path).
    pub fn insert_list(&mut self, word: WordId, list: &PostingList) -> Result<()> {
        use invidx_obs::names;
        invidx_obs::counter!(names::CORE_MEM_LISTS).inc();
        invidx_obs::counter!(names::CORE_MEM_POSTINGS).add(list.len() as u64);
        self.mem.add_list(word, list)
    }

    /// Push the in-memory index to disk: the incremental batch update. The
    /// batch commits through the shadow-paged metadata flush (buckets +
    /// directory + superblock).
    pub fn flush_batch(&mut self) -> Result<BatchReport> {
        let _span = invidx_obs::span("flush_batch");
        let obs_before = invidx_obs::ObsDelta::capture();
        let mut report = self.apply_updates()?;
        // The superblock records *completed* batches. The flush writes the
        // new count, but the in-memory counter only advances once the
        // commit point succeeds — a failed flush must leave `batch_no`
        // matching the superblock on disk, so a retry cannot double-count.
        let committed = self.batch_no + 1;
        self.flush_metadata(committed)?;
        self.batch_no = committed;
        self.array.end_batch();
        self.finish_report(&mut report, &obs_before);
        Ok(report)
    }

    /// Apply the buffered batch to the stores WITHOUT the shadow-paged
    /// metadata flush — the durable (WAL) mode, where the write-ahead log is
    /// the commit point and bucket/directory state persists only at
    /// checkpoints. Released long-list chunks are freed immediately; callers
    /// must run the array with freed-extent quarantine
    /// ([`DiskArray::defer_frees`]) so that WAL replay can still read chunks
    /// referenced by the last checkpoint.
    pub fn apply_batch(&mut self) -> Result<BatchReport> {
        let _span = invidx_obs::span("apply_batch");
        let obs_before = invidx_obs::ObsDelta::capture();
        let mut report = self.apply_updates()?;
        self.batch_no += 1;
        self.longs.free_released(&mut self.array)?;
        self.array.end_batch();
        self.finish_report(&mut report, &obs_before);
        Ok(report)
    }

    fn apply_updates(&mut self) -> Result<BatchReport> {
        use invidx_obs::names;
        let overflow_counter = invidx_obs::counter!(names::CORE_BUCKET_OVERFLOWS);
        let migration_counter = invidx_obs::counter!(names::CORE_MIGRATIONS);
        let drained = self.mem.drain();
        let mut report = BatchReport {
            batch: self.batch_no,
            words: drained.len() as u64,
            postings: 0,
            new_words: 0,
            bucket_words: 0,
            long_words: 0,
            evictions: 0,
            long_appends: 0,
            long_stats: LongStats::default(),
            long_words_total: 0,
            long_chunks_total: 0,
            long_blocks_total: 0,
            long_postings_total: 0,
            utilization: 0.0,
            avg_reads_per_long_list: 0.0,
            bucket_units: 0,
            obs: invidx_obs::ObsDelta::default(),
        };
        let threads = self.config.ingest_threads;
        if threads > 1 {
            // Parallel apply: buffer long-list writes per target disk while
            // the drain loop runs (allocator calls and bucket mutations
            // still execute immediately, in word order), then land each
            // disk's writes on its own worker. Reads overlay the buffered
            // writes, so a list evicted and re-appended within one batch
            // still sees its own bytes. Device state, allocator state, and
            // trace are bit-identical to the sequential path.
            self.array.begin_capture();
        }
        let applied = self.apply_drained(drained, &mut report, overflow_counter, migration_counter);
        if threads > 1 {
            let per_disk = self.array.end_capture(threads)?;
            invidx_obs::counter!(names::INGEST_PARALLEL_BATCHES).inc();
            let registry = invidx_obs::registry();
            for (disk, (ops, blocks)) in per_disk.iter().enumerate() {
                if *ops > 0 {
                    registry
                        .counter(&names::per_disk(names::INGEST_APPLY_WRITES, disk as u16))
                        .add(*ops);
                    registry
                        .counter(&names::per_disk(names::INGEST_APPLY_BLOCKS, disk as u16))
                        .add(*blocks);
                }
            }
        }
        applied?;
        Ok(report)
    }

    /// The batch-apply drain loop: route each drained word to its long
    /// list or bucket, migrating eviction victims (Figure 7).
    fn apply_drained(
        &mut self,
        drained: Vec<(WordId, PostingList)>,
        report: &mut BatchReport,
        overflow_counter: &invidx_obs::Counter,
        migration_counter: &invidx_obs::Counter,
    ) -> Result<()> {
        for (word, list) in drained {
            report.postings += list.len() as u64;
            // Categorize the word-occurrence pair (Figure 7).
            if self.longs.contains(word) {
                report.long_words += 1;
                self.longs.append(&mut self.array, word, &list)?;
                report.long_appends += 1;
            } else {
                if self.buckets.get(word).is_some() {
                    report.bucket_words += 1;
                } else {
                    report.new_words += 1;
                }
                let outcome = self.buckets.insert(word, &list)?;
                if !outcome.evicted.is_empty() {
                    overflow_counter.inc();
                }
                for (w, evicted) in outcome.evicted {
                    migration_counter.inc();
                    self.longs.append(&mut self.array, w, &evicted)?;
                    report.evictions += 1;
                    report.long_appends += 1;
                }
            }
        }
        Ok(())
    }

    fn finish_report(&self, report: &mut BatchReport, obs_before: &invidx_obs::ObsDelta) {
        use invidx_obs::names;
        let dir = self.longs.directory();
        report.long_stats = self.longs.stats();
        report.long_words_total = dir.num_words() as u64;
        report.long_chunks_total = dir.total_chunks();
        report.long_blocks_total = dir.total_blocks();
        report.long_postings_total = dir.total_postings();
        report.utilization = dir.utilization(self.config.block_postings);
        report.avg_reads_per_long_list = dir.avg_reads_per_long_list();
        report.bucket_units = self.buckets.total_units();
        report.obs = invidx_obs::ObsDelta::capture().since(obs_before);
        invidx_obs::counter!(names::CORE_FLUSH_BATCHES).inc();
        invidx_obs::event!("flush_batch", {
            "batch": report.batch,
            "words": report.words,
            "postings": report.postings,
            "evictions": report.evictions,
            "long_appends": report.long_appends,
            "chunk_allocs": report.obs.chunk_allocs,
            "chunk_relocations": report.obs.chunk_relocations,
            "utilization": report.utilization,
        });
    }

    /// Drain the long-store RELEASE list into free space. In durable (WAL)
    /// mode there is no shadow-paged flush to do it, so wrappers call this
    /// after sweep/rebalance operations.
    pub fn free_released(&mut self) -> Result<()> {
        self.longs.free_released(&mut self.array)
    }

    /// Advance the batch counter without a flush. The durable (WAL) layer
    /// calls this after maintenance operations (sweep, compaction,
    /// rebalance) so that every WAL record carries a unique, monotonically
    /// increasing batch number — the property replay uses to skip records a
    /// checkpoint already covers.
    pub fn bump_batch(&mut self) {
        self.batch_no += 1;
        self.array.end_batch();
    }

    /// Shadow-write buckets and directory, commit via the superblock
    /// (which records `committed` as the completed-batch count), then free
    /// the previous generation and the release list. Callers advance
    /// `self.batch_no` only after this returns `Ok` — see
    /// [`Self::flush_batch`].
    fn flush_metadata(&mut self, committed: u64) -> Result<()> {
        let bs = self.array.block_size();
        let n = self.array.num_disks();
        let bucket_blocks = self.config.bucket_blocks();

        // New bucket stripes: bucket i lives on disk i % n, in index order.
        let mut new_bucket_extents = Vec::with_capacity(n as usize);
        for d in 0..n {
            let indices: Vec<usize> = (0..self.config.num_buckets)
                .filter(|i| (i % n as usize) as u16 == d)
                .collect();
            let stripe_blocks = indices.len() as u64 * bucket_blocks;
            if stripe_blocks == 0 {
                new_bucket_extents.push((d, 0, 0));
                continue;
            }
            let start = self.array.alloc_on(d, stripe_blocks)?;
            if self.config.materialize_buckets {
                let mut buf = Vec::with_capacity((stripe_blocks as usize) * bs);
                for &i in &indices {
                    buf.extend_from_slice(
                        &self.buckets.serialize_bucket(i, bucket_blocks as usize * bs)?,
                    );
                }
                let op = IoOp {
                    kind: OpKind::Write,
                    disk: d,
                    start,
                    blocks: stripe_blocks,
                    payload: Payload::Bucket,
                };
                self.array.write_op(op, &buf)?;
            } else {
                // Record the trace op without materializing bytes.
                self.array.trace_push(IoOp {
                    kind: OpKind::Write,
                    disk: d,
                    start,
                    blocks: stripe_blocks,
                    payload: Payload::Bucket,
                });
                // No physical write means no write-observer notification:
                // drop any frames a previous tenant of this extent left in
                // the cache, so a later bucket-read charge cannot hit on
                // stale bytes.
                if let Some(cache) = &self.cache {
                    cache.invalidate(d, start, stripe_blocks);
                }
            }
            new_bucket_extents.push((d, start, stripe_blocks));
        }

        // New directory extent, on a rotating disk.
        let dir_bytes = self.longs.directory().serialize();
        let dir_blocks = (dir_bytes.len().div_ceil(bs) as u64).max(1);
        let dir_disk = (committed % n as u64) as u16;
        let dir_start = self.array.alloc_on(dir_disk, dir_blocks)?;
        let mut buf = dir_bytes;
        buf.resize(dir_blocks as usize * bs, 0);
        let op = IoOp {
            kind: OpKind::Write,
            disk: dir_disk,
            start: dir_start,
            blocks: dir_blocks,
            payload: Payload::Directory,
        };
        self.array.write_op(op, &buf)?;

        // Commit point: the superblock names the new generation. Written
        // untraced — the paper's model has no superblock; its cost is one
        // block per batch and is excluded from the measured trace.
        let old_buckets = std::mem::replace(&mut self.bucket_extents, new_bucket_extents);
        let old_dir = self.dir_extent.replace((dir_disk, dir_start, dir_blocks));
        self.write_superblock(committed)?;

        // Previous generation and released long-list chunks return to free
        // space only after the commit point.
        for (d, start, blocks) in old_buckets {
            if blocks > 0 {
                self.array.free_on(d, start, blocks)?;
            }
        }
        if let Some((d, start, blocks)) = old_dir {
            self.array.free_on(d, start, blocks)?;
        }
        self.longs.free_released(&mut self.array)?;
        self.array.flush()?;
        Ok(())
    }

    // ----- query path -----

    /// Where does this word's data live?
    pub fn location(&self, word: WordId) -> WordLocation {
        if self.longs.contains(word) {
            WordLocation::Long
        } else if self.buckets.get(word).is_some() {
            WordLocation::Short
        } else if self.mem.get(word).is_some() {
            WordLocation::MemoryOnly
        } else {
            WordLocation::Absent
        }
    }

    /// Read operations needed to fetch this word's stored postings — the
    /// paper's query-cost metric (1 bucket read for short lists, one read
    /// per chunk for long lists).
    ///
    /// Deliberately counts *device* reads only: postings still buffered in
    /// the current batch's in-memory index are served from memory at zero
    /// I/O cost, so a word that exists only in memory has `read_cost` 0
    /// even though [`Self::postings`] returns its list. Use
    /// [`Self::doc_frequency`] for a posting count that includes the
    /// unflushed batch.
    pub fn read_cost(&self, word: WordId) -> u64 {
        match self.location(word) {
            WordLocation::Long => {
                self.longs.directory().get(word).map_or(0, |e| e.num_chunks() as u64)
            }
            WordLocation::Short => 1,
            _ => 0,
        }
    }

    /// The on-disk home of a word's bucket in the current flushed
    /// generation: `(disk, start, bucket_blocks)`. Bucket `i` lives on
    /// disk `i % n`, at slot `i / n` within that disk's stripe (the flush
    /// writes buckets to each stripe in index order). `None` before the
    /// first shadow-paged flush — durable (WAL) mode never has an
    /// on-disk generation.
    pub fn bucket_extent_of(&self, word: WordId) -> Option<(u16, u64, u64)> {
        let n = self.array.num_disks() as usize;
        let b = self.buckets.bucket_of(word);
        let bucket_blocks = self.config.bucket_blocks();
        let (disk, stripe_start, stripe_blocks) = *self.bucket_extents.get(b % n)?;
        if stripe_blocks == 0 {
            return None;
        }
        Some((disk, stripe_start + (b / n) as u64 * bucket_blocks, bucket_blocks))
    }

    /// Charge one bucket read against the disk model, answering from the
    /// block cache when the bucket's blocks are resident. Live queries
    /// never read buckets from disk (they are memory-resident), so this
    /// models the paper's one-read-per-bucket query cost: on a cache hit
    /// nothing is charged and `Ok(true)` is returned; on a miss (or with
    /// the cache disabled) a read op for the bucket's region is recorded
    /// and `Ok(false)` is returned.
    ///
    /// Uses the real stripe extent of the current generation when one
    /// exists, falling back to a synthetic fixed-slot address before the
    /// first flush so exercisers always have an op to time.
    pub fn charge_bucket_read(&self, word: WordId) -> Result<bool> {
        let bucket_blocks = self.config.bucket_blocks();
        let (disk, start, blocks) = self.bucket_extent_of(word).unwrap_or_else(|| {
            let n = self.array.num_disks() as usize;
            let b = self.buckets.bucket_of(word);
            ((b % n) as u16, (b / n) as u64 * bucket_blocks, bucket_blocks)
        });
        let op = IoOp { kind: OpKind::Read, disk, start, blocks, payload: Payload::Bucket };
        if let Some(cache) = self.query_cache() {
            let bs = self.array.block_size();
            let mut buf = vec![0u8; blocks as usize * bs];
            let mut guard = cache.pin_scope();
            let hit = {
                let _stage = invidx_obs::trace::stage("block_cache");
                invidx_obs::trace::add_blocks(blocks);
                let hit = cache.read_pinned(disk, start, blocks, &mut buf, &mut guard);
                if hit {
                    invidx_obs::trace::add_bytes(buf.len() as u64);
                }
                hit
            };
            if hit {
                return Ok(true);
            }
            self.array.read_op(op, &mut buf)?;
            cache.insert_pinned(disk, start, blocks, &buf, &mut guard);
        } else {
            // Cache off: the historical accounting-only charge (a trace
            // op with no device transfer).
            self.array.trace_push(op);
        }
        Ok(false)
    }

    /// The full posting list for a word: stored postings (long list or
    /// bucket — "a word w never has both"), merged with the unflushed
    /// in-memory postings, filtered through the deleted-document list.
    ///
    /// `&self`: long-list reads and trace recording both go through shared
    /// interfaces, so concurrent queries (e.g. via
    /// [`crate::SharedIndex`]'s read lock) never serialize on the index.
    pub fn postings(&self, word: WordId) -> Result<PostingList> {
        let mut list = if self.longs.contains(word) {
            self.longs.read_list(&self.array, self.query_cache(), word)?
        } else {
            self.buckets.get(word).cloned().unwrap_or_default()
        };
        if let Some(m) = self.mem.get(word) {
            // In-memory postings are strictly newer than stored ones.
            list.append(word, m)?;
        }
        if !self.deleted.is_empty() {
            list.retain(|d| !self.deleted.contains(&d));
        }
        Ok(list)
    }

    /// The stored posting list for a word exactly as it sits on disk or
    /// in a bucket: no in-memory batch merge, no deletion filter. The
    /// segmented engine seals these raw lists so document frequencies
    /// stay bit-identical with the in-place engine (which also counts
    /// deleted-but-unswept postings).
    pub fn stored_postings(&self, word: WordId) -> Result<PostingList> {
        if self.longs.contains(word) {
            self.longs.read_list(&self.array, self.query_cache(), word)
        } else {
            Ok(self.buckets.get(word).cloned().unwrap_or_default())
        }
    }

    /// Document frequency (postings count) without reading long lists from
    /// disk — directory metadata suffices. Ignores the deletion filter.
    pub fn doc_frequency(&self, word: WordId) -> u64 {
        let stored = if let Some(e) = self.longs.directory().get(word) {
            e.total_postings()
        } else {
            self.buckets.get(word).map_or(0, |l| l.len() as u64)
        };
        stored + self.mem.get(word).map_or(0, |l| l.len() as u64)
    }

    // ----- deletion (§3's filter + background sweep) -----

    /// Logically delete a document: "existing implementations typically
    /// maintain a list of deleted document identifiers and filter any
    /// answer to a query through this list."
    pub fn delete_document(&mut self, doc: DocId) {
        self.deleted.insert(doc);
    }

    /// Number of pending logical deletions.
    pub fn pending_deletions(&self) -> usize {
        self.deleted.len()
    }

    /// The deletion filter's contents (checkpoint serialization support).
    pub fn deleted_docs(&self) -> impl Iterator<Item = DocId> + '_ {
        self.deleted.iter().copied()
    }

    /// The background sweep: "sweeps the lists in the index one list at a
    /// time, removing any deleted documents. After a sweep of the index,
    /// the list of deleted document identifiers can be thrown away."
    pub fn sweep(&mut self) -> Result<SweepReport> {
        let mut report = SweepReport::default();
        if self.deleted.is_empty() {
            return Ok(report);
        }
        let _span = invidx_obs::span("sweep");
        invidx_obs::counter!(invidx_obs::names::CORE_SWEEPS).inc();
        let deleted = std::mem::take(&mut self.deleted);

        // Long lists: read, filter, rewrite compacted.
        for word in self.longs.directory().words() {
            let list = self.longs.read_list(&self.array, self.query_cache(), word)?;
            let mut kept = list.clone();
            kept.retain(|d| !deleted.contains(&d));
            if kept.len() == list.len() {
                continue;
            }
            report.postings_removed += (list.len() - kept.len()) as u64;
            // Release the old chunks.
            let old = self.longs.directory_mut().remove(word).ok_or_else(|| {
                IndexError::Corruption(format!("sweep: listed word {word} missing from directory"))
            })?;
            for c in old.chunks {
                self.longs.directory_mut().push_release(c.disk, c.start, c.blocks);
            }
            if kept.is_empty() {
                report.words_dropped += 1;
            } else {
                self.longs.append(&mut self.array, word, &kept)?;
                report.long_rewritten += 1;
            }
        }

        // Short lists: buckets are memory-resident; rewrite in place. The
        // disk copy refreshes at the next flush.
        let short_words: Vec<WordId> = self.buckets.iter().map(|(w, _)| w).collect();
        for word in short_words {
            let Some(list) = self.buckets.get(word).cloned() else {
                continue;
            };
            let mut kept = list.clone();
            kept.retain(|d| !deleted.contains(&d));
            if kept.len() == list.len() {
                continue;
            }
            report.postings_removed += (list.len() - kept.len()) as u64;
            let dropped = kept.is_empty();
            self.buckets.remove(word);
            if dropped {
                report.words_dropped += 1;
            } else {
                self.buckets.insert(word, &kept)?;
                report.short_rewritten += 1;
            }
        }
        invidx_obs::event!("sweep", {
            "postings_removed": report.postings_removed,
            "long_rewritten": report.long_rewritten,
            "short_rewritten": report.short_rewritten,
            "words_dropped": report.words_dropped,
        });
        Ok(report)
    }

    // ----- segment-tiered support (L0 seal) -----

    /// Drop every stored posting — long-list chunks and bucket contents —
    /// returning their blocks to free space, while keeping the batch
    /// counter, document-ordering floor, and deletion filter intact.
    ///
    /// This is the segmented engine's "L0 reset": after its contents have
    /// been sealed into an immutable segment (and the manifest committed),
    /// the in-place machinery starts over empty. Requires a batch boundary;
    /// under [`DiskArray::defer_frees`] the freed extents are quarantined
    /// until the caller's next checkpoint, so recovery can still read the
    /// pre-seal chunks the last checkpoint references.
    pub fn seal_reset(&mut self) -> Result<()> {
        if !self.mem.is_empty() {
            return Err(IndexError::InvalidConfig(
                "seal_reset requires a batch boundary (flush first)".into(),
            ));
        }
        for word in self.longs.directory().words() {
            let entry = self.longs.directory_mut().remove(word).ok_or_else(|| {
                IndexError::Corruption(format!("seal_reset: word {word} missing from directory"))
            })?;
            for c in entry.chunks {
                self.longs.directory_mut().push_release(c.disk, c.start, c.blocks);
            }
        }
        self.longs.free_released(&mut self.array)?;
        self.buckets = BucketStore::new(self.config.num_buckets, self.config.bucket_capacity_units)?;
        invidx_obs::counter!(invidx_obs::names::CORE_SEAL_RESETS).inc();
        Ok(())
    }

    // ----- compaction -----

    /// Rewrite every fragmented long list as a single contiguous chunk —
    /// the explicit "massive reorganization" (§1) that in-place updates
    /// postpone, offered as an online operation for indexes built under
    /// update-leaning policies. Requires a batch boundary; committed
    /// through the shadow-paged metadata flush like any batch.
    pub fn compact(&mut self) -> Result<CompactReport> {
        let blocks_before = self.array.total_blocks() - self.array.free_blocks();
        let mut report = self.compact_core()?;
        self.flush_metadata(self.batch_no)?;
        let blocks_after = self.array.total_blocks() - self.array.free_blocks();
        report.blocks_freed = blocks_before.saturating_sub(blocks_after);
        invidx_obs::event!("compact", {
            "lists_rewritten": report.lists_rewritten,
            "chunks_before": report.chunks_before,
            "chunks_after": report.chunks_after,
            "blocks_freed": report.blocks_freed,
        });
        Ok(report)
    }

    /// Compaction for durable (WAL) mode: same long-list rewrites, but no
    /// shadow-paged metadata flush — the caller logs the operation in the
    /// WAL and persists state at the next checkpoint. Released chunks are
    /// freed immediately (into the quarantine under
    /// [`DiskArray::defer_frees`]), so `blocks_freed` reflects only what the
    /// allocator saw back.
    pub fn compact_lists(&mut self) -> Result<CompactReport> {
        let blocks_before = self.array.total_blocks() - self.array.free_blocks();
        let mut report = self.compact_core()?;
        self.longs.free_released(&mut self.array)?;
        let blocks_after = self.array.total_blocks() - self.array.free_blocks();
        report.blocks_freed = blocks_before.saturating_sub(blocks_after);
        Ok(report)
    }

    fn compact_core(&mut self) -> Result<CompactReport> {
        if !self.mem.is_empty() {
            return Err(IndexError::InvalidConfig(
                "compaction requires a batch boundary (flush first)".into(),
            ));
        }
        let _span = invidx_obs::span("compact");
        invidx_obs::counter!(invidx_obs::names::CORE_COMPACTIONS).inc();
        let mut report = CompactReport {
            lists_rewritten: 0,
            chunks_before: self.longs.directory().total_chunks(),
            chunks_after: 0,
            blocks_freed: 0,
        };
        // Field projections rather than `query_cache()`: `longs` and
        // `array` are borrowed mutably below, and the borrows are disjoint
        // only when spelled out.
        let cache = if self.array.capture_active() { None } else { self.cache.as_deref() };
        for word in self.longs.directory().words() {
            let before = self.longs.compact_word(&mut self.array, cache, word)?;
            if before > 1 {
                report.lists_rewritten += 1;
            }
        }
        report.chunks_after = self.longs.directory().total_chunks();
        Ok(report)
    }

    // ----- bucket-space rebalancing (§7 future work) -----

    /// Grow (or reshape) the bucket space: "as the size of the index grows
    /// from the addition of more documents, the performance of the index
    /// degrades. This implies that we need a strategy to rebalance the
    /// division between short and long lists [...] periodically, as the
    /// buckets are read, they can be expanded and written in a larger
    /// region of disk" (paper §7).
    ///
    /// Every short list is rehashed into a fresh bucket array of
    /// `num_buckets` buckets of `capacity_units` each; lists that no longer
    /// fit (when shrinking) overflow to long lists as usual. Must be called
    /// at a batch boundary (no buffered documents); the new layout is
    /// committed through the same shadow-paged metadata flush as a batch.
    pub fn rebalance_buckets(
        &mut self,
        num_buckets: usize,
        capacity_units: u64,
    ) -> Result<RebalanceReport> {
        let report = self.rebalance_core(num_buckets, capacity_units)?;
        // Commit the new generation (buckets + directory + superblock).
        self.flush_metadata(self.batch_no)?;
        invidx_obs::event!("rebalance_buckets", {
            "old_buckets": report.old_buckets,
            "new_buckets": report.new_buckets,
            "moved_words": report.moved_words,
            "evictions": report.evictions,
        });
        Ok(report)
    }

    /// Rebalance for durable (WAL) mode: rehash without the shadow-paged
    /// flush. The caller logs the operation and persists state at the next
    /// checkpoint; released chunks stay on the RELEASE list until the
    /// caller's [`Self::free_released`].
    pub fn rebalance_core(
        &mut self,
        num_buckets: usize,
        capacity_units: u64,
    ) -> Result<RebalanceReport> {
        if !self.mem.is_empty() {
            return Err(IndexError::InvalidConfig(
                "rebalance requires a batch boundary (flush first)".into(),
            ));
        }
        let _span = invidx_obs::span("rebalance_buckets");
        invidx_obs::counter!(invidx_obs::names::CORE_REBALANCES).inc();
        let candidate = IndexConfig {
            num_buckets,
            bucket_capacity_units: capacity_units,
            ..self.config
        };
        candidate.validate(self.array.block_size())?;
        let old = std::mem::replace(
            &mut self.buckets,
            BucketStore::new(num_buckets, capacity_units)?,
        );
        let mut report = RebalanceReport {
            old_buckets: self.config.num_buckets,
            new_buckets: num_buckets,
            moved_words: 0,
            evictions: 0,
        };
        self.config = candidate;
        let overflow_counter = invidx_obs::counter!(invidx_obs::names::CORE_BUCKET_OVERFLOWS);
        let migration_counter = invidx_obs::counter!(invidx_obs::names::CORE_MIGRATIONS);
        for (word, list) in old.iter() {
            report.moved_words += 1;
            let outcome = self.buckets.insert(word, list)?;
            if !outcome.evicted.is_empty() {
                overflow_counter.inc();
            }
            for (w, evicted) in outcome.evicted {
                migration_counter.inc();
                self.longs.append(&mut self.array, w, &evicted)?;
                report.evictions += 1;
            }
        }
        Ok(report)
    }

    // ----- persistence -----

    fn superblock_bytes(&self, committed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(&SUPERBLOCK_MAGIC.to_le_bytes());
        out.extend_from_slice(&SUPERBLOCK_VERSION.to_le_bytes());
        out.extend_from_slice(&committed.to_le_bytes());
        // Document-ordering ceiling: 0 = no documents yet.
        let ceiling = self.mem.last_doc().map_or(0u64, |d| d.0 as u64 + 1);
        out.extend_from_slice(&ceiling.to_le_bytes());
        out.extend_from_slice(&(self.config.num_buckets as u64).to_le_bytes());
        out.extend_from_slice(&self.config.bucket_capacity_units.to_le_bytes());
        out.extend_from_slice(&self.config.block_postings.to_le_bytes());
        out.push(self.config.codec.as_u8());
        let (dd, ds, db) = self.dir_extent.unwrap_or((0, 0, 0));
        out.extend_from_slice(&dd.to_le_bytes());
        out.extend_from_slice(&ds.to_le_bytes());
        out.extend_from_slice(&db.to_le_bytes());
        out.extend_from_slice(&(self.bucket_extents.len() as u16).to_le_bytes());
        for &(d, s, b) in &self.bucket_extents {
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }

    fn write_superblock(&mut self, committed: u64) -> Result<()> {
        let bs = self.array.block_size();
        let mut buf = self.superblock_bytes(committed);
        if buf.len() > bs {
            return Err(IndexError::InvalidConfig(format!(
                "superblock of {} bytes exceeds the {bs}-byte block; fewer disks required",
                buf.len()
            )));
        }
        buf.resize(bs, 0);
        self.array.write_untraced(0, 0, &buf)?;
        Ok(())
    }

    /// Re-open an index from a previously flushed state. The array must
    /// expose the same devices (e.g. [`invidx_disk::FileDevice`]s) with
    /// *fresh, fully-free* allocators; allocation state is reconstructed
    /// from the superblock and directory. Unflushed in-memory postings and
    /// the deletion filter do not survive a restart (they are volatile by
    /// design; the batch boundary is the recovery point).
    pub fn open(mut array: DiskArray, config: IndexConfig) -> Result<Self> {
        let bs = array.block_size();
        let mut sb = vec![0u8; bs];
        array.read_untraced(0, 0, &mut sb)?;
        let mut pos = 0usize;
        let mut take = |n: usize| {
            let s = &sb[pos..pos + n];
            pos += n;
            s.to_vec()
        };
        let magic = u64::from_le_bytes(take(8).try_into().expect("8"));
        if magic != SUPERBLOCK_MAGIC {
            return Err(IndexError::Corruption("bad superblock magic".into()));
        }
        let version = u32::from_le_bytes(take(4).try_into().expect("4"));
        if version != SUPERBLOCK_VERSION {
            return Err(IndexError::Corruption(format!("superblock version {version}")));
        }
        let batch_no = u64::from_le_bytes(take(8).try_into().expect("8"));
        let doc_ceiling = u64::from_le_bytes(take(8).try_into().expect("8"));
        let num_buckets = u64::from_le_bytes(take(8).try_into().expect("8")) as usize;
        let capacity = u64::from_le_bytes(take(8).try_into().expect("8"));
        let block_postings = u64::from_le_bytes(take(8).try_into().expect("8"));
        // Geometry is owned by the on-disk index (it can change at runtime
        // via `rebalance_buckets`); `block_postings` defines how stored
        // bytes are interpreted, so a caller expecting a different value is
        // an error rather than silently reinterpreting data.
        if block_postings != config.block_postings {
            return Err(IndexError::InvalidConfig(format!(
                "on-disk index uses {block_postings} postings/block, caller expected {}",
                config.block_postings
            )));
        }
        let on_disk_codec = PostingsCodec::from_u8(take(1)[0])?;
        // A codec change would reinterpret every stored chunk's bytes;
        // reject it as a typed error rather than decode garbage.
        if on_disk_codec != config.codec {
            return Err(IndexError::CodecMismatch {
                on_disk: on_disk_codec,
                requested: config.codec,
            });
        }
        let config = IndexConfig {
            num_buckets,
            bucket_capacity_units: capacity,
            ..config
        };
        config.validate(bs)?;
        let dir_disk = u16::from_le_bytes(take(2).try_into().expect("2"));
        let dir_start = u64::from_le_bytes(take(8).try_into().expect("8"));
        let dir_blocks = u64::from_le_bytes(take(8).try_into().expect("8"));
        let n_extents = u16::from_le_bytes(take(2).try_into().expect("2"));
        let mut bucket_extents = Vec::with_capacity(n_extents as usize);
        for _ in 0..n_extents {
            let d = u16::from_le_bytes(take(2).try_into().expect("2"));
            let s = u64::from_le_bytes(take(8).try_into().expect("8"));
            let b = u64::from_le_bytes(take(8).try_into().expect("8"));
            bucket_extents.push((d, s, b));
        }

        // Rebuild allocator state: superblock, directory, bucket stripes,
        // and every long-list chunk are live.
        reserve_on(&mut array, 0, 0, 1)?;
        let dir_extent = if dir_blocks > 0 {
            reserve_on(&mut array, dir_disk, dir_start, dir_blocks)?;
            Some((dir_disk, dir_start, dir_blocks))
        } else {
            None
        };
        for &(d, s, b) in &bucket_extents {
            if b > 0 {
                reserve_on(&mut array, d, s, b)?;
            }
        }

        // Load the directory.
        let directory = if let Some((d, s, b)) = dir_extent {
            let mut buf = vec![0u8; b as usize * bs];
            array.read_untraced(d, s, &mut buf)?;
            Directory::deserialize(&buf)?
        } else {
            Directory::new()
        };
        for (_, entry) in directory.iter() {
            for c in &entry.chunks {
                reserve_on(&mut array, c.disk, c.start, c.blocks)?;
            }
        }
        let longs = LongStore::from_directory(
            directory,
            LongConfig {
                block_postings: config.block_postings,
                policy: config.policy,
                codec: config.codec,
            },
        );

        // Load the buckets.
        let mut buckets = BucketStore::new(config.num_buckets, config.bucket_capacity_units)?;
        let bucket_blocks = config.bucket_blocks();
        if config.materialize_buckets {
            for &(d, s, b) in &bucket_extents {
                if b == 0 {
                    continue;
                }
                let n = array.num_disks() as usize;
                let indices: Vec<usize> =
                    (0..config.num_buckets).filter(|i| (i % n) as u16 == d).collect();
                let mut buf = vec![0u8; b as usize * bs];
                array.read_untraced(d, s, &mut buf)?;
                for (slot, &i) in indices.iter().enumerate() {
                    let off = slot * bucket_blocks as usize * bs;
                    buckets.load_bucket(i, &buf[off..off + bucket_blocks as usize * bs])?;
                }
            }
        }

        // Restore the document-ordering floor from the superblock ceiling
        // (which covers bucket, long-list, and drained postings alike).
        let mut mem = MemIndex::new();
        if doc_ceiling > 0 {
            mem.set_floor(DocId((doc_ceiling - 1) as u32));
        }

        // A fresh cache on every open: recovery (and any restart) starts
        // cold rather than trusting frames from a previous incarnation.
        let cache = attach_cache(&mut array, &config);
        Ok(Self {
            config,
            array,
            mem,
            buckets,
            longs,
            deleted: BTreeSet::new(),
            batch_no,
            bucket_extents,
            dir_extent,
            cache,
        })
    }

    // ----- checkpoint serialization (durable mode) -----

    /// Capture the full logical state of the index (minus unflushed
    /// in-memory postings, which the WAL owns) for a checkpoint file.
    pub fn snapshot(&self) -> Result<IndexSnapshot> {
        let worst = 4 + self.config.bucket_capacity_units as usize * 12;
        let mut buckets = Vec::with_capacity(self.config.num_buckets);
        for i in 0..self.config.num_buckets {
            buckets.push(self.buckets.serialize_bucket(i, worst)?);
        }
        Ok(IndexSnapshot {
            batch_no: self.batch_no,
            doc_ceiling: self.mem.last_doc().map_or(0u64, |d| d.0 as u64 + 1),
            num_buckets: self.config.num_buckets as u64,
            bucket_capacity_units: self.config.bucket_capacity_units,
            block_postings: self.config.block_postings,
            codec: self.config.codec,
            deleted: self.deleted.iter().map(|d| d.0).collect(),
            directory: self.longs.directory().serialize(),
            buckets,
        })
    }

    /// Rebuild an index from a checkpoint snapshot. Like [`Self::open`],
    /// the array must expose the same devices with fresh, fully-free
    /// allocators; every long-list chunk named by the snapshot's directory
    /// (plus the block-0 home) is re-reserved, which makes subsequent WAL
    /// replay allocate exactly as the original run did.
    pub fn restore(mut array: DiskArray, config: IndexConfig, snap: &IndexSnapshot) -> Result<Self> {
        let bs = array.block_size();
        if snap.block_postings != config.block_postings {
            return Err(IndexError::InvalidConfig(format!(
                "checkpoint uses {} postings/block, caller expected {}",
                snap.block_postings, config.block_postings
            )));
        }
        if snap.codec != config.codec {
            return Err(IndexError::CodecMismatch {
                on_disk: snap.codec,
                requested: config.codec,
            });
        }
        let config = IndexConfig {
            num_buckets: snap.num_buckets as usize,
            bucket_capacity_units: snap.bucket_capacity_units,
            ..config
        };
        config.validate(bs)?;
        reserve_on(&mut array, 0, 0, 1)?;
        let directory = Directory::deserialize(&snap.directory)?;
        for (_, entry) in directory.iter() {
            for c in &entry.chunks {
                reserve_on(&mut array, c.disk, c.start, c.blocks)?;
            }
        }
        let longs = LongStore::from_directory(
            directory,
            LongConfig {
                block_postings: config.block_postings,
                policy: config.policy,
                codec: config.codec,
            },
        );
        let mut buckets = BucketStore::new(config.num_buckets, config.bucket_capacity_units)?;
        if snap.buckets.len() != config.num_buckets {
            return Err(IndexError::Corruption(format!(
                "checkpoint has {} buckets, geometry says {}",
                snap.buckets.len(),
                config.num_buckets
            )));
        }
        for (i, bytes) in snap.buckets.iter().enumerate() {
            buckets.load_bucket(i, bytes)?;
        }
        let mut mem = MemIndex::new();
        if snap.doc_ceiling > 0 {
            mem.set_floor(DocId((snap.doc_ceiling - 1) as u32));
        }
        // Recovery always drops the cache: WAL replay rewrites chunks the
        // checkpoint's directory still references, and a warm frame from
        // before the crash must never answer a post-recovery read.
        let cache = attach_cache(&mut array, &config);
        Ok(Self {
            config,
            array,
            mem,
            buckets,
            longs,
            deleted: snap.deleted.iter().map(|&d| DocId(d)).collect(),
            batch_no: snap.batch_no,
            // Durable mode has no shadow-paged metadata generation on the
            // devices; these stay empty until a legacy flush_batch runs.
            bucket_extents: Vec::new(),
            dir_extent: None,
            cache,
        })
    }
}

/// The full logical state of a [`DualIndex`] at a batch boundary, as
/// captured into (and restored from) a checkpoint file by the durable
/// layer. Byte encoding is delegated to [`IndexSnapshot::serialize`] /
/// [`IndexSnapshot::deserialize`] so the checkpoint format lives in one
/// place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSnapshot {
    /// Completed batches at snapshot time.
    pub batch_no: u64,
    /// Document-ordering ceiling (0 = no documents yet).
    pub doc_ceiling: u64,
    /// Bucket count (geometry is owned by the stored index).
    pub num_buckets: u64,
    /// Bucket capacity in units.
    pub bucket_capacity_units: u64,
    /// Postings per block.
    pub block_postings: u64,
    /// Postings codec the chunk bytes were written with.
    pub codec: PostingsCodec,
    /// Pending logical deletions.
    pub deleted: Vec<u32>,
    /// Serialized long-list directory.
    pub directory: Vec<u8>,
    /// Serialized buckets, in index order.
    pub buckets: Vec<Vec<u8>>,
}

impl IndexSnapshot {
    /// Encode to bytes (length-prefixed sections, little-endian).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.deleted.len() * 4
                + self.directory.len()
                + self.buckets.iter().map(|b| 4 + b.len()).sum::<usize>(),
        );
        out.extend_from_slice(&self.batch_no.to_le_bytes());
        out.extend_from_slice(&self.doc_ceiling.to_le_bytes());
        out.extend_from_slice(&self.num_buckets.to_le_bytes());
        out.extend_from_slice(&self.bucket_capacity_units.to_le_bytes());
        out.extend_from_slice(&self.block_postings.to_le_bytes());
        out.push(self.codec.as_u8());
        out.extend_from_slice(&(self.deleted.len() as u32).to_le_bytes());
        for d in &self.deleted {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out.extend_from_slice(&(self.directory.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.directory);
        out.extend_from_slice(&(self.buckets.len() as u32).to_le_bytes());
        for b in &self.buckets {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        out
    }

    /// Decode from bytes produced by [`Self::serialize`].
    pub fn deserialize(bytes: &[u8]) -> Result<Self> {
        let mut cur = SnapCursor { bytes, pos: 0 };
        let batch_no = cur.u64le()?;
        let doc_ceiling = cur.u64le()?;
        let num_buckets = cur.u64le()?;
        let bucket_capacity_units = cur.u64le()?;
        let block_postings = cur.u64le()?;
        let codec = PostingsCodec::from_u8(cur.take(1)?[0])?;
        let ndel = cur.u32le()? as usize;
        let mut deleted = Vec::with_capacity(ndel.min(1 << 20));
        for _ in 0..ndel {
            deleted.push(cur.u32le()?);
        }
        let dirlen = cur.u64le()? as usize;
        let directory = cur.take(dirlen)?.to_vec();
        let nbuckets = cur.u32le()? as usize;
        if nbuckets as u64 != num_buckets {
            return Err(IndexError::Corruption(format!(
                "snapshot bucket payload count {nbuckets} != geometry {num_buckets}"
            )));
        }
        let mut buckets = Vec::with_capacity(nbuckets.min(1 << 20));
        for _ in 0..nbuckets {
            let len = cur.u32le()? as usize;
            buckets.push(cur.take(len)?.to_vec());
        }
        if cur.pos != bytes.len() {
            return Err(IndexError::Corruption("trailing bytes after index snapshot".into()));
        }
        Ok(Self {
            batch_no,
            doc_ceiling,
            num_buckets,
            bucket_capacity_units,
            block_postings,
            codec,
            deleted,
            directory,
            buckets,
        })
    }
}

struct SnapCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(IndexError::Corruption("truncated index snapshot".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32le(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64le(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

fn reserve_on(array: &mut DiskArray, disk: u16, start: u64, blocks: u64) -> Result<()> {
    array.reserve_on(disk, start, blocks).map_err(IndexError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use invidx_disk::{sparse_array, Disk, FileDevice, FitStrategy, FreeList};

    fn small_index() -> DualIndex {
        let array = sparse_array(3, 50_000, 256);
        DualIndex::create(array, IndexConfig::small()).unwrap()
    }

    /// Insert `docs` documents where word w appears in every doc with
    /// id % w == 0 — deterministic, Zipf-ish (low words frequent).
    fn load(index: &mut DualIndex, doc_range: std::ops::Range<u32>, words: u64) {
        for d in doc_range {
            let doc_words = (1..=words).filter(|w| (d as u64).is_multiple_of(*w)).map(WordId);
            index.insert_document(DocId(d), doc_words).unwrap();
        }
    }

    #[test]
    fn basic_insert_flush_query() {
        let mut ix = small_index();
        load(&mut ix, 1..30, 10);
        ix.flush_batch().unwrap();
        // Word 1 in every doc, word 7 in multiples of 7.
        assert_eq!(ix.postings(WordId(1)).unwrap().len(), 29);
        let sevens = ix.postings(WordId(7)).unwrap();
        assert_eq!(
            sevens.docs().iter().map(|d| d.0).collect::<Vec<_>>(),
            vec![7, 14, 21, 28]
        );
        assert!(ix.postings(WordId(999)).unwrap().is_empty());
    }

    #[test]
    fn unflushed_postings_visible() {
        let mut ix = small_index();
        load(&mut ix, 1..10, 5);
        ix.flush_batch().unwrap();
        load(&mut ix, 10..15, 5);
        // Word 1: 9 stored + 5 in memory.
        assert_eq!(ix.postings(WordId(1)).unwrap().len(), 14);
        assert_eq!(ix.doc_frequency(WordId(1)), 14);
    }

    #[test]
    fn frequent_words_migrate_to_long_lists() {
        let mut ix = small_index();
        for batch in 0..6u32 {
            load(&mut ix, batch * 50 + 1..(batch + 1) * 50 + 1, 12);
            ix.flush_batch().unwrap();
        }
        // Word 1 (in every document) must long since it alone exceeds a
        // 40-unit bucket.
        assert_eq!(ix.location(WordId(1)), WordLocation::Long);
        // A rare word stays short.
        assert_eq!(ix.location(WordId(11)), WordLocation::Short);
        // Content is intact either way.
        assert_eq!(ix.postings(WordId(1)).unwrap().len(), 300);
        assert_eq!(ix.postings(WordId(11)).unwrap().len(), 300 / 11);
        // A word never has both a short and a long list.
        assert!(ix.buckets().get(WordId(1)).is_none());
    }

    #[test]
    fn batch_reports_categorize_words() {
        let mut ix = small_index();
        load(&mut ix, 1..40, 8);
        let r1 = ix.flush_batch().unwrap();
        assert_eq!(r1.new_words, 8);
        assert_eq!(r1.bucket_words + r1.long_words, 0);
        load(&mut ix, 40..80, 8);
        let r2 = ix.flush_batch().unwrap();
        // All 8 words were seen before; none are new.
        assert_eq!(r2.new_words, 0);
        assert_eq!(r2.bucket_words + r2.long_words, 8);
        assert_eq!(r2.batch, 1);
        assert!(r2.postings >= r2.words);
    }

    #[test]
    fn flush_of_empty_batch_is_valid() {
        let mut ix = small_index();
        let r = ix.flush_batch().unwrap();
        assert_eq!(r.words, 0);
        assert_eq!(ix.batches(), 1);
        // And queries still work.
        assert!(ix.postings(WordId(5)).unwrap().is_empty());
    }

    #[test]
    fn trace_contains_bucket_directory_and_longlist_ops() {
        let mut ix = small_index();
        ix.array().start_trace();
        for batch in 0..4u32 {
            load(&mut ix, batch * 60 + 1..(batch + 1) * 60 + 1, 10);
            ix.flush_batch().unwrap();
        }
        let trace = ix.array().take_trace();
        assert_eq!(trace.batches(), 4);
        assert!(trace.count(|op| matches!(op.payload, Payload::Bucket)) >= 4);
        assert!(trace.count(|op| matches!(op.payload, Payload::Directory)) == 4);
        assert!(trace.count(|op| matches!(op.payload, Payload::LongList { .. })) > 0);
    }

    #[test]
    fn shadow_paging_frees_previous_generation() {
        let mut ix = small_index();
        load(&mut ix, 1..50, 10);
        ix.flush_batch().unwrap();
        let free_after_1 = ix.array().free_blocks();
        for b in 1..5u32 {
            load(&mut ix, b * 50 + 1..(b + 1) * 50 + 1, 10);
            ix.flush_batch().unwrap();
        }
        let free_after_5 = ix.array().free_blocks();
        // Bucket + directory regions are constant-size; only long-list
        // growth consumes space. With ~10 long words the drop stays small
        // rather than accumulating whole bucket generations (~40+ blocks
        // per batch would leak otherwise).
        let consumed = free_after_1 - free_after_5;
        let long_blocks = ix.directory().total_blocks();
        assert!(
            consumed <= long_blocks + 16,
            "consumed {consumed} vs long-list blocks {long_blocks}"
        );
    }

    #[test]
    fn deletion_filter_and_sweep() {
        let mut ix = small_index();
        load(&mut ix, 1..60, 6);
        ix.flush_batch().unwrap();
        let before = ix.postings(WordId(2)).unwrap().len();
        ix.delete_document(DocId(2));
        ix.delete_document(DocId(4));
        assert_eq!(ix.pending_deletions(), 2);
        // Filtered immediately.
        assert_eq!(ix.postings(WordId(2)).unwrap().len(), before - 2);
        let report = ix.sweep().unwrap();
        assert_eq!(ix.pending_deletions(), 0);
        assert!(report.postings_removed >= 2);
        // Physically gone.
        assert_eq!(ix.postings(WordId(2)).unwrap().len(), before - 2);
        assert!(!ix.postings(WordId(2)).unwrap().docs().contains(&DocId(4)));
        // Sweep with nothing pending is a no-op.
        assert_eq!(ix.sweep().unwrap(), SweepReport::default());
    }

    #[test]
    fn sweep_drops_fully_deleted_words() {
        let mut ix = small_index();
        ix.insert_document(DocId(1), [WordId(3)]).unwrap();
        ix.insert_document(DocId(2), [WordId(3), WordId(4)]).unwrap();
        ix.flush_batch().unwrap();
        ix.delete_document(DocId(1));
        ix.delete_document(DocId(2));
        let report = ix.sweep().unwrap();
        assert_eq!(report.words_dropped, 2);
        assert_eq!(ix.location(WordId(3)), WordLocation::Absent);
    }

    #[test]
    fn read_cost_matches_location() {
        let mut ix = small_index();
        for b in 0..5u32 {
            load(&mut ix, b * 40 + 1..(b + 1) * 40 + 1, 10);
            ix.flush_batch().unwrap();
        }
        assert_eq!(ix.location(WordId(1)), WordLocation::Long);
        let cost = ix.read_cost(WordId(1));
        assert_eq!(cost, ix.directory().get(WordId(1)).unwrap().num_chunks() as u64);
        assert_eq!(ix.read_cost(WordId(9)), 1); // short (alone in bucket 9)
        assert_eq!(ix.read_cost(WordId(999)), 0); // absent
        ix.insert_document(DocId(9999), [WordId(999)]).unwrap();
        assert_eq!(ix.location(WordId(999)), WordLocation::MemoryOnly);
    }

    fn file_array(dir: &std::path::Path, n: u16, blocks: u64, bs: usize, create: bool) -> DiskArray {
        let disks = (0..n)
            .map(|d| {
                let path = dir.join(format!("disk{d}.bin"));
                let device = if create {
                    FileDevice::create(&path, blocks, bs).unwrap()
                } else {
                    FileDevice::open(&path, bs).unwrap()
                };
                Disk {
                    device: Box::new(device) as Box<dyn invidx_disk::BlockDevice>,
                    alloc: Box::new(FreeList::new(blocks, FitStrategy::FirstFit)),
                }
            })
            .collect();
        DiskArray::new(disks)
    }

    #[test]
    fn crash_recovery_from_files() {
        let dir = std::env::temp_dir().join(format!("invidx-recover-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let config = IndexConfig::small();
        let expected: Vec<(WordId, usize)> = {
            let array = file_array(&dir, 2, 20_000, 256, true);
            let mut ix = DualIndex::create(array, config).unwrap();
            for b in 0..4u32 {
                load(&mut ix, b * 50 + 1..(b + 1) * 50 + 1, 10);
                ix.flush_batch().unwrap();
            }
            // Buffer an unflushed batch: it must NOT survive (the batch
            // boundary is the recovery point).
            load(&mut ix, 201..220, 10);
            (1..=10u64).map(|w| (WordId(w), 200 / w as usize)).collect()
        };
        // "Crash": drop the index, re-open from the files.
        let array = file_array(&dir, 2, 20_000, 256, false);
        let mut ix = DualIndex::open(array, config).unwrap();
        assert_eq!(ix.batches(), 4);
        for (w, n) in expected {
            assert_eq!(ix.postings(w).unwrap().len(), n, "word {w}");
        }
        // The index keeps working after recovery.
        load(&mut ix, 201..230, 10);
        ix.flush_batch().unwrap();
        assert_eq!(ix.postings(WordId(1)).unwrap().len(), 229);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_mismatched_config() {
        let dir = std::env::temp_dir().join(format!("invidx-badcfg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let config = IndexConfig::small();
        {
            let array = file_array(&dir, 1, 10_000, 256, true);
            let mut ix = DualIndex::create(array, config).unwrap();
            ix.flush_batch().unwrap();
        }
        // block_postings defines byte interpretation: mismatch is an error.
        let array = file_array(&dir, 1, 10_000, 256, false);
        let bad = IndexConfig { block_postings: 50, ..config };
        assert!(DualIndex::open(array, bad).is_err());
        // Bucket geometry is owned by the on-disk index: a caller value is
        // overridden by the superblock (rebalancing can change it).
        let array = file_array(&dir, 1, 10_000, 256, false);
        let other_geometry = IndexConfig { num_buckets: 99, ..config };
        let ix = DualIndex::open(array, other_geometry).unwrap();
        assert_eq!(ix.config().num_buckets, config.num_buckets);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_codec_change() {
        let dir = std::env::temp_dir().join(format!("invidx-codecsw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let config = IndexConfig { codec: PostingsCodec::VarintDelta, ..IndexConfig::small() };
        {
            let array = file_array(&dir, 1, 10_000, 256, true);
            let mut ix = DualIndex::create(array, config).unwrap();
            load(&mut ix, 1..30, 10);
            ix.flush_batch().unwrap();
        }
        // Reinterpreting compressed chunks as plain (or vice versa) is a
        // typed error, not silent garbage.
        let array = file_array(&dir, 1, 10_000, 256, false);
        let bad = IndexConfig { codec: PostingsCodec::Plain, ..config };
        assert!(matches!(
            DualIndex::open(array, bad),
            Err(IndexError::CodecMismatch {
                on_disk: PostingsCodec::VarintDelta,
                requested: PostingsCodec::Plain,
            })
        ));
        // The matching codec opens fine and reads back identical postings.
        let array = file_array(&dir, 1, 10_000, 256, false);
        let ix = DualIndex::open(array, config).unwrap();
        assert_eq!(ix.postings(WordId(1)).unwrap().len(), 29);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_index_round_trips_through_snapshot() {
        let dir = std::env::temp_dir().join(format!("invidx-codecsnap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let config = IndexConfig { codec: PostingsCodec::BitPacked, ..IndexConfig::small() };
        let (snap, expect) = {
            let array = file_array(&dir, 2, 20_000, 256, true);
            let mut ix = DualIndex::create(array, config).unwrap();
            load(&mut ix, 1..60, 10);
            ix.flush_batch().unwrap();
            let expect: Vec<_> =
                (1..=10u64).map(|w| ix.postings(WordId(w)).unwrap()).collect();
            (ix.snapshot().unwrap(), expect)
        };
        let restored_snap = IndexSnapshot::deserialize(&snap.serialize()).unwrap();
        assert_eq!(restored_snap, snap);
        // Restore requires the same codec.
        let bad = IndexConfig { codec: PostingsCodec::Plain, ..config };
        assert!(matches!(
            DualIndex::restore(file_array(&dir, 2, 20_000, 256, false), bad, &snap),
            Err(IndexError::CodecMismatch { .. })
        ));
        let restored =
            DualIndex::restore(file_array(&dir, 2, 20_000, 256, false), config, &snap).unwrap();
        for (w, want) in (1..=10u64).zip(&expect) {
            assert_eq!(&restored.postings(WordId(w)).unwrap(), want, "word {w}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebalance_grows_bucket_space_and_recovers() {
        let dir = std::env::temp_dir().join(format!("invidx-rebal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let config = IndexConfig::small();
        {
            let array = file_array(&dir, 2, 20_000, 256, true);
            let mut ix = DualIndex::create(array, config).unwrap();
            for b in 0..3u32 {
                load(&mut ix, b * 50 + 1..(b + 1) * 50 + 1, 10);
                ix.flush_batch().unwrap();
            }
            let short_before = ix.buckets().total_words();
            let report = ix.rebalance_buckets(64, 80).unwrap();
            assert_eq!(report.old_buckets, 16);
            assert_eq!(report.new_buckets, 64);
            assert_eq!(report.moved_words, short_before);
            assert_eq!(ix.config().num_buckets, 64);
            // Content unchanged.
            assert_eq!(ix.postings(WordId(1)).unwrap().len(), 150);
            assert_eq!(ix.postings(WordId(7)).unwrap().len(), 150 / 7);
            // Keeps working.
            load(&mut ix, 151..200, 10);
            ix.flush_batch().unwrap();
        }
        // The new geometry survives recovery (superblock is authoritative).
        let array = file_array(&dir, 2, 20_000, 256, false);
        let ix = DualIndex::open(array, config).unwrap();
        assert_eq!(ix.config().num_buckets, 64);
        assert_eq!(ix.config().bucket_capacity_units, 80);
        assert_eq!(ix.postings(WordId(1)).unwrap().len(), 199);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebalance_shrink_overflows_to_long_lists() {
        let mut ix = small_index();
        load(&mut ix, 1..80, 10);
        ix.flush_batch().unwrap();
        let long_before = ix.directory().num_words();
        // Shrink drastically: one tiny bucket forces most lists long.
        let report = ix.rebalance_buckets(1, 20).unwrap();
        assert!(report.evictions > 0);
        assert!(ix.directory().num_words() > long_before);
        assert!(ix.buckets().bucket(0).units() <= 20);
        // All content preserved.
        for w in 1..=10u64 {
            assert_eq!(ix.postings(WordId(w)).unwrap().len(), 79 / w as usize);
        }
    }

    #[test]
    fn compact_defragments_update_optimized_index() {
        let mut ix = small_index();
        // new 0 fragments heavily: one chunk per update per long word.
        let mut ix2 = DualIndex::create(
            sparse_array(3, 50_000, 256),
            IndexConfig::small().with_policy(Policy::update_optimized()),
        )
        .unwrap();
        std::mem::swap(&mut ix, &mut ix2);
        for b in 0..6u32 {
            load(&mut ix, b * 50 + 1..(b + 1) * 50 + 1, 10);
            ix.flush_batch().unwrap();
        }
        let frag_cost = ix.read_cost(WordId(1));
        assert!(frag_cost > 1, "expected fragmentation, got {frag_cost}");
        let free_before = ix.array().free_blocks();
        let report = ix.compact().unwrap();
        assert!(report.lists_rewritten > 0);
        assert_eq!(report.chunks_after, ix.directory().num_words() as u64);
        assert!(report.chunks_before > report.chunks_after);
        // Every long list now costs one read; content unchanged.
        for w in 1..=10u64 {
            if ix.location(WordId(w)) == WordLocation::Long {
                assert_eq!(ix.read_cost(WordId(w)), 1);
            }
            assert_eq!(ix.postings(WordId(w)).unwrap().len(), 300 / w as usize);
        }
        assert!(ix.array().free_blocks() >= free_before, "compaction must not leak");
        // And the index keeps working afterwards.
        load(&mut ix, 301..330, 10);
        ix.flush_batch().unwrap();
        assert_eq!(ix.postings(WordId(1)).unwrap().len(), 329);
    }

    #[test]
    fn compact_is_idempotent_and_gated() {
        let mut ix = small_index();
        load(&mut ix, 1..100, 10);
        assert!(ix.compact().is_err(), "buffered docs must block compaction");
        ix.flush_batch().unwrap();
        ix.compact().unwrap();
        let second = ix.compact().unwrap();
        assert_eq!(second.lists_rewritten, 0);
        assert_eq!(second.blocks_freed, 0);
    }

    #[test]
    fn rebalance_requires_batch_boundary() {
        let mut ix = small_index();
        ix.insert_document(DocId(1), [WordId(1)]).unwrap();
        assert!(ix.rebalance_buckets(32, 80).is_err());
        ix.flush_batch().unwrap();
        assert!(ix.rebalance_buckets(32, 80).is_ok());
    }

    #[test]
    fn open_rejects_uninitialized_device() {
        let array = sparse_array(1, 1_000, 256);
        assert!(matches!(
            DualIndex::open(array, IndexConfig::small()),
            Err(IndexError::Corruption(_))
        ));
    }

    #[test]
    fn config_validation_rejects_oversized_buckets() {
        // Bucket worst case exceeding the region must be caught.
        let config = IndexConfig {
            num_buckets: 4,
            bucket_capacity_units: 1000,
            block_postings: 1000,
            ..IndexConfig::small()
        };
        // 1000 postings * 4 bytes = 4000 > 256-byte block: LongConfig fails
        // first; with a big enough block the bucket check fires.
        assert!(config.validate(256).is_err());
        let config2 = IndexConfig { block_postings: 60, ..config };
        // bucket_blocks = ceil(1000/60) = 17 blocks * 256 = 4352 bytes,
        // worst case = 4 + 12000: rejected.
        assert!(config2.validate(256).is_err());
    }

    #[test]
    fn unmaterialized_buckets_trace_identical() {
        let run = |materialize: bool| {
            let array = sparse_array(2, 50_000, 256);
            let config = IndexConfig { materialize_buckets: materialize, ..IndexConfig::small() };
            let mut ix = DualIndex::create(array, config).unwrap();
            ix.array().start_trace();
            for b in 0..3u32 {
                load(&mut ix, b * 50 + 1..(b + 1) * 50 + 1, 10);
                ix.flush_batch().unwrap();
            }
            ix.array().take_trace()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn documents_must_arrive_in_order_across_batches() {
        let mut ix = small_index();
        ix.insert_document(DocId(10), [WordId(1)]).unwrap();
        ix.flush_batch().unwrap();
        assert!(ix.insert_document(DocId(10), [WordId(1)]).is_err());
        assert!(ix.insert_document(DocId(11), [WordId(1)]).is_ok());
    }
}
