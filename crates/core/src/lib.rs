//! # invidx-core — the dual-structure incremental inverted index
//!
//! The primary contribution of *Tomasic, Garcia-Molina & Shoens,
//! "Incremental Updates of Inverted Lists for Text Document Retrieval",
//! SIGMOD 1994*: an index that dynamically separates **short** inverted
//! lists (packed many-per-bucket in fixed-size regions) from **long**
//! inverted lists (variable-length contiguous chunk sequences on disk),
//! with a policy family — `Style × Limit × Alloc` — governing where long
//! lists grow, whether they grow in place, and how much space is reserved
//! for future growth.
//!
//! Quick tour:
//!
//! ```
//! use invidx_core::index::{DualIndex, IndexConfig};
//! use invidx_core::policy::Policy;
//! use invidx_core::types::{DocId, WordId};
//! use invidx_disk::sparse_array;
//!
//! let array = sparse_array(2, 10_000, 256);
//! let config = IndexConfig::small().with_policy(Policy::balanced());
//! let mut index = DualIndex::create(array, config).unwrap();
//! index.insert_document(DocId(1), [WordId(10), WordId(20)]).unwrap();
//! index.insert_document(DocId(2), [WordId(10)]).unwrap();
//! index.flush_batch().unwrap();
//! let list = index.postings(WordId(10)).unwrap();
//! assert_eq!(list.docs(), &[DocId(1), DocId(2)]);
//! ```
//!
//! Modules, bottom-up:
//!
//! * [`types`] — identifiers and errors;
//! * [`postings`] — sorted posting lists, merges, and codecs;
//! * [`memindex`] — the per-batch in-memory inverted index;
//! * [`bucket`] — fixed-capacity buckets with longest-list eviction;
//! * [`directory`] — long-list chunk metadata + the RELEASE list;
//! * [`policy`] — the `Style`/`Limit`/`Alloc` policy space (paper Table 2);
//! * [`longlist`] — the Figure 2 update algorithm over a disk array;
//! * [`cache`] — the sharded block cache between the read path and the
//!   disk array (CLOCK eviction, pinning, write-through invalidation);
//! * [`index`] — [`index::DualIndex`]: updates, queries, deletion
//!   (filter + sweep), shadow-paged flush, and crash recovery;
//! * [`concurrent`] — a thread-safe wrapper allowing concurrent readers.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bucket;
pub mod cache;
pub mod codec;
pub mod concurrent;
pub mod directory;
pub mod index;
pub mod longlist;
pub mod memindex;
pub mod parallel;
pub mod policy;
pub mod postings;
pub mod types;

pub use bucket::{Bucket, BucketStore, InsertOutcome};
pub use cache::{BlockCache, CacheStats, PinGuard};
pub use codec::PostingsCodec;
pub use concurrent::{EpochCounter, SharedIndex};
pub use directory::{ChunkRef, Directory, LongEntry};
pub use index::{
    BatchReport, CompactReport, DualIndex, EngineKind, IndexConfig, IndexSnapshot,
    RebalanceReport, SweepReport, WordLocation,
};
pub use longlist::{LongConfig, LongStats, LongStore};
pub use memindex::MemIndex;
pub use parallel::{invert_batch, shard_of};
pub use policy::{Alloc, Limit, Policy, Style};
pub use postings::PostingList;
pub use types::{DocId, IndexError, Result, WordId};
