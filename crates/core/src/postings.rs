//! Posting lists: sorted sequences of document identifiers.
//!
//! "The inverted list for a particular word w contains a sequence of
//! postings, each reporting the occurrence of w in a document. [...] the
//! document identifiers appear in sorted order in inverted lists" (§1, §3).
//! The sorted-order invariant is what makes the merge-based query operators
//! (intersection, union, difference) linear, and what makes incremental
//! updates pure *appends*: new documents carry larger identifiers.
//!
//! Two byte encodings are provided:
//!
//! * **fixed** — 4-byte little-endian doc ids. This is the layout used on
//!   disk by the long-list store, where the paper's `BlockPosting`
//!   parameter fixes how many postings fit one block.
//! * **delta-varint** — gap encoding with LEB128 varints, the classic
//!   compressed form (Zobel–Moffat–Sacks-Davis, the paper's related work
//!   [12], "the compression methods presented there complement this paper
//!   well"). Used by the compression ablation.

use crate::types::{DocId, IndexError, Result, WordId};

/// A sorted, duplicate-free list of document identifiers.
///
/// ```
/// use invidx_core::postings::PostingList;
/// use invidx_core::types::DocId;
///
/// let cat = PostingList::from_sorted(vec![DocId(1), DocId(2), DocId(5)]);
/// let dog = PostingList::from_sorted(vec![DocId(2), DocId(3), DocId(5)]);
/// assert_eq!(cat.intersect(&dog).docs(), &[DocId(2), DocId(5)]);
/// assert_eq!(cat.union(&dog).len(), 4);
/// assert_eq!(cat.difference(&dog).docs(), &[DocId(1)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PostingList {
    docs: Vec<DocId>,
}

impl PostingList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vector that is already sorted and duplicate-free.
    ///
    /// # Panics
    /// Debug-asserts the invariant.
    pub fn from_sorted(docs: Vec<DocId>) -> Self {
        debug_assert!(docs.windows(2).all(|w| w[0] < w[1]), "postings must be sorted unique");
        Self { docs }
    }

    /// Build from arbitrary doc ids: sorts and deduplicates.
    pub fn from_unsorted(mut docs: Vec<DocId>) -> Self {
        docs.sort_unstable();
        docs.dedup();
        Self { docs }
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The postings as a slice.
    pub fn docs(&self) -> &[DocId] {
        &self.docs
    }

    /// Largest document id, if any.
    pub fn last(&self) -> Option<DocId> {
        self.docs.last().copied()
    }

    /// Append one posting; must exceed the current maximum.
    pub fn push(&mut self, word: WordId, doc: DocId) -> Result<()> {
        if let Some(last) = self.last() {
            if doc <= last {
                return Err(IndexError::OutOfOrderAppend { word, have: last, new: doc });
            }
        }
        self.docs.push(doc);
        Ok(())
    }

    /// Append a whole list; its first id must exceed our maximum. This is
    /// the fundamental incremental-update operation: "all long lists are
    /// updated by appending new postings to them" (§3).
    pub fn append(&mut self, word: WordId, other: &PostingList) -> Result<()> {
        if let (Some(last), Some(first)) = (self.last(), other.docs.first().copied()) {
            if first <= last {
                return Err(IndexError::OutOfOrderAppend { word, have: last, new: first });
            }
        }
        self.docs.extend_from_slice(&other.docs);
        Ok(())
    }

    /// Merge two arbitrary sorted lists into their union (used by queries
    /// that combine in-memory, bucket, and long-list segments).
    pub fn union(&self, other: &PostingList) -> PostingList {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.docs.len() && j < other.docs.len() {
            match self.docs[i].cmp(&other.docs[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.docs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.docs[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.docs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.docs[i..]);
        out.extend_from_slice(&other.docs[j..]);
        PostingList { docs: out }
    }

    /// Sorted-merge intersection.
    pub fn intersect(&self, other: &PostingList) -> PostingList {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.docs.len() && j < other.docs.len() {
            match self.docs[i].cmp(&other.docs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.docs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        PostingList { docs: out }
    }

    /// Sorted-merge difference (`self AND NOT other`).
    pub fn difference(&self, other: &PostingList) -> PostingList {
        let mut out = Vec::with_capacity(self.len());
        let mut j = 0;
        for &d in &self.docs {
            while j < other.docs.len() && other.docs[j] < d {
                j += 1;
            }
            if j >= other.docs.len() || other.docs[j] != d {
                out.push(d);
            }
        }
        PostingList { docs: out }
    }

    /// Retain only postings satisfying the predicate (used by the deletion
    /// sweep).
    pub fn retain<F: FnMut(DocId) -> bool>(&mut self, mut f: F) {
        self.docs.retain(|&d| f(d));
    }

    /// Split off the first `n` postings (used by the fill style to carve a
    /// list into extents).
    pub fn split_prefix(&mut self, n: usize) -> PostingList {
        let n = n.min(self.docs.len());
        let rest = self.docs.split_off(n);
        PostingList { docs: std::mem::replace(&mut self.docs, rest) }
    }
}

impl FromIterator<DocId> for PostingList {
    fn from_iter<I: IntoIterator<Item = DocId>>(iter: I) -> Self {
        Self::from_unsorted(iter.into_iter().collect())
    }
}

/// Fixed-width codec: 4-byte little-endian doc ids, no header.
pub mod fixed {
    use super::*;

    /// Bytes needed for `n` postings.
    pub const fn encoded_len(n: usize) -> usize {
        n * 4
    }

    /// Encode `docs` into `out` (which must be large enough).
    pub fn encode_into(docs: &[DocId], out: &mut [u8]) {
        for (i, d) in docs.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&d.0.to_le_bytes());
        }
    }

    /// Decode `n` postings from `bytes`.
    pub fn decode(bytes: &[u8], n: usize) -> Result<Vec<DocId>> {
        if bytes.len() < n * 4 {
            return Err(IndexError::Corruption(format!(
                "fixed decode of {n} postings from {} bytes",
                bytes.len()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut b = [0u8; 4];
            b.copy_from_slice(&bytes[i * 4..(i + 1) * 4]);
            out.push(DocId(u32::from_le_bytes(b)));
        }
        Ok(out)
    }
}

/// Delta-varint codec: LEB128 gaps between consecutive doc ids (first id
/// encoded as-is, +1 shifts so gaps are always >= 1 and 0 never appears).
pub mod varint {
    use super::*;

    fn push_varint(mut v: u64, out: &mut Vec<u8>) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let &b = bytes
                .get(*pos)
                .ok_or_else(|| IndexError::Corruption("varint truncated".into()))?;
            *pos += 1;
            if shift >= 64 {
                return Err(IndexError::Corruption("varint overflow".into()));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Encode a sorted posting list as gap varints.
    pub fn encode(docs: &[DocId]) -> Vec<u8> {
        let mut out = Vec::with_capacity(docs.len() + 4);
        push_varint(docs.len() as u64, &mut out);
        let mut prev = 0u64;
        for (i, d) in docs.iter().enumerate() {
            let v = d.0 as u64;
            let gap = if i == 0 { v + 1 } else { v - prev };
            push_varint(gap, &mut out);
            prev = v;
        }
        out
    }

    /// Decode a gap-varint posting list.
    pub fn decode(bytes: &[u8]) -> Result<Vec<DocId>> {
        let mut pos = 0usize;
        let n = read_varint(bytes, &mut pos)? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        let mut prev = 0u64;
        for i in 0..n {
            let gap = read_varint(bytes, &mut pos)?;
            if gap == 0 {
                return Err(IndexError::Corruption("zero gap in posting list".into()));
            }
            let v = if i == 0 { gap - 1 } else { prev + gap };
            if v > u32::MAX as u64 {
                return Err(IndexError::Corruption("doc id overflow".into()));
            }
            out.push(DocId(v as u32));
            prev = v;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(ids: &[u32]) -> PostingList {
        PostingList::from_sorted(ids.iter().map(|&i| DocId(i)).collect())
    }

    #[test]
    fn push_enforces_order() {
        let mut p = pl(&[1, 5]);
        assert!(p.push(WordId(1), DocId(5)).is_err());
        assert!(p.push(WordId(1), DocId(4)).is_err());
        p.push(WordId(1), DocId(9)).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn append_enforces_order() {
        let mut p = pl(&[1, 5]);
        assert!(p.append(WordId(1), &pl(&[5, 9])).is_err());
        p.append(WordId(1), &pl(&[6, 9])).unwrap();
        assert_eq!(p.docs(), &[DocId(1), DocId(5), DocId(6), DocId(9)]);
        // Appending an empty list is a no-op.
        p.append(WordId(1), &PostingList::new()).unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn set_operations() {
        let a = pl(&[1, 3, 5, 7]);
        let b = pl(&[3, 4, 5, 8]);
        assert_eq!(a.union(&b), pl(&[1, 3, 4, 5, 7, 8]));
        assert_eq!(a.intersect(&b), pl(&[3, 5]));
        assert_eq!(a.difference(&b), pl(&[1, 7]));
        assert_eq!(b.difference(&a), pl(&[4, 8]));
    }

    #[test]
    fn set_operations_with_empty() {
        let a = pl(&[1, 2]);
        let e = PostingList::new();
        assert_eq!(a.union(&e), a);
        assert_eq!(a.intersect(&e), e);
        assert_eq!(a.difference(&e), a);
        assert_eq!(e.difference(&a), e);
    }

    #[test]
    fn from_unsorted_dedups() {
        let p = PostingList::from_unsorted(vec![DocId(5), DocId(1), DocId(5), DocId(3)]);
        assert_eq!(p, pl(&[1, 3, 5]));
    }

    #[test]
    fn split_prefix() {
        let mut p = pl(&[1, 2, 3, 4, 5]);
        let head = p.split_prefix(2);
        assert_eq!(head, pl(&[1, 2]));
        assert_eq!(p, pl(&[3, 4, 5]));
        let all = p.split_prefix(99);
        assert_eq!(all, pl(&[3, 4, 5]));
        assert!(p.is_empty());
    }

    #[test]
    fn fixed_codec_round_trip() {
        let docs: Vec<DocId> = [0u32, 1, 77, u32::MAX].iter().map(|&i| DocId(i)).collect();
        let mut buf = vec![0u8; fixed::encoded_len(docs.len())];
        fixed::encode_into(&docs, &mut buf);
        assert_eq!(fixed::decode(&buf, docs.len()).unwrap(), docs);
    }

    #[test]
    fn fixed_codec_short_buffer() {
        assert!(fixed::decode(&[0u8; 7], 2).is_err());
    }

    #[test]
    fn varint_codec_round_trip() {
        for docs in [
            vec![],
            vec![0u32],
            vec![0, 1, 2, 3],
            vec![5, 1000, 1001, 4_000_000_000],
            (0..1000u32).map(|i| i * 7).collect(),
        ] {
            let ids: Vec<DocId> = docs.iter().map(|&i| DocId(i)).collect();
            let bytes = varint::encode(&ids);
            assert_eq!(varint::decode(&bytes).unwrap(), ids);
        }
    }

    #[test]
    fn varint_compresses_dense_lists() {
        let ids: Vec<DocId> = (1000..2000u32).map(DocId).collect();
        let bytes = varint::encode(&ids);
        assert!(bytes.len() < fixed::encoded_len(ids.len()) / 2);
    }

    #[test]
    fn varint_rejects_truncation_and_zero_gap() {
        let ids: Vec<DocId> = (0..10u32).map(DocId).collect();
        let bytes = varint::encode(&ids);
        assert!(varint::decode(&bytes[..bytes.len() - 1]).is_err());
        // Hand-built: count 2, first gap 1 (doc 0), then an illegal 0 gap.
        assert!(varint::decode(&[2, 1, 0]).is_err());
    }
}
