//! Allocation policies for long lists (paper §3, Table 2).
//!
//! A policy is determined by three variables:
//!
//! | Variable | Values | Meaning |
//! |----------|--------|---------|
//! | `Limit`  | 0      | Never update in-place |
//! |          | z      | Update in-place if enough space |
//! | `Style`  | fill (e = 4) | Fill in fixed size extents |
//! |          | new    | Write a new chunk when appropriate |
//! |          | whole  | Long lists are single whole chunks |
//! | `Alloc`  | constant (k = 10) | Constant extra postings reserved |
//! |          | block (k = 2)     | Multiple of a fixed sized block reserved |
//! |          | proportional (k = 1.2) | Proportional extra postings reserved |
//!
//! Two normalization rules from §3.1: "If Limit = 0, then any reserved
//! space for a chunk is never used, so we automatically set Alloc =
//! constant with k = 0. If Style = fill then the allocation strategy is
//! irrelevant since it is never considered."

use serde::{Deserialize, Serialize};
use std::fmt;

/// The `Style` variable: how an in-memory list is combined with a long
/// list when it cannot (or may not) be applied in place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Style {
    /// Break lists into fixed-size extents of `extent_blocks` blocks; a new
    /// extent is started (on the next disk) when the current one is full.
    Fill {
        /// The global extent size `e`, in blocks.
        extent_blocks: u64,
    },
    /// Write each update as a new chunk appended to the word's chunk list.
    New,
    /// Keep each long list one contiguous chunk: read it all, append, write
    /// to a fresh location.
    Whole,
}

/// The `Limit` variable: when to update in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limit {
    /// `Limit = 0`: never update in place.
    Never,
    /// `Limit = z`: update in place when the in-memory list fits the free
    /// space at the end of the word's last chunk.
    Fits,
}

/// The `Alloc` variable: how much space `f(x)` to allocate when writing
/// `x` postings to a fresh chunk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Alloc {
    /// `f(x) = x + k` postings.
    Constant {
        /// Extra postings `k`.
        k: u64,
    },
    /// The chunk is a multiple of `k` *blocks*: the block count is rounded
    /// up to a multiple of `k`.
    Block {
        /// Block-granule `k`.
        k: u64,
    },
    /// `f(x) = k·x` postings, `k >= 1`.
    Proportional {
        /// Growth factor `k`.
        k: f64,
    },
}

/// A complete long-list allocation policy.
///
/// ```
/// use invidx_core::policy::Policy;
///
/// // The paper's named recommendations:
/// assert_eq!(Policy::update_optimized().label(), "new 0");
/// assert_eq!(Policy::query_optimized().label(), "whole z prop 1.2");
/// // Labels round-trip through the parser:
/// let p: Policy = "fill z e=8".parse().unwrap();
/// assert_eq!(p.label(), "fill z e=8");
/// // Reserved space: proportional k=2 doubles a 100-posting chunk.
/// assert_eq!(Policy::balanced().reserve_postings(100, 100), 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// Combination style.
    pub style: Style,
    /// In-place update rule.
    pub limit: Limit,
    /// Reserved-space rule for fresh chunks.
    pub alloc: Alloc,
}

impl Policy {
    /// Construct with the paper's normalization rules applied.
    pub fn new(style: Style, limit: Limit, alloc: Alloc) -> Self {
        let alloc = match (limit, style) {
            // "If Limit = 0 ... we automatically set Alloc = constant, k=0."
            (Limit::Never, _) => Alloc::Constant { k: 0 },
            // "If Style = fill then the allocation strategy is irrelevant."
            (_, Style::Fill { .. }) => Alloc::Constant { k: 0 },
            _ => alloc,
        };
        Self { style, limit, alloc }
    }

    /// The **update-optimized** extreme (§3.1): `new` with `Limit = 0` —
    /// "minimizes update time by simply writing out the update list blocks
    /// as fast as possible".
    pub fn update_optimized() -> Self {
        Self::new(Style::New, Limit::Never, Alloc::Constant { k: 0 })
    }

    /// The **query-optimized** policy the paper recommends (§5.4): `whole`
    /// with in-place updates and proportional allocation, k = 1.2 — one
    /// read per long list at ~70% utilization.
    pub fn query_optimized() -> Self {
        Self::new(Style::Whole, Limit::Fits, Alloc::Proportional { k: 1.2 })
    }

    /// The **balanced** recommendation for update-leaning workloads (§5.4):
    /// `new` with in-place updates and proportional allocation, k = 2.0
    /// (the cusp of Figure 11: space for roughly one further update of the
    /// same size).
    pub fn balanced() -> Self {
        Self::new(Style::New, Limit::Fits, Alloc::Proportional { k: 2.0 })
    }

    /// The extent-based trade-off policy (§3.1): `fill` with in-place
    /// updates and 4-block extents — bounds the largest contiguous region,
    /// good for disk arrays.
    pub fn extent_based() -> Self {
        Self::new(Style::Fill { extent_blocks: 4 }, Limit::Fits, Alloc::Constant { k: 0 })
    }

    /// The five policies compared throughout §5.2.1 (Figures 8–10, 13, 14):
    /// `new 0`, `new z`, `fill 0`, `fill z`, `whole 0`, `whole z` — with
    /// `Alloc = constant k = 0` so that "the effect of the allocation
    /// policies" is removed, leaving only in-place fills of block tails.
    pub fn style_comparison_set() -> Vec<Self> {
        let e = 4;
        vec![
            Self::new(Style::New, Limit::Never, Alloc::Constant { k: 0 }),
            Self::new(Style::New, Limit::Fits, Alloc::Constant { k: 0 }),
            Self::new(Style::Fill { extent_blocks: e }, Limit::Never, Alloc::Constant { k: 0 }),
            Self::new(Style::Fill { extent_blocks: e }, Limit::Fits, Alloc::Constant { k: 0 }),
            Self::new(Style::Whole, Limit::Never, Alloc::Constant { k: 0 }),
            Self::new(Style::Whole, Limit::Fits, Alloc::Constant { k: 0 }),
        ]
    }

    /// The reserved-space target `f(x)` in postings for a fresh chunk
    /// holding `x` postings, before rounding up to whole blocks.
    /// `block_postings` is needed by the block strategy, whose granule is
    /// expressed in blocks.
    pub fn reserve_postings(&self, x: u64, block_postings: u64) -> u64 {
        match self.alloc {
            Alloc::Constant { k } => x + k,
            Alloc::Block { k } => {
                // Round the block count up to a multiple of k blocks.
                let blocks = x.div_ceil(block_postings).max(1);
                let granule = k.max(1);
                blocks.div_ceil(granule) * granule * block_postings
            }
            Alloc::Proportional { k } => (x as f64 * k.max(1.0)).ceil() as u64,
        }
    }

    /// Blocks to allocate for a fresh chunk of `x` postings.
    pub fn chunk_blocks(&self, x: u64, block_postings: u64) -> u64 {
        self.reserve_postings(x, block_postings).div_ceil(block_postings).max(1)
    }

    /// Short label in the paper's figure-legend style, e.g. `"new z"`,
    /// `"whole 0"`, `"new z prop 2.0"`.
    pub fn label(&self) -> String {
        let style = match self.style {
            Style::Fill { .. } => "fill",
            Style::New => "new",
            Style::Whole => "whole",
        };
        let limit = match self.limit {
            Limit::Never => "0",
            Limit::Fits => "z",
        };
        let alloc = match self.alloc {
            Alloc::Constant { k: 0 } => String::new(),
            Alloc::Constant { k } => format!(" const {k}"),
            Alloc::Block { k } => format!(" block {k}"),
            Alloc::Proportional { k } => format!(" prop {k}"),
        };
        let extent = match self.style {
            Style::Fill { extent_blocks } if extent_blocks != 4 => format!(" e={extent_blocks}"),
            _ => String::new(),
        };
        format!("{style} {limit}{alloc}{extent}")
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl std::str::FromStr for Policy {
    type Err = String;

    /// Parse the label grammar: `<style> <limit> [<alloc> <k>] [e=<n>]`,
    /// e.g. `"new 0"`, `"whole z prop 1.2"`, `"fill z e=8"`,
    /// `"new z block 2"`. Round-trips with [`Policy::label`].
    fn from_str(s: &str) -> Result<Self, String> {
        let toks: Vec<&str> = s.split_ascii_whitespace().collect();
        let mut it = toks.iter().copied();
        let style_name = it.next().ok_or("empty policy")?;
        let limit = match it.next().ok_or("missing limit (0 or z)")? {
            "0" => Limit::Never,
            "z" => Limit::Fits,
            other => return Err(format!("bad limit {other:?}, expected 0 or z")),
        };
        let mut alloc = Alloc::Constant { k: 0 };
        let mut extent_blocks = 4u64;
        let rest: Vec<&str> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            match rest[i] {
                "prop" | "proportional" => {
                    let k: f64 = rest
                        .get(i + 1)
                        .ok_or("prop needs a constant")?
                        .parse()
                        .map_err(|e| format!("bad prop constant: {e}"))?;
                    alloc = Alloc::Proportional { k };
                    i += 2;
                }
                "const" | "constant" => {
                    let k: u64 = rest
                        .get(i + 1)
                        .ok_or("const needs a constant")?
                        .parse()
                        .map_err(|e| format!("bad const constant: {e}"))?;
                    alloc = Alloc::Constant { k };
                    i += 2;
                }
                "block" => {
                    let k: u64 = rest
                        .get(i + 1)
                        .ok_or("block needs a constant")?
                        .parse()
                        .map_err(|e| format!("bad block constant: {e}"))?;
                    alloc = Alloc::Block { k };
                    i += 2;
                }
                tok if tok.starts_with("e=") => {
                    extent_blocks =
                        tok[2..].parse().map_err(|e| format!("bad extent size: {e}"))?;
                    i += 1;
                }
                other => return Err(format!("unexpected token {other:?}")),
            }
        }
        let style = match style_name {
            "new" => Style::New,
            "whole" => Style::Whole,
            "fill" => Style::Fill { extent_blocks },
            other => return Err(format!("bad style {other:?}")),
        };
        Ok(Policy::new(style, limit, alloc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_limit_never() {
        let p = Policy::new(Style::New, Limit::Never, Alloc::Proportional { k: 2.0 });
        assert_eq!(p.alloc, Alloc::Constant { k: 0 });
    }

    #[test]
    fn normalization_fill_style() {
        let p = Policy::new(
            Style::Fill { extent_blocks: 4 },
            Limit::Fits,
            Alloc::Proportional { k: 2.0 },
        );
        assert_eq!(p.alloc, Alloc::Constant { k: 0 });
    }

    #[test]
    fn reserve_constant() {
        let p = Policy::new(Style::New, Limit::Fits, Alloc::Constant { k: 700 });
        assert_eq!(p.reserve_postings(100, 100), 800);
        assert_eq!(p.chunk_blocks(100, 100), 8);
    }

    #[test]
    fn reserve_block_rounds_to_granule() {
        let p = Policy::new(Style::New, Limit::Fits, Alloc::Block { k: 4 });
        // 150 postings at 100/block = 2 blocks, rounded to 4.
        assert_eq!(p.chunk_blocks(150, 100), 4);
        // 450 postings = 5 blocks -> 8.
        assert_eq!(p.chunk_blocks(450, 100), 8);
        // Exactly 4 blocks stays 4.
        assert_eq!(p.chunk_blocks(400, 100), 4);
    }

    #[test]
    fn reserve_proportional() {
        let p = Policy::new(Style::New, Limit::Fits, Alloc::Proportional { k: 1.5 });
        assert_eq!(p.reserve_postings(100, 100), 150);
        assert_eq!(p.chunk_blocks(100, 100), 2);
        // k below 1 is clamped to 1 (can never reserve less than the data).
        let p = Policy::new(Style::New, Limit::Fits, Alloc::Proportional { k: 0.5 });
        assert_eq!(p.reserve_postings(100, 100), 100);
    }

    #[test]
    fn chunk_blocks_minimum_one() {
        let p = Policy::update_optimized();
        assert_eq!(p.chunk_blocks(1, 100), 1);
    }

    #[test]
    fn labels() {
        assert_eq!(Policy::update_optimized().label(), "new 0");
        assert_eq!(Policy::query_optimized().label(), "whole z prop 1.2");
        assert_eq!(Policy::balanced().label(), "new z prop 2");
        assert_eq!(Policy::extent_based().label(), "fill z");
        let p = Policy::new(Style::Fill { extent_blocks: 8 }, Limit::Fits, Alloc::Constant { k: 0 });
        assert_eq!(p.label(), "fill z e=8");
    }

    #[test]
    fn parse_round_trips_labels() {
        let mut policies = Policy::style_comparison_set();
        policies.extend([
            Policy::balanced(),
            Policy::query_optimized(),
            Policy::new(Style::New, Limit::Fits, Alloc::Block { k: 2 }),
            Policy::new(Style::New, Limit::Fits, Alloc::Constant { k: 700 }),
            Policy::new(Style::Fill { extent_blocks: 8 }, Limit::Fits, Alloc::Constant { k: 0 }),
        ]);
        for p in policies {
            let parsed: Policy = p.label().parse().expect("parse own label");
            assert_eq!(parsed, p, "label {:?}", p.label());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Policy>().is_err());
        assert!("new".parse::<Policy>().is_err());
        assert!("new q".parse::<Policy>().is_err());
        assert!("sideways z".parse::<Policy>().is_err());
        assert!("new z prop".parse::<Policy>().is_err());
        assert!("new z prop abc".parse::<Policy>().is_err());
        assert!("new z bogus 3".parse::<Policy>().is_err());
        assert!("fill z e=x".parse::<Policy>().is_err());
    }

    #[test]
    fn comparison_set_has_six_policies() {
        let set = Policy::style_comparison_set();
        assert_eq!(set.len(), 6);
        let labels: Vec<String> = set.iter().map(Policy::label).collect();
        assert!(labels.contains(&"new 0".to_string()));
        assert!(labels.contains(&"whole z".to_string()));
    }
}
