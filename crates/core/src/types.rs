//! Core identifier and error types.

use std::fmt;

/// A word identifier. The paper converts all words to unique integers
/// before the index sees them (§4.2); interning from strings happens in the
//  IR layer.
/// Word 0 is reserved (it is the end-of-batch marker in trace files).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct WordId(pub u64);

impl fmt::Display for WordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A document identifier. "We assume that new documents are numbered with
/// identifiers in increasing order" (§3) — every append to an inverted list
/// carries doc ids greater than those already present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct DocId(pub u32);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Result alias for index operations.
pub type Result<T> = std::result::Result<T, IndexError>;

/// Errors raised by the dual-structure index.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying disk failure.
    Disk(invidx_disk::DiskError),
    /// Postings must be appended in increasing document order.
    OutOfOrderAppend {
        /// The word being appended to.
        word: WordId,
        /// Largest document already present.
        have: DocId,
        /// Offending new document.
        new: DocId,
    },
    /// Documents must be added to a batch in increasing id order.
    OutOfOrderDocument {
        /// Largest document id already added.
        have: DocId,
        /// Offending new document.
        new: DocId,
    },
    /// On-disk bytes failed validation when loaded.
    Corruption(String),
    /// A configuration that cannot work (e.g. zero buckets).
    InvalidConfig(String),
    /// An existing on-disk index was written with a different postings
    /// codec than the caller requested. Re-encoding in place would be
    /// silent corruption; rebuild the index to change codecs.
    CodecMismatch {
        /// Codec tag recorded in the on-disk superblock.
        on_disk: crate::codec::PostingsCodec,
        /// Codec the caller's configuration asked for.
        requested: crate::codec::PostingsCodec,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disk(e) => write!(f, "disk error: {e}"),
            Self::OutOfOrderAppend { word, have, new } => write!(
                f,
                "out-of-order append to {word}: have up to {have}, got {new}"
            ),
            Self::OutOfOrderDocument { have, new } => write!(
                f,
                "out-of-order document: have up to {have}, got {new}"
            ),
            Self::Corruption(msg) => write!(f, "index corruption: {msg}"),
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::CodecMismatch { on_disk, requested } => write!(
                f,
                "postings codec mismatch: on-disk index uses {on_disk}, caller requested {requested}"
            ),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<invidx_disk::DiskError> for IndexError {
    fn from(e: invidx_disk::DiskError) -> Self {
        Self::Disk(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(WordId(42).to_string(), "w42");
        assert_eq!(DocId(7).to_string(), "d7");
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = IndexError::OutOfOrderAppend { word: WordId(1), have: DocId(5), new: DocId(3) };
        assert!(e.to_string().contains("out-of-order"));
        assert!(e.source().is_none());
        let e = IndexError::OutOfOrderDocument { have: DocId(5), new: DocId(3) };
        assert!(e.to_string().contains("out-of-order document"));
        assert!(!e.to_string().contains('w'), "no bogus word in document-order errors");
        let d: IndexError = invidx_disk::DiskError::EmptyAccess.into();
        assert!(d.source().is_some());
        let e = IndexError::CodecMismatch {
            on_disk: crate::codec::PostingsCodec::BitPacked,
            requested: crate::codec::PostingsCodec::Plain,
        };
        assert!(e.to_string().contains("bitpacked"));
        assert!(e.to_string().contains("plain"));
    }

    #[test]
    fn ordering_matches_numeric() {
        assert!(DocId(3) < DocId(10));
        assert!(WordId(3) < WordId(10));
    }
}
