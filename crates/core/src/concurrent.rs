//! Thread-safe index wrapper.
//!
//! The paper motivates in-place updates with "today's world of 7 days a
//! week, 24 hours a day continuous operation" (§1): the index must answer
//! queries while batches are applied. [`SharedIndex`] provides that with a
//! reader-writer lock — queries take the read path concurrently; a batch
//! flush takes the write path. The paper also notes the arriving batch "can
//! be searched simultaneously with the larger index"; queries here see the
//! in-memory batch merged in (via [`crate::index::DualIndex::postings`]).
//!
//! Queries genuinely run under the **read** lock: `DualIndex::postings`
//! takes `&self` — device reads go through the array's shared-access
//! interface, and the only mutation on the path (appending to the I/O
//! trace) sits behind interior mutability (a `parking_lot::Mutex` on the
//! trace sink). Concurrent readers therefore proceed in parallel,
//! contending only on the short trace push, and serialize against writers
//! solely at the reader-writer lock.

use crate::index::{BatchReport, DualIndex, SweepReport};
use crate::postings::PostingList;
use crate::types::{DocId, Result, WordId};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone batch-epoch counter.
///
/// The serving layer's snapshot model hangs off this number: the epoch
/// advances exactly when the visible state of the index changes (a batch
/// flush, a sweep — anything that lands under the write lock), so any
/// result computed under the read lock is fully described by the epoch it
/// was computed at. Caches key their invalidation on it: an entry recorded
/// at epoch `e` is valid while the counter still reads `e`.
#[derive(Debug, Default)]
pub struct EpochCounter(AtomicU64);

impl EpochCounter {
    /// A counter starting at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter starting at an arbitrary epoch — used when the epoch is
    /// anchored to persistent state (a durable store's committed batch
    /// count), so epochs stay comparable across restarts and replicas.
    pub fn starting_at(epoch: u64) -> Self {
        Self(AtomicU64::new(epoch))
    }

    /// The current epoch.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advance to the next epoch, returning the new value. Called with the
    /// writer lock held, after a mutation becomes visible to readers.
    pub fn bump(&self) -> u64 {
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// A cloneable, thread-safe handle to a [`DualIndex`].
#[derive(Clone)]
pub struct SharedIndex {
    inner: Arc<RwLock<DualIndex>>,
    epoch: Arc<EpochCounter>,
}

impl SharedIndex {
    /// Wrap an index.
    pub fn new(index: DualIndex) -> Self {
        Self { inner: Arc::new(RwLock::new(index)), epoch: Arc::new(EpochCounter::new()) }
    }

    /// The current batch epoch: bumped by every visible mutation
    /// ([`Self::insert_document`], [`Self::flush_batch`], [`Self::sweep`],
    /// [`Self::with_write`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Add a document to the current batch and advance the epoch.
    ///
    /// Per the paper, the arriving batch "can be searched simultaneously
    /// with the larger index": an unflushed document is visible to queries
    /// the moment this returns, so any result cached under an earlier
    /// epoch is already stale. The bump happens while the write lock is
    /// still held, so no reader can observe the new document under the old
    /// epoch.
    pub fn insert_document<I>(&self, doc: DocId, words: I) -> Result<()>
    where
        I: IntoIterator<Item = WordId>,
    {
        let mut guard = self.inner.write();
        guard.insert_document(doc, words)?;
        self.epoch.bump();
        Ok(())
    }

    /// Add a whole batch of documents in one write-lock hold, inverting
    /// them in parallel on `threads` workers (see
    /// [`DualIndex::insert_documents`]). One epoch bump covers the batch.
    pub fn insert_documents(&self, docs: Vec<(DocId, Vec<WordId>)>, threads: usize) -> Result<()> {
        let mut guard = self.inner.write();
        guard.insert_documents(docs, threads)?;
        self.epoch.bump();
        Ok(())
    }

    /// Flush the current batch to disk and advance the epoch.
    pub fn flush_batch(&self) -> Result<BatchReport> {
        let mut guard = self.inner.write();
        let report = guard.flush_batch()?;
        self.epoch.bump();
        Ok(report)
    }

    /// Query a word's postings (in-memory batch included, deletions
    /// filtered). Runs under the read lock: concurrent queries do not
    /// serialize on each other.
    pub fn postings(&self, word: WordId) -> Result<PostingList> {
        self.inner.read().postings(word)
    }

    /// Document frequency from metadata only — no device I/O, so this
    /// genuinely runs under the read lock, concurrently with other readers.
    pub fn doc_frequency(&self, word: WordId) -> u64 {
        self.inner.read().doc_frequency(word)
    }

    /// Logically delete a document. Bumps the epoch: the deletion filter
    /// applies to queries immediately, so cached results are stale at once.
    pub fn delete_document(&self, doc: DocId) {
        let mut guard = self.inner.write();
        guard.delete_document(doc);
        self.epoch.bump();
    }

    /// Run the deletion sweep and advance the epoch.
    pub fn sweep(&self) -> Result<SweepReport> {
        let mut guard = self.inner.write();
        let report = guard.sweep()?;
        self.epoch.bump();
        Ok(report)
    }

    /// Block-cache counters, if the index was configured with a cache.
    /// Runs under the read lock — the cache's own counters are atomic, but
    /// sampling under the lock keeps the snapshot coherent with an epoch.
    pub fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        self.inner.read().cache_stats()
    }

    /// Run a closure with shared (read) access to the index.
    pub fn with_read<R>(&self, f: impl FnOnce(&DualIndex) -> R) -> R {
        f(&self.inner.read())
    }

    /// Run a closure with a consistent `(epoch, index)` snapshot under the
    /// read lock: the epoch cannot advance while the closure runs, so the
    /// pair is coherent — the result the closure computes is exactly the
    /// state named by that epoch.
    pub fn with_snapshot<R>(&self, f: impl FnOnce(u64, &DualIndex) -> R) -> R {
        let guard = self.inner.read();
        f(self.epoch.get(), &guard)
    }

    /// Run a closure with exclusive access to the index, then advance the
    /// epoch (the closure is assumed to have changed visible state).
    pub fn with_write<R>(&self, f: impl FnOnce(&mut DualIndex) -> R) -> R {
        let mut guard = self.inner.write();
        let r = f(&mut guard);
        self.epoch.bump();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use invidx_disk::sparse_array;
    use std::thread;

    fn shared() -> SharedIndex {
        let array = sparse_array(2, 50_000, 256);
        SharedIndex::new(DualIndex::create(array, IndexConfig::small()).unwrap())
    }

    #[test]
    fn queries_during_updates() {
        let index = shared();
        // Preload one batch so there is stored data to read.
        for d in 1..=50u32 {
            index.insert_document(DocId(d), (1..=20).map(WordId)).unwrap();
        }
        index.flush_batch().unwrap();

        let writer = {
            let index = index.clone();
            thread::spawn(move || {
                for d in 51..=150u32 {
                    index.insert_document(DocId(d), (1..=20).map(WordId)).unwrap();
                    if d % 25 == 0 {
                        index.flush_batch().unwrap();
                    }
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let index = index.clone();
                thread::spawn(move || {
                    let mut total = 0usize;
                    for _ in 0..200 {
                        for w in 1..=20u64 {
                            total += index.postings(WordId(w)).unwrap().len();
                        }
                    }
                    total
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        index.flush_batch().unwrap();
        assert_eq!(index.postings(WordId(1)).unwrap().len(), 150);
    }

    #[test]
    fn epoch_advances_with_visible_mutations() {
        let index = shared();
        assert_eq!(index.epoch(), 0);
        // An insert is immediately queryable (the in-memory batch merges
        // into query results), so it must advance the epoch too.
        index.insert_document(DocId(1), [WordId(1)]).unwrap();
        assert_eq!(index.epoch(), 1);
        index.flush_batch().unwrap();
        assert_eq!(index.epoch(), 2);
        index.delete_document(DocId(1));
        assert_eq!(index.epoch(), 3);
        index.sweep().unwrap();
        assert_eq!(index.epoch(), 4);
        index
            .with_write(|ix| {
                ix.insert_document(DocId(2), [WordId(1)]).and_then(|_| ix.flush_batch())
            })
            .unwrap();
        assert_eq!(index.epoch(), 5);
    }

    #[test]
    fn direct_insert_cannot_serve_stale_cache_hits() {
        // Model of the serving layer's epoch-keyed result cache: an entry
        // recorded at epoch `e` may be served while `epoch()` still reads
        // `e`. A direct insert makes the new document queryable at once,
        // so the cached pair must become unusable immediately.
        let index = shared();
        let (cached_epoch, cached) =
            index.with_snapshot(|e, ix| (e, ix.postings(WordId(9)).unwrap()));
        assert!(cached.is_empty());
        index.insert_document(DocId(1), [WordId(9)]).unwrap();
        // The cache's validity check fails: the epoch moved past the entry.
        assert_ne!(index.epoch(), cached_epoch);
        // And rightly so — the fresh answer differs from the cached one.
        assert_eq!(index.postings(WordId(9)).unwrap().len(), 1);
    }

    #[test]
    fn snapshot_pairs_epoch_with_state() {
        let index = shared();
        index.insert_document(DocId(1), [WordId(7)]).unwrap();
        index.flush_batch().unwrap();
        let (epoch, len) =
            index.with_snapshot(|e, ix| (e, ix.postings(WordId(7)).unwrap().len()));
        assert_eq!((epoch, len), (2, 1));
    }

    #[test]
    fn doc_frequency_under_read_lock() {
        let index = shared();
        index.insert_document(DocId(1), [WordId(5)]).unwrap();
        assert_eq!(index.doc_frequency(WordId(5)), 1);
        index.with_read(|ix| assert_eq!(ix.batches(), 0));
    }

    #[test]
    fn postings_run_under_the_read_lock() {
        let index = shared();
        for d in 1..=60u32 {
            index.insert_document(DocId(d), (1..=10).map(WordId)).unwrap();
        }
        index.flush_batch().unwrap();
        // Holding a read guard, a full postings query (device reads
        // included) still completes — with the old write-lock read path
        // this would deadlock.
        index.with_read(|ix| {
            assert_eq!(ix.postings(WordId(1)).unwrap().len(), 60);
        });
        // And two overlapping readers both holding read access at once.
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let index = index.clone();
                let barrier = barrier.clone();
                thread::spawn(move || {
                    index.with_read(|ix| {
                        barrier.wait(); // both threads inside the read lock
                        ix.postings(WordId(2)).unwrap().len()
                    })
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 60);
        }
    }
}
