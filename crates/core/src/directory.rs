//! The long-list directory (§2, §3).
//!
//! "Given a word w, we examine a directory which determines if the word has
//! a long inverted list. [...] Multiple chunks for an inverted list may be
//! allocated. The pointers to all chunks are recorded in the directory. The
//! directory entries for a word may point to chunks on multiple disks. The
//! directory resides in memory at all times. Periodically, the directory is
//! written to disk."
//!
//! The directory also owns the **RELEASE list**: "The RELEASE list is used
//! to delay the deallocation of long lists while they are copied" — chunks
//! replaced by the whole style stay readable until the end-of-batch flush
//! commits the new locations.

use crate::types::{IndexError, Result, WordId};
use std::collections::BTreeMap;

/// One contiguous on-disk chunk of a long list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// Owning disk.
    pub disk: u16,
    /// First block.
    pub start: u64,
    /// Allocated size in blocks (including reserved space).
    pub blocks: u64,
    /// Postings currently stored in the chunk.
    pub postings: u64,
    /// Encoded byte length of the chunk's coding-block stream, when the
    /// index uses a compressed postings codec. `0` for plain chunks —
    /// plain data has no stream framing, its extent is implied by
    /// `postings`. Allocation (`blocks`) and capacity accounting are
    /// codec-independent; `bytes` only shrinks how much of the chunk the
    /// read path must fetch.
    pub bytes: u64,
}

impl ChunkRef {
    /// Posting capacity given the `BlockPosting` parameter.
    pub fn capacity(&self, block_postings: u64) -> u64 {
        self.blocks * block_postings
    }

    /// The paper's `z` for this chunk: "the size (in postings) of the space
    /// remaining in the chunk which can accommodate new postings".
    pub fn free_postings(&self, block_postings: u64) -> u64 {
        self.capacity(block_postings).saturating_sub(self.postings)
    }
}

/// A word's long list: an ordered sequence of chunks. Postings are stored
/// in chunk order; only the last chunk may have free space used for
/// in-place growth.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LongEntry {
    /// The chunks, in list order.
    pub chunks: Vec<ChunkRef>,
}

impl LongEntry {
    /// Total postings across chunks (the paper's `x`).
    pub fn total_postings(&self) -> u64 {
        self.chunks.iter().map(|c| c.postings).sum()
    }

    /// Total allocated blocks.
    pub fn total_blocks(&self) -> u64 {
        self.chunks.iter().map(|c| c.blocks).sum()
    }

    /// Number of chunks = read operations needed to fetch the list — the
    /// paper's query-performance metric.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The paper's `z`: free space at the end of the *last* chunk.
    pub fn z(&self, block_postings: u64) -> u64 {
        self.chunks.last().map_or(0, |c| c.free_postings(block_postings))
    }
}

/// The in-memory directory over all long lists.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: BTreeMap<WordId, LongEntry>,
    /// Chunks awaiting deallocation at the next flush: `(disk, start,
    /// blocks)`.
    release: Vec<(u16, u64, u64)>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Does this word have a long list?
    pub fn contains(&self, word: WordId) -> bool {
        self.entries.contains_key(&word)
    }

    /// The entry for a word.
    pub fn get(&self, word: WordId) -> Option<&LongEntry> {
        self.entries.get(&word)
    }

    /// Mutable entry access.
    pub fn get_mut(&mut self, word: WordId) -> Option<&mut LongEntry> {
        self.entries.get_mut(&word)
    }

    /// Insert or replace a word's entry.
    pub fn insert(&mut self, word: WordId, entry: LongEntry) {
        self.entries.insert(word, entry);
    }

    /// Create-or-get a word's entry.
    pub fn entry_mut(&mut self, word: WordId) -> &mut LongEntry {
        self.entries.entry(word).or_default()
    }

    /// Remove a word entirely (deletion sweep support).
    pub fn remove(&mut self, word: WordId) -> Option<LongEntry> {
        self.entries.remove(&word)
    }

    /// Number of words with long lists.
    pub fn num_words(&self) -> usize {
        self.entries.len()
    }

    /// Iterate `(word, entry)` in word order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &LongEntry)> {
        self.entries.iter().map(|(&w, e)| (w, e))
    }

    /// Words in word order (snapshot).
    pub fn words(&self) -> Vec<WordId> {
        self.entries.keys().copied().collect()
    }

    /// Queue a chunk for deferred deallocation.
    pub fn push_release(&mut self, disk: u16, start: u64, blocks: u64) {
        self.release.push((disk, start, blocks));
    }

    /// Take the release list for freeing (at flush time).
    pub fn drain_release(&mut self) -> Vec<(u16, u64, u64)> {
        std::mem::take(&mut self.release)
    }

    /// Pending release entries (for inspection).
    pub fn release_len(&self) -> usize {
        self.release.len()
    }

    // ----- aggregate statistics (the paper's §5.2 metrics) -----

    /// Total chunks across all long lists.
    pub fn total_chunks(&self) -> u64 {
        self.entries.values().map(|e| e.num_chunks() as u64).sum()
    }

    /// Total blocks allocated to long lists.
    pub fn total_blocks(&self) -> u64 {
        self.entries.values().map(LongEntry::total_blocks).sum()
    }

    /// Total postings stored in long lists.
    pub fn total_postings(&self) -> u64 {
        self.entries.values().map(LongEntry::total_postings).sum()
    }

    /// Bytes the long-list chunks occupy as stored: the encoded stream
    /// length for compressed chunks, the fixed-width size (4 B/posting)
    /// for plain ones. Compare against `total_postings() * 4` (the raw
    /// size) for the on-disk compression ratio.
    pub fn total_stored_bytes(&self) -> u64 {
        self.entries
            .values()
            .flat_map(|e| e.chunks.iter())
            .map(|c| if c.bytes == 0 { c.postings * 4 } else { c.bytes })
            .sum()
    }

    /// "The long list utilization rate, namely the fraction of space
    /// allocated in long lists disk blocks that have postings." 1.0 when
    /// there are no long lists (the paper's Figure 9 spike at the start).
    pub fn utilization(&self, block_postings: u64) -> f64 {
        let blocks = self.total_blocks();
        if blocks == 0 {
            1.0
        } else {
            self.total_postings() as f64 / (blocks * block_postings) as f64
        }
    }

    /// "The average number of read operations needed to read a long word
    /// [...] the total number of chunks in the index divided by the number
    /// of words with long lists" (Figure 10). 0.0 with no long lists.
    pub fn avg_reads_per_long_list(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.total_chunks() as f64 / self.entries.len() as f64
        }
    }

    // ----- persistence -----

    /// Serialize: `u64 entry-count`, then per entry `u64 word | u32 chunk
    /// count`, then per chunk `u16 disk | u64 start | u64 blocks | u64
    /// postings | u64 bytes`.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.entries.len() * 48);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (w, e) in &self.entries {
            out.extend_from_slice(&w.0.to_le_bytes());
            out.extend_from_slice(&(e.chunks.len() as u32).to_le_bytes());
            for c in &e.chunks {
                out.extend_from_slice(&c.disk.to_le_bytes());
                out.extend_from_slice(&c.start.to_le_bytes());
                out.extend_from_slice(&c.blocks.to_le_bytes());
                out.extend_from_slice(&c.postings.to_le_bytes());
                out.extend_from_slice(&c.bytes.to_le_bytes());
            }
        }
        out
    }

    /// Deserialize bytes from [`Directory::serialize`] (possibly padded).
    pub fn deserialize(bytes: &[u8]) -> Result<Self> {
        let need = |ok: bool| {
            if ok {
                Ok(())
            } else {
                Err(IndexError::Corruption("directory bytes truncated".into()))
            }
        };
        need(bytes.len() >= 8)?;
        let count = u64::from_le_bytes(bytes[0..8].try_into().expect("8"));
        let mut pos = 8usize;
        let mut dir = Directory::new();
        for _ in 0..count {
            need(bytes.len() >= pos + 12)?;
            let word = WordId(u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8")));
            let nchunks =
                u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4")) as usize;
            pos += 12;
            let mut entry = LongEntry::default();
            for _ in 0..nchunks {
                need(bytes.len() >= pos + 34)?;
                let disk = u16::from_le_bytes(bytes[pos..pos + 2].try_into().expect("2"));
                let start = u64::from_le_bytes(bytes[pos + 2..pos + 10].try_into().expect("8"));
                let blocks = u64::from_le_bytes(bytes[pos + 10..pos + 18].try_into().expect("8"));
                let postings =
                    u64::from_le_bytes(bytes[pos + 18..pos + 26].try_into().expect("8"));
                let stream =
                    u64::from_le_bytes(bytes[pos + 26..pos + 34].try_into().expect("8"));
                pos += 34;
                if blocks == 0 {
                    return Err(IndexError::Corruption(format!(
                        "zero-block chunk for {word} in directory"
                    )));
                }
                entry.chunks.push(ChunkRef { disk, start, blocks, postings, bytes: stream });
            }
            if entry.chunks.is_empty() {
                return Err(IndexError::Corruption(format!("chunkless entry for {word}")));
            }
            dir.entries.insert(word, entry);
        }
        Ok(dir)
    }

    /// Serialized size in bytes.
    pub fn serialized_len(&self) -> usize {
        16.max(8 + self
            .entries
            .values()
            .map(|e| 12 + e.chunks.len() * 34)
            .sum::<usize>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(disk: u16, start: u64, blocks: u64, postings: u64) -> ChunkRef {
        ChunkRef { disk, start, blocks, postings, bytes: 0 }
    }

    #[test]
    fn chunk_capacity_and_z() {
        let c = chunk(0, 10, 3, 250);
        assert_eq!(c.capacity(100), 300);
        assert_eq!(c.free_postings(100), 50);
        let full = chunk(0, 10, 2, 200);
        assert_eq!(full.free_postings(100), 0);
    }

    #[test]
    fn entry_z_uses_last_chunk_only() {
        let e = LongEntry { chunks: vec![chunk(0, 0, 2, 100), chunk(1, 5, 2, 150)] };
        assert_eq!(e.z(100), 50);
        assert_eq!(e.total_postings(), 250);
        assert_eq!(e.total_blocks(), 4);
        assert_eq!(e.num_chunks(), 2);
        assert_eq!(LongEntry::default().z(100), 0);
    }

    #[test]
    fn utilization_and_avg_reads() {
        let mut d = Directory::new();
        assert_eq!(d.utilization(100), 1.0);
        assert_eq!(d.avg_reads_per_long_list(), 0.0);
        d.insert(WordId(1), LongEntry { chunks: vec![chunk(0, 0, 2, 100)] });
        d.insert(
            WordId(2),
            LongEntry { chunks: vec![chunk(0, 2, 1, 100), chunk(1, 0, 1, 50)] },
        );
        // postings 250 over 4 blocks * 100 = 400.
        assert!((d.utilization(100) - 0.625).abs() < 1e-12);
        assert!((d.avg_reads_per_long_list() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn release_list_drains() {
        let mut d = Directory::new();
        d.push_release(0, 5, 2);
        d.push_release(1, 9, 4);
        assert_eq!(d.release_len(), 2);
        let r = d.drain_release();
        assert_eq!(r, vec![(0, 5, 2), (1, 9, 4)]);
        assert_eq!(d.release_len(), 0);
    }

    #[test]
    fn serialize_round_trip() {
        let mut d = Directory::new();
        d.insert(WordId(7), LongEntry { chunks: vec![chunk(2, 40, 8, 777)] });
        d.insert(
            WordId(900),
            LongEntry {
                chunks: vec![chunk(0, 0, 1, 100), ChunkRef { bytes: 217, ..chunk(1, 3, 2, 120) }],
            },
        );
        let bytes = d.serialize();
        let restored = Directory::deserialize(&bytes).unwrap();
        assert_eq!(restored.num_words(), 2);
        assert_eq!(restored.get(WordId(7)).unwrap(), d.get(WordId(7)).unwrap());
        assert_eq!(restored.get(WordId(900)).unwrap(), d.get(WordId(900)).unwrap());
        // Padding tolerated.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0u8; 64]);
        assert_eq!(Directory::deserialize(&padded).unwrap().num_words(), 2);
    }

    #[test]
    fn deserialize_rejects_truncation_and_corruption() {
        let mut d = Directory::new();
        d.insert(WordId(7), LongEntry { chunks: vec![chunk(2, 40, 8, 777)] });
        let bytes = d.serialize();
        assert!(Directory::deserialize(&bytes[..bytes.len() - 4]).is_err());
        // Zero-block chunk is corruption.
        let mut bad = Directory::new();
        bad.insert(WordId(1), LongEntry { chunks: vec![chunk(0, 0, 0, 0)] });
        let bytes = bad.serialize();
        assert!(Directory::deserialize(&bytes).is_err());
    }

    #[test]
    fn serialized_len_matches() {
        let mut d = Directory::new();
        assert!(d.serialized_len() >= d.serialize().len());
        d.insert(WordId(1), LongEntry { chunks: vec![chunk(0, 0, 1, 1)] });
        d.insert(WordId(2), LongEntry { chunks: vec![chunk(0, 1, 1, 1), chunk(0, 2, 1, 1)] });
        assert_eq!(d.serialized_len(), d.serialize().len());
    }
}
