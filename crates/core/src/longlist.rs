//! Long-list storage: the paper's Figure 2 update algorithm.
//!
//! ```text
//! 1   if y <= Limit then
//! 2       UPDATE(M)                     update long list in-place
//! 3   else
//! 4       if Style = whole then
//! 5           b := READ(L)              read long list
//! 6           WRITE_RESERVED(M and b)   append and write with reserved space
//! 7       if Style = fill then
//! 8           WHILE (M not empty)
//! 9               WRITE(M, M)           write in-memory postings
//! 10      if Style = new then
//! 11          WRITE_RESERVED(M)         write with reserved space
//! ```
//!
//! where `y` is the in-memory list size, `Limit` is 0 or `z` (free space at
//! the end of the last chunk), and one consequence of lines 1–2 is that "an
//! in-memory inverted list is never split into two different chunks for an
//! in-place update".
//!
//! On-disk layout: "Each block of a long list contains postings for only
//! one word." A chunk of `B` blocks stores its postings packed
//! `BlockPosting` per block as fixed-width 4-byte doc ids; the directory
//! records how many postings each chunk holds, so no per-block header is
//! needed. `BlockPosting` "implicitly models the efficiency of the
//! compression algorithm applied to long lists" (§4.4).

use crate::cache::BlockCache;
use crate::codec::{self, PostingsCodec};
use crate::directory::{ChunkRef, Directory, LongEntry};
use crate::policy::{Limit, Policy, Style};
use crate::postings::{fixed, PostingList};
use crate::types::{DocId, IndexError, Result, WordId};
use invidx_disk::{DiskArray, IoOp, OpKind, Payload};

/// Configuration of the long-list store.
#[derive(Debug, Clone, Copy)]
pub struct LongConfig {
    /// Postings per block (Table 4's `BlockPosting`).
    pub block_postings: u64,
    /// The allocation policy in force.
    pub policy: Policy,
    /// How chunk bytes are encoded. Compressed codecs store coding-block
    /// streams; allocation stays in plain-equivalent units (see
    /// [`crate::codec`]), so only read sizes change.
    pub codec: PostingsCodec,
}

impl LongConfig {
    /// Validate against a block size: `block_postings` fixed-width postings
    /// must fit a block. Compressed codecs additionally require that a
    /// worst-case coding block (header + plain-escape payload) fits a
    /// block — the invariant that keeps compressed streams within the
    /// plain layout's allocation — and that a coding block's `u16` count
    /// field can hold `block_postings`.
    pub fn validate(&self, block_size: usize) -> Result<()> {
        if self.block_postings == 0 {
            return Err(IndexError::InvalidConfig("block_postings must be positive".into()));
        }
        if self.block_postings as usize * 4 > block_size {
            return Err(IndexError::InvalidConfig(format!(
                "{} postings of 4 bytes exceed the {}-byte block",
                self.block_postings, block_size
            )));
        }
        if self.codec.is_compressed() {
            if self.block_postings > u16::MAX as u64 {
                return Err(IndexError::InvalidConfig(format!(
                    "{} postings/block overflows a coding-block header (max {})",
                    self.block_postings,
                    u16::MAX
                )));
            }
            if codec::HEADER_LEN + self.block_postings as usize * 4 > block_size {
                return Err(IndexError::InvalidConfig(format!(
                    "codec {}: a worst-case coding block ({} header + {} postings of 4 bytes) \
                     exceeds the {}-byte block",
                    self.codec,
                    codec::HEADER_LEN,
                    self.block_postings,
                    block_size
                )));
            }
        }
        Ok(())
    }
}

/// Counters across the life of the store (the paper's Tables 5 & 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LongStats {
    /// In-place updates performed (`In-place` column).
    pub in_place_updates: u64,
    /// Appends to an already-long word — "the total possible number of
    /// in-place updates".
    pub possible_in_place: u64,
    /// First writes (bucket evictions becoming long lists).
    pub first_writes: u64,
    /// Whole-style full-list rewrites performed.
    pub whole_rewrites: u64,
    /// Logical read operations issued.
    pub read_ops: u64,
    /// Logical write operations issued.
    pub write_ops: u64,
}

impl LongStats {
    /// `Frac` column: fraction of possible in-place updates realized.
    pub fn in_place_fraction(&self) -> f64 {
        if self.possible_in_place == 0 {
            0.0
        } else {
            self.in_place_updates as f64 / self.possible_in_place as f64
        }
    }
}

/// The long-list half of the dual-structure index.
///
/// The read-op counter is atomic so that [`LongStore::read_list`] — the
/// query path — needs only `&self` and concurrent readers never serialize
/// on the store.
#[derive(Debug)]
pub struct LongStore {
    directory: Directory,
    config: LongConfig,
    stats: LongStats,
    read_ops: std::sync::atomic::AtomicU64,
}

impl LongStore {
    /// Create an empty store.
    pub fn new(config: LongConfig) -> Self {
        Self {
            directory: Directory::new(),
            config,
            stats: LongStats::default(),
            read_ops: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Rebuild from a recovered directory.
    pub fn from_directory(directory: Directory, config: LongConfig) -> Self {
        Self {
            directory,
            config,
            stats: LongStats::default(),
            read_ops: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LongConfig {
        &self.config
    }

    /// The directory (chunk metadata and statistics).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Mutable directory access (deletion sweep, flush bookkeeping).
    pub fn directory_mut(&mut self) -> &mut Directory {
        &mut self.directory
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LongStats {
        let mut s = self.stats;
        s.read_ops = self.read_ops.load(std::sync::atomic::Ordering::Relaxed);
        s
    }

    /// Does `word` have a long list?
    pub fn contains(&self, word: WordId) -> bool {
        self.directory.contains(word)
    }

    /// Append an in-memory list `postings` to `word`'s long list, creating
    /// it if absent — Figure 2, plus the §3 creation path ("Long lists are
    /// created initially by the overflow of a bucket").
    pub fn append(
        &mut self,
        array: &mut DiskArray,
        word: WordId,
        postings: &PostingList,
    ) -> Result<()> {
        if postings.is_empty() {
            return Ok(());
        }
        let bp = self.config.block_postings;
        let exists = self.directory.contains(word);
        if exists {
            self.stats.possible_in_place += 1;
        } else {
            self.stats.first_writes += 1;
        }
        let y = postings.len() as u64;
        // Line 1: `if y <= Limit` — Limit is the numeral 0 or the value z.
        let limit_value = match self.config.policy.limit {
            Limit::Never => 0,
            Limit::Fits => self.directory.get(word).map_or(0, |e| e.z(bp)),
        };
        if exists && y <= limit_value {
            return self.update_in_place(array, word, postings);
        }
        match self.config.policy.style {
            Style::Whole => self.append_whole(array, word, postings),
            Style::Fill { extent_blocks } => {
                self.append_fill(array, word, postings, extent_blocks)
            }
            Style::New => self.append_new(array, word, postings),
        }
    }

    /// `UPDATE(M)`: "reads the last block containing postings for word w,
    /// appends [the in-memory list] to it, and then writes the result back
    /// as an in-place update."
    fn update_in_place(
        &mut self,
        array: &mut DiskArray,
        word: WordId,
        postings: &PostingList,
    ) -> Result<()> {
        let bp = self.config.block_postings;
        let bs = array.block_size();
        let y = postings.len() as u64;
        let entry = self
            .directory
            .get(word)
            .ok_or_else(|| IndexError::Corruption(format!("in-place update of absent {word}")))?;
        let chunk = *entry
            .chunks
            .last()
            .ok_or_else(|| IndexError::Corruption(format!("empty chunk list for {word}")))?;
        let used = chunk.postings;
        debug_assert!(used + y <= chunk.capacity(bp), "in-place update overflows chunk");
        if self.config.codec.is_compressed() {
            return self.update_in_place_compressed(array, word, postings, chunk);
        }

        let start_block = used / bp;
        let partial = used % bp;
        let end_block = (used + y - 1) / bp;
        let nblocks = end_block - start_block + 1;
        let mut buf = vec![0u8; (nblocks as usize) * bs];

        if partial > 0 {
            // Read back the partially-filled last block.
            let op = IoOp {
                kind: OpKind::Read,
                disk: chunk.disk,
                start: chunk.start + start_block,
                blocks: 1,
                payload: Payload::LongList { word: word.0, postings: 0 },
            };
            array.read_op(op, &mut buf[..bs])?;
            self.read_ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // Opportunistic ordering check against the last stored posting.
            let existing = fixed::decode(&buf, partial as usize)?;
            if let (Some(&last), Some(&first)) = (existing.last(), postings.docs().first()) {
                if first <= last {
                    return Err(IndexError::OutOfOrderAppend { word, have: last, new: first });
                }
            }
        }
        // Lay the new postings into the buffer at their in-chunk positions.
        for (j, d) in postings.docs().iter().enumerate() {
            let global = used + j as u64;
            let block = global / bp - start_block;
            let off = (block as usize) * bs + ((global % bp) as usize) * 4;
            buf[off..off + 4].copy_from_slice(&d.0.to_le_bytes());
        }
        let op = IoOp {
            kind: OpKind::Write,
            disk: chunk.disk,
            start: chunk.start + start_block,
            blocks: nblocks,
            payload: Payload::LongList { word: word.0, postings: y },
        };
        array.write_op(op, &buf)?;
        self.stats.write_ops += 1;
        self.stats.in_place_updates += 1;
        invidx_obs::counter!(invidx_obs::names::LONG_IN_PLACE_UPDATES).inc();
        invidx_obs::counter!(invidx_obs::names::POSTINGS_BYTES_RAW).add(y * 4);
        invidx_obs::counter!(invidx_obs::names::POSTINGS_BYTES_STORED).add(y * 4);
        self.directory
            .get_mut(word)
            .and_then(|e| e.chunks.last_mut())
            .ok_or_else(|| {
                IndexError::Corruption(format!("directory entry for {word} vanished mid-update"))
            })?
            .postings += y;
        Ok(())
    }

    /// In-place update under a compressed codec: read the chunk's current
    /// coding-block stream, append, re-encode, and rewrite the stream's
    /// data blocks. Always one read + one write (a compressed tail block
    /// cannot be extended without re-encoding it, so the block-boundary
    /// read skip of the plain path does not apply). The capacity guarantee
    /// (`LongConfig::validate`) ensures the re-encoded stream still fits
    /// the chunk's allocation.
    fn update_in_place_compressed(
        &mut self,
        array: &mut DiskArray,
        word: WordId,
        postings: &PostingList,
        chunk: ChunkRef,
    ) -> Result<()> {
        let bp = self.config.block_postings;
        let bs = array.block_size();
        let y = postings.len() as u64;
        let old_blocks = chunk.bytes.div_ceil(bs as u64).max(1);
        let mut buf = vec![0u8; old_blocks as usize * bs];
        let op = IoOp {
            kind: OpKind::Read,
            disk: chunk.disk,
            start: chunk.start,
            blocks: old_blocks,
            payload: Payload::LongList { word: word.0, postings: 0 },
        };
        array.read_op(op, &mut buf)?;
        self.read_ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut docs = codec::decode_stream(&buf, chunk.postings)?;
        if let (Some(&last), Some(&first)) = (docs.last(), postings.docs().first()) {
            if first <= last {
                return Err(IndexError::OutOfOrderAppend { word, have: last, new: first });
            }
        }
        docs.extend_from_slice(postings.docs());
        let stream = codec::encode_stream(self.config.codec, &docs, bp);
        let stored = stream.len() as u64;
        let nblocks = stored.div_ceil(bs as u64);
        debug_assert!(nblocks <= chunk.blocks, "re-encoded stream overflows chunk");
        let mut out = vec![0u8; nblocks as usize * bs];
        out[..stream.len()].copy_from_slice(&stream);
        let op = IoOp {
            kind: OpKind::Write,
            disk: chunk.disk,
            start: chunk.start,
            blocks: nblocks,
            payload: Payload::LongList { word: word.0, postings: y },
        };
        array.write_op(op, &out)?;
        self.stats.write_ops += 1;
        self.stats.in_place_updates += 1;
        invidx_obs::counter!(invidx_obs::names::LONG_IN_PLACE_UPDATES).inc();
        invidx_obs::counter!(invidx_obs::names::POSTINGS_BYTES_RAW).add(docs.len() as u64 * 4);
        invidx_obs::counter!(invidx_obs::names::POSTINGS_BYTES_STORED).add(stored);
        let tail = self
            .directory
            .get_mut(word)
            .and_then(|e| e.chunks.last_mut())
            .ok_or_else(|| {
                IndexError::Corruption(format!("directory entry for {word} vanished mid-update"))
            })?;
        tail.postings += y;
        tail.bytes = stored;
        Ok(())
    }

    /// Pack `docs` into whole blocks starting at a block boundary. Returns
    /// the block-padded buffer and the encoded stream length in bytes (0
    /// under the plain codec, whose extent is implied by the posting
    /// count).
    fn encode_blocks(&self, docs: &[DocId], bs: usize) -> (Vec<u8>, u64) {
        let bp = self.config.block_postings as usize;
        if self.config.codec.is_compressed() {
            let stream = codec::encode_stream(self.config.codec, docs, bp as u64);
            let stored = stream.len() as u64;
            let nblocks = stream.len().div_ceil(bs).max(1);
            let mut buf = vec![0u8; nblocks * bs];
            buf[..stream.len()].copy_from_slice(&stream);
            return (buf, stored);
        }
        let nblocks = docs.len().div_ceil(bp).max(1);
        let mut buf = vec![0u8; nblocks * bs];
        for (chunk_idx, block_docs) in docs.chunks(bp).enumerate() {
            let off = chunk_idx * bs;
            fixed::encode_into(block_docs, &mut buf[off..off + block_docs.len() * 4]);
        }
        (buf, 0)
    }

    /// Write `docs` as a fresh chunk of `alloc_blocks` blocks on the next
    /// round-robin disk; the write op covers only the data blocks.
    fn write_fresh_chunk(
        &mut self,
        array: &mut DiskArray,
        word: WordId,
        docs: &[DocId],
        alloc_blocks: u64,
    ) -> Result<ChunkRef> {
        let bs = array.block_size();
        let disk = array.next_disk();
        let start = array.alloc_on(disk, alloc_blocks)?;
        let (buf, stored) = self.encode_blocks(docs, bs);
        let data_blocks = (buf.len() / bs) as u64;
        debug_assert!(data_blocks <= alloc_blocks);
        let op = IoOp {
            kind: OpKind::Write,
            disk,
            start,
            blocks: data_blocks,
            payload: Payload::LongList { word: word.0, postings: docs.len() as u64 },
        };
        array.write_op(op, &buf)?;
        self.stats.write_ops += 1;
        invidx_obs::counter!(invidx_obs::names::LONG_CHUNK_ALLOCS).inc();
        let raw = docs.len() as u64 * 4;
        invidx_obs::counter!(invidx_obs::names::POSTINGS_BYTES_RAW).add(raw);
        invidx_obs::counter!(invidx_obs::names::POSTINGS_BYTES_STORED)
            .add(if stored == 0 { raw } else { stored });
        Ok(ChunkRef { disk, start, blocks: alloc_blocks, postings: docs.len() as u64, bytes: stored })
    }

    /// Whole style: `b := READ(L); WRITE_RESERVED(M and b)`. The old chunks
    /// go on the RELEASE list — "used to delay the deallocation of long
    /// lists while they are copied" — and are freed at the next flush.
    fn append_whole(
        &mut self,
        array: &mut DiskArray,
        word: WordId,
        postings: &PostingList,
    ) -> Result<()> {
        let bp = self.config.block_postings;
        let old_chunks: Option<Vec<(u16, u64, u64)>> = self
            .directory
            .get(word)
            .map(|e| e.chunks.iter().map(|c| (c.disk, c.start, c.blocks)).collect());
        let mut combined = if let Some(old_chunks) = old_chunks {
            let old = self.read_list(array, None, word)?;
            for (disk, start, blocks) in old_chunks {
                self.directory.push_release(disk, start, blocks);
            }
            self.stats.whole_rewrites += 1;
            invidx_obs::counter!(invidx_obs::names::LONG_CHUNK_RELOCATIONS).inc();
            old
        } else {
            PostingList::new()
        };
        combined.append(word, postings)?;
        let x = combined.len() as u64;
        // "For the whole style x is typically the size of the entire long
        // list for a word."
        let alloc_blocks = self.config.policy.chunk_blocks(x, bp);
        let chunk = self.write_fresh_chunk(array, word, combined.docs(), alloc_blocks)?;
        self.directory.insert(word, LongEntry { chunks: vec![chunk] });
        Ok(())
    }

    /// New style: `WRITE_RESERVED(M)` — one fresh chunk sized by the
    /// allocation strategy, appended to the chunk list.
    fn append_new(
        &mut self,
        array: &mut DiskArray,
        word: WordId,
        postings: &PostingList,
    ) -> Result<()> {
        let bp = self.config.block_postings;
        // "For the new style x is typically the size of an in-memory list."
        let alloc_blocks = self.config.policy.chunk_blocks(postings.len() as u64, bp);
        let chunk = self.write_fresh_chunk(array, word, postings.docs(), alloc_blocks)?;
        self.directory.entry_mut(word).chunks.push(chunk);
        Ok(())
    }

    /// Fill style: `WHILE (M not empty) WRITE(M, M)` — carve the in-memory
    /// list into extents of exactly `extent_blocks` blocks, each on the
    /// next round-robin disk. "If a contains less than e blocks worth of
    /// postings, e blocks are still allocated."
    fn append_fill(
        &mut self,
        array: &mut DiskArray,
        word: WordId,
        postings: &PostingList,
        extent_blocks: u64,
    ) -> Result<()> {
        let bp = self.config.block_postings;
        let per_extent = (extent_blocks * bp) as usize;
        let mut rest = postings.clone();
        while !rest.is_empty() {
            let piece = rest.split_prefix(per_extent);
            let chunk = self.write_fresh_chunk(array, word, piece.docs(), extent_blocks)?;
            self.directory.entry_mut(word).chunks.push(chunk);
        }
        Ok(())
    }

    /// Read a word's complete long list: one read operation per chunk
    /// (covering its data blocks), concatenated in chunk order.
    ///
    /// With a [`BlockCache`], each chunk is first looked up in the cache:
    /// a chunk whose blocks are all resident costs no device read (no
    /// trace op, no `read_ops` increment — the paper's read-cost metrics
    /// count physical reads only); on a miss the read is charged exactly
    /// as in the uncached path and the bytes are inserted pinned. One pin
    /// scope spans the whole list, so a multi-chunk read cannot lose
    /// earlier chunks to eviction midway.
    ///
    /// `&self`: this is the query path; reads go through
    /// [`DiskArray::read_op`]'s shared-access interface and the op counter
    /// is atomic, so concurrent readers proceed without exclusive locks.
    pub fn read_list(
        &self,
        array: &DiskArray,
        cache: Option<&BlockCache>,
        word: WordId,
    ) -> Result<PostingList> {
        let bp = self.config.block_postings;
        let bs = array.block_size();
        let chunks: &[ChunkRef] = match self.directory.get(word) {
            Some(e) => &e.chunks,
            None => return Ok(PostingList::new()),
        };
        let mut guard = cache.map(|c| c.pin_scope());
        let mut docs: Vec<DocId> = Vec::new();
        let compressed = self.config.codec.is_compressed();
        for c in chunks {
            if c.postings == 0 {
                continue;
            }
            // Compressed chunks read only the stream's blocks — the device
            // saving compression buys; the allocation itself is unchanged.
            let data_blocks = if compressed {
                c.bytes.div_ceil(bs as u64).max(1)
            } else {
                c.postings.div_ceil(bp)
            };
            let mut buf = vec![0u8; data_blocks as usize * bs];
            let cached = {
                let _stage = invidx_obs::trace::stage("block_cache");
                invidx_obs::trace::add_blocks(data_blocks);
                let hit = match (cache, guard.as_mut()) {
                    (Some(cache), Some(g)) => {
                        cache.read_pinned(c.disk, c.start, data_blocks, &mut buf, g)
                    }
                    _ => false,
                };
                if hit {
                    invidx_obs::trace::add_bytes(buf.len() as u64);
                }
                hit
            };
            if !cached {
                let op = IoOp {
                    kind: OpKind::Read,
                    disk: c.disk,
                    start: c.start,
                    blocks: data_blocks,
                    payload: Payload::LongList { word: word.0, postings: c.postings },
                };
                array.read_op(op, &mut buf)?;
                self.read_ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                invidx_obs::counter!(invidx_obs::names::LONG_READ_OPS).inc();
                if let (Some(cache), Some(g)) = (cache, guard.as_mut()) {
                    cache.insert_pinned(c.disk, c.start, data_blocks, &buf, g);
                }
            }
            if compressed {
                docs.extend(codec::decode_stream(&buf, c.postings)?);
            } else {
                let mut remaining = c.postings as usize;
                for block in buf.chunks(bs) {
                    let take = remaining.min(bp as usize);
                    docs.extend(fixed::decode(block, take)?);
                    remaining -= take;
                    if remaining == 0 {
                        break;
                    }
                }
            }
        }
        if !docs.windows(2).all(|w| w[0] < w[1]) {
            return Err(IndexError::Corruption(format!("unsorted long list for {word}")));
        }
        Ok(PostingList::from_sorted(docs))
    }

    /// Free all chunks on the release list (done during flush, after the
    /// directory commit point).
    pub fn free_released(&mut self, array: &mut DiskArray) -> Result<()> {
        for (disk, start, blocks) in self.directory.drain_release() {
            array.free_on(disk, start, blocks)?;
        }
        Ok(())
    }

    /// Rewrite one word's list as a single contiguous chunk (with the
    /// policy's reserved space) — regardless of the update style in force.
    /// Old chunks go on the RELEASE list. Returns the chunk count before
    /// the rewrite; a no-op (returning 1) when the list is already one
    /// chunk with no more reserved slack than the policy would grant.
    pub fn compact_word(
        &mut self,
        array: &mut DiskArray,
        cache: Option<&BlockCache>,
        word: WordId,
    ) -> Result<usize> {
        let bp = self.config.block_postings;
        let Some(entry) = self.directory.get(word) else {
            return Ok(0);
        };
        let before = entry.num_chunks();
        let target_blocks = self.config.policy.chunk_blocks(entry.total_postings(), bp);
        if before == 1 && entry.total_blocks() <= target_blocks {
            return Ok(1);
        }
        let old: Vec<(u16, u64, u64)> =
            entry.chunks.iter().map(|c| (c.disk, c.start, c.blocks)).collect();
        let docs = self.read_list(array, cache, word)?;
        for (d, s, b) in old {
            self.directory.push_release(d, s, b);
        }
        invidx_obs::counter!(invidx_obs::names::LONG_CHUNK_RELOCATIONS).inc();
        let chunk = self.write_fresh_chunk(array, word, docs.docs(), target_blocks)?;
        self.directory.insert(word, LongEntry { chunks: vec![chunk] });
        Ok(before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Alloc;
    use invidx_disk::sparse_array;

    const BS: usize = 256;
    const BP: u64 = 10; // 10 postings per 256-byte block

    fn store(policy: Policy) -> (LongStore, DiskArray) {
        store_with(policy, PostingsCodec::Plain)
    }

    fn store_with(policy: Policy, codec: PostingsCodec) -> (LongStore, DiskArray) {
        let cfg = LongConfig { block_postings: BP, policy, codec };
        cfg.validate(BS).unwrap();
        (LongStore::new(cfg), sparse_array(3, 10_000, BS))
    }

    fn pl(range: std::ops::Range<u32>) -> PostingList {
        PostingList::from_sorted(range.map(DocId).collect())
    }

    fn all_policies() -> Vec<Policy> {
        let mut v = Policy::style_comparison_set();
        v.push(Policy::query_optimized());
        v.push(Policy::balanced());
        v.push(Policy::new(Style::New, Limit::Fits, Alloc::Block { k: 2 }));
        v.push(Policy::new(Style::Whole, Limit::Fits, Alloc::Constant { k: 25 }));
        v.push(Policy::new(Style::Fill { extent_blocks: 2 }, Limit::Fits, Alloc::Constant { k: 0 }));
        v
    }

    #[test]
    fn append_read_round_trip_under_every_policy() {
        for policy in all_policies() {
            let (mut s, mut a) = store(policy);
            let w = WordId(5);
            s.append(&mut a, w, &pl(0..7)).unwrap();
            s.append(&mut a, w, &pl(7..45)).unwrap();
            s.append(&mut a, w, &pl(45..48)).unwrap();
            s.append(&mut a, w, &pl(48..120)).unwrap();
            let got = s.read_list(&a, None, w).unwrap();
            assert_eq!(got, pl(0..120), "policy {policy}");
        }
    }

    #[test]
    fn multiple_words_are_independent() {
        for policy in all_policies() {
            let (mut s, mut a) = store(policy);
            for w in 0..20u64 {
                s.append(&mut a, WordId(w), &pl(0..(5 + w as u32))).unwrap();
            }
            for w in 0..20u64 {
                s.append(&mut a, WordId(w), &pl(100..(130 + w as u32))).unwrap();
            }
            for w in 0..20u64 {
                let got = s.read_list(&a, None, WordId(w)).unwrap();
                assert_eq!(got.len(), (5 + w as usize) + (30 + w as usize), "policy {policy}");
            }
        }
    }

    #[test]
    fn whole_style_keeps_single_chunk() {
        let (mut s, mut a) = store(Policy::new(Style::Whole, Limit::Never, Alloc::Constant { k: 0 }));
        let w = WordId(1);
        for i in 0..5u32 {
            s.append(&mut a, w, &pl(i * 10..(i + 1) * 10)).unwrap();
        }
        assert_eq!(s.directory().get(w).unwrap().num_chunks(), 1);
        // Old copies await release.
        assert!(s.directory().release_len() >= 4);
        s.free_released(&mut a).unwrap();
        assert_eq!(s.directory().release_len(), 0);
    }

    #[test]
    fn new_style_accumulates_chunks() {
        let (mut s, mut a) = store(Policy::update_optimized());
        let w = WordId(1);
        for i in 0..5u32 {
            s.append(&mut a, w, &pl(i * 10..(i + 1) * 10)).unwrap();
        }
        assert_eq!(s.directory().get(w).unwrap().num_chunks(), 5);
        assert_eq!(s.stats().in_place_updates, 0);
        assert_eq!(s.stats().possible_in_place, 4);
    }

    #[test]
    fn fill_style_bounds_chunk_size() {
        let e = 2u64;
        let (mut s, mut a) =
            store(Policy::new(Style::Fill { extent_blocks: e }, Limit::Never, Alloc::Constant { k: 0 }));
        let w = WordId(1);
        s.append(&mut a, w, &pl(0..55)).unwrap(); // 55 postings, 20/extent
        let entry = s.directory().get(w).unwrap();
        assert_eq!(entry.num_chunks(), 3);
        assert!(entry.chunks.iter().all(|c| c.blocks == e));
        assert_eq!(entry.chunks[0].postings, 20);
        assert_eq!(entry.chunks[2].postings, 15);
    }

    #[test]
    fn in_place_update_fills_block_tail() {
        // new z with k=0: chunk of 1 block holds 10; 7 used, 3 free -> a
        // 3-posting update goes in place.
        let (mut s, mut a) = store(Policy::new(Style::New, Limit::Fits, Alloc::Constant { k: 0 }));
        let w = WordId(1);
        s.append(&mut a, w, &pl(0..7)).unwrap();
        s.append(&mut a, w, &pl(7..10)).unwrap();
        let entry = s.directory().get(w).unwrap();
        assert_eq!(entry.num_chunks(), 1);
        assert_eq!(s.stats().in_place_updates, 1);
        assert_eq!(s.read_list(&a, None, w).unwrap(), pl(0..10));
    }

    #[test]
    fn in_place_never_splits_update() {
        // 7 used of 10: a 4-posting update does NOT fit and must go to a
        // new chunk whole — never split across the old tail and a new chunk.
        let (mut s, mut a) = store(Policy::new(Style::New, Limit::Fits, Alloc::Constant { k: 0 }));
        let w = WordId(1);
        s.append(&mut a, w, &pl(0..7)).unwrap();
        s.append(&mut a, w, &pl(7..11)).unwrap();
        let entry = s.directory().get(w).unwrap();
        assert_eq!(entry.num_chunks(), 2);
        assert_eq!(entry.chunks[0].postings, 7);
        assert_eq!(entry.chunks[1].postings, 4);
        assert_eq!(s.stats().in_place_updates, 0);
        assert_eq!(s.read_list(&a, None, w).unwrap(), pl(0..11));
    }

    #[test]
    fn reserved_space_enables_in_place() {
        // proportional k=2: first write of 10 postings reserves 20 -> 2
        // blocks; the next 10-posting update fits in place.
        let (mut s, mut a) = store(Policy::balanced());
        let w = WordId(1);
        s.append(&mut a, w, &pl(0..10)).unwrap();
        assert_eq!(s.directory().get(w).unwrap().chunks[0].blocks, 2);
        s.append(&mut a, w, &pl(10..20)).unwrap();
        assert_eq!(s.directory().get(w).unwrap().num_chunks(), 1);
        assert_eq!(s.stats().in_place_updates, 1);
        assert_eq!(s.stats().in_place_fraction(), 1.0);
        assert_eq!(s.read_list(&a, None, w).unwrap(), pl(0..20));
    }

    #[test]
    fn in_place_counts_one_read_one_write() {
        let (mut s, mut a) = store(Policy::balanced());
        let w = WordId(1);
        s.append(&mut a, w, &pl(0..10)).unwrap();
        let before = s.stats();
        a.start_trace();
        s.append(&mut a, w, &pl(10..15)).unwrap();
        let t = a.take_trace();
        // 10 used = block boundary -> no partial block, so the read is
        // skipped and only the write is issued.
        assert_eq!(t.ops.len(), 1);
        // Now 15 used: partial block -> read + write.
        a.start_trace();
        s.append(&mut a, w, &pl(15..18)).unwrap();
        let t = a.take_trace();
        assert_eq!(t.ops.len(), 2);
        assert_eq!(t.ops[0].kind, OpKind::Read);
        assert_eq!(t.ops[1].kind, OpKind::Write);
        assert_eq!(s.stats().in_place_updates, before.in_place_updates + 2);
    }

    #[test]
    fn out_of_order_append_detected_in_place() {
        let (mut s, mut a) = store(Policy::balanced());
        let w = WordId(1);
        s.append(&mut a, w, &pl(0..15)).unwrap();
        let bad = pl(3..5);
        assert!(matches!(
            s.append(&mut a, w, &bad),
            Err(IndexError::OutOfOrderAppend { .. })
        ));
    }

    #[test]
    fn whole_rewrite_reads_all_chunks() {
        let (mut s, mut a) = store(Policy::new(Style::Whole, Limit::Never, Alloc::Constant { k: 0 }));
        let w = WordId(1);
        s.append(&mut a, w, &pl(0..25)).unwrap();
        a.start_trace();
        s.append(&mut a, w, &pl(25..30)).unwrap();
        let t = a.take_trace();
        // One read of the single existing chunk + one write of the new one.
        assert_eq!(t.count(|op| op.kind == OpKind::Read), 1);
        assert_eq!(t.count(|op| op.kind == OpKind::Write), 1);
    }

    #[test]
    fn stats_track_possible_in_place() {
        let (mut s, mut a) = store(Policy::update_optimized());
        for i in 0..4u32 {
            s.append(&mut a, WordId(1), &pl(i * 10..(i + 1) * 10)).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.first_writes, 1);
        assert_eq!(st.possible_in_place, 3);
        assert_eq!(st.in_place_fraction(), 0.0);
    }

    #[test]
    fn empty_append_is_noop() {
        let (mut s, mut a) = store(Policy::balanced());
        s.append(&mut a, WordId(1), &PostingList::new()).unwrap();
        assert!(!s.contains(WordId(1)));
        assert_eq!(s.stats(), LongStats::default());
    }

    #[test]
    fn read_absent_word_is_empty() {
        let (s, a) = store(Policy::balanced());
        assert!(s.read_list(&a, None, WordId(404)).unwrap().is_empty());
    }

    #[test]
    fn config_validation() {
        let plain = |bp| LongConfig {
            block_postings: bp,
            policy: Policy::balanced(),
            codec: PostingsCodec::Plain,
        };
        assert!(plain(0).validate(256).is_err());
        assert!(plain(100).validate(256).is_err());
        assert!(plain(64).validate(256).is_ok());
        // Compressed codecs need header room for the worst-case coding
        // block: 64 postings fill a 256-byte block exactly, leaving none.
        let packed = |bp| LongConfig {
            block_postings: bp,
            policy: Policy::balanced(),
            codec: PostingsCodec::BitPacked,
        };
        assert!(packed(64).validate(256).is_err());
        assert!(packed(61).validate(256).is_ok());
        assert!(packed(100_000).validate(1 << 20).is_err(), "u16 count overflow");
    }

    #[test]
    fn compressed_round_trip_under_every_policy() {
        for codec in [PostingsCodec::VarintDelta, PostingsCodec::BitPacked] {
            for policy in all_policies() {
                let (mut s, mut a) = store_with(policy, codec);
                let w = WordId(5);
                s.append(&mut a, w, &pl(0..7)).unwrap();
                s.append(&mut a, w, &pl(7..45)).unwrap();
                s.append(&mut a, w, &pl(45..48)).unwrap();
                s.append(&mut a, w, &pl(48..120)).unwrap();
                let got = s.read_list(&a, None, w).unwrap();
                assert_eq!(got, pl(0..120), "{codec} under policy {policy}");
            }
        }
    }

    #[test]
    fn compressed_allocation_matches_plain() {
        // The capacity guarantee in action: chunk structure (blocks,
        // postings, chunk count) is identical to the plain layout under
        // every policy; only the stream bytes differ.
        for policy in all_policies() {
            let (mut p, mut pa) = store(policy);
            let (mut c, mut ca) = store_with(policy, PostingsCodec::BitPacked);
            for batch in [pl(0..7), pl(7..45), pl(45..48), pl(48..120), pl(120..500)] {
                p.append(&mut pa, WordId(5), &batch).unwrap();
                c.append(&mut ca, WordId(5), &batch).unwrap();
            }
            let pe = p.directory().get(WordId(5)).unwrap();
            let ce = c.directory().get(WordId(5)).unwrap();
            assert_eq!(pe.num_chunks(), ce.num_chunks(), "policy {policy}");
            for (pc, cc) in pe.chunks.iter().zip(&ce.chunks) {
                assert_eq!((pc.blocks, pc.postings), (cc.blocks, cc.postings));
                assert_eq!(pc.bytes, 0);
                assert!(cc.bytes > 0);
            }
        }
    }

    #[test]
    fn compressed_reads_fewer_blocks() {
        // 500 dense postings = 50 plain blocks; bit-packed gaps of 1 pack
        // to a fraction of that. The trace shows the read op covering
        // fewer device blocks.
        let policy = Policy::new(Style::Whole, Limit::Never, Alloc::Constant { k: 0 });
        let (mut p, mut pa) = store(policy);
        let (mut c, mut ca) = store_with(policy, PostingsCodec::BitPacked);
        p.append(&mut pa, WordId(1), &pl(0..500)).unwrap();
        c.append(&mut ca, WordId(1), &pl(0..500)).unwrap();
        let blocks_read = |s: &LongStore, a: &mut DiskArray| {
            a.start_trace();
            s.read_list(a, None, WordId(1)).unwrap();
            a.take_trace().ops.iter().map(|op| op.blocks).sum::<u64>()
        };
        let plain_blocks = blocks_read(&p, &mut pa);
        let packed_blocks = blocks_read(&c, &mut ca);
        assert_eq!(plain_blocks, 50);
        assert!(packed_blocks * 4 < plain_blocks, "{packed_blocks} vs {plain_blocks}");
    }

    #[test]
    fn compressed_in_place_update() {
        for codec in [PostingsCodec::VarintDelta, PostingsCodec::BitPacked] {
            let (mut s, mut a) = store_with(Policy::balanced(), codec);
            let w = WordId(1);
            s.append(&mut a, w, &pl(0..10)).unwrap();
            let bytes_before = s.directory().get(w).unwrap().chunks[0].bytes;
            a.start_trace();
            s.append(&mut a, w, &pl(10..15)).unwrap();
            let t = a.take_trace();
            // Compressed in-place is always read-stream + rewrite-stream.
            assert_eq!(t.ops.len(), 2);
            assert_eq!(t.ops[0].kind, OpKind::Read);
            assert_eq!(t.ops[1].kind, OpKind::Write);
            assert_eq!(s.stats().in_place_updates, 1);
            let chunk = &s.directory().get(w).unwrap().chunks[0];
            assert_eq!(chunk.postings, 15);
            assert!(chunk.bytes > bytes_before);
            assert_eq!(s.read_list(&a, None, w).unwrap(), pl(0..15));
            // Out-of-order appends are still detected through the codec.
            assert!(matches!(
                s.append(&mut a, w, &pl(3..5)),
                Err(IndexError::OutOfOrderAppend { .. })
            ));
        }
    }

    #[test]
    fn compressed_compact_word() {
        let (mut s, mut a) = store_with(Policy::update_optimized(), PostingsCodec::VarintDelta);
        let w = WordId(1);
        for i in 0..5u32 {
            s.append(&mut a, w, &pl(i * 30..(i + 1) * 30)).unwrap();
        }
        assert_eq!(s.directory().get(w).unwrap().num_chunks(), 5);
        assert_eq!(s.compact_word(&mut a, None, w).unwrap(), 5);
        let entry = s.directory().get(w).unwrap();
        assert_eq!(entry.num_chunks(), 1);
        assert!(entry.chunks[0].bytes > 0);
        s.free_released(&mut a).unwrap();
        assert_eq!(s.read_list(&a, None, w).unwrap(), pl(0..150));
    }

    #[test]
    fn utilization_reflects_reserved_space() {
        let (mut s, mut a) = store(Policy::new(Style::New, Limit::Fits, Alloc::Constant { k: 30 }));
        s.append(&mut a, WordId(1), &pl(0..10)).unwrap();
        // 10 postings in a 4-block (40-posting) chunk.
        assert!((s.directory().utilization(BP) - 0.25).abs() < 1e-12);
    }
}
