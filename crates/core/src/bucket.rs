//! Buckets: the short-list half of the dual-structure index (§2).
//!
//! "We place short inverted lists (of infrequently appearing words) in a
//! fixed size region of disk where the region contains postings for
//! multiple words. [...] every inverted list starts off as a short list;
//! when a bucket fills up with inverted lists, the longest inverted list
//! becomes a long list."
//!
//! Capacity accounting follows the paper exactly: "each posting is charged
//! 1 unit and each word is charged one unit too" — the cost of an inverted
//! list in a bucket is `1 + postings`.

use crate::postings::{fixed, PostingList};
use crate::types::{DocId, IndexError, Result, WordId};
use std::collections::BTreeMap;

/// One fixed-capacity bucket of short lists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bucket {
    lists: BTreeMap<WordId, PostingList>,
    postings: u64,
}

impl Bucket {
    /// An empty bucket.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct words stored.
    pub fn words(&self) -> u64 {
        self.lists.len() as u64
    }

    /// Number of postings stored.
    pub fn postings(&self) -> u64 {
        self.postings
    }

    /// Occupancy in units (1 per word + 1 per posting).
    pub fn units(&self) -> u64 {
        self.words() + self.postings
    }

    /// The short list for a word, if present.
    pub fn get(&self, word: WordId) -> Option<&PostingList> {
        self.lists.get(&word)
    }

    /// Iterate `(word, list)` pairs in word order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &PostingList)> {
        self.lists.iter().map(|(&w, l)| (w, l))
    }

    /// Insert or append an in-memory list for `word`. ("If a list for w
    /// already existed in the bucket, L is added to it; else a new short
    /// list is created in the bucket.")
    pub fn insert(&mut self, word: WordId, list: &PostingList) -> Result<()> {
        if list.is_empty() {
            return Ok(());
        }
        let entry = self.lists.entry(word).or_default();
        entry.append(word, list)?;
        self.postings += list.len() as u64;
        Ok(())
    }

    /// Remove and return the longest short list. "If there are multiple
    /// longest short lists, we choose one arbitrarily" — we take the
    /// lowest-numbered word among the longest, which is deterministic.
    pub fn remove_longest(&mut self) -> Option<(WordId, PostingList)> {
        let word = self
            .lists
            .iter()
            .max_by(|(wa, la), (wb, lb)| la.len().cmp(&lb.len()).then(wb.cmp(wa)))
            .map(|(&w, _)| w)?;
        let list = self.lists.remove(&word).expect("just found");
        self.postings -= list.len() as u64;
        Some((word, list))
    }

    /// Remove a specific word's list (deletion sweep support).
    pub fn remove(&mut self, word: WordId) -> Option<PostingList> {
        let list = self.lists.remove(&word)?;
        self.postings -= list.len() as u64;
        Some(list)
    }

    /// Replace a word's list wholesale (deletion sweep support); returns
    /// the old list if any.
    pub fn replace(&mut self, word: WordId, list: PostingList) -> Option<PostingList> {
        self.postings += list.len() as u64;
        let old = if list.is_empty() {
            self.lists.remove(&word)
        } else {
            self.lists.insert(word, list)
        };
        if let Some(o) = &old {
            self.postings -= o.len() as u64;
        }
        old
    }

    /// Serialize to bytes: `u32 word-count`, then per word
    /// `u64 word | u32 len | len * u32 doc ids`.
    pub fn serialize(&self) -> Vec<u8> {
        let bytes = 4 + self
            .lists
            .values()
            .map(|l| 12 + fixed::encoded_len(l.len()))
            .sum::<usize>();
        let mut out = Vec::with_capacity(bytes);
        out.extend_from_slice(&(self.lists.len() as u32).to_le_bytes());
        for (w, l) in &self.lists {
            out.extend_from_slice(&w.0.to_le_bytes());
            out.extend_from_slice(&(l.len() as u32).to_le_bytes());
            let off = out.len();
            out.resize(off + fixed::encoded_len(l.len()), 0);
            fixed::encode_into(l.docs(), &mut out[off..]);
        }
        out
    }

    /// Deserialize from bytes produced by [`Bucket::serialize`] (possibly
    /// followed by padding).
    pub fn deserialize(bytes: &[u8]) -> Result<Self> {
        let need = |ok: bool| {
            if ok {
                Ok(())
            } else {
                Err(IndexError::Corruption("bucket bytes truncated".into()))
            }
        };
        need(bytes.len() >= 4)?;
        let count = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
        let mut pos = 4usize;
        let mut bucket = Bucket::new();
        for _ in 0..count {
            need(bytes.len() >= pos + 12)?;
            let word = WordId(u64::from_le_bytes(
                bytes[pos..pos + 8].try_into().expect("8 bytes"),
            ));
            let len = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4 bytes"))
                as usize;
            pos += 12;
            need(bytes.len() >= pos + fixed::encoded_len(len))?;
            let docs = fixed::decode(&bytes[pos..], len)?;
            pos += fixed::encoded_len(len);
            let list = PostingList::from_sorted(validate_sorted(word, docs)?);
            bucket.postings += list.len() as u64;
            bucket.lists.insert(word, list);
        }
        Ok(bucket)
    }
}

fn validate_sorted(word: WordId, docs: Vec<DocId>) -> Result<Vec<DocId>> {
    if docs.windows(2).all(|w| w[0] < w[1]) {
        Ok(docs)
    } else {
        Err(IndexError::Corruption(format!("unsorted postings for {word} in bucket")))
    }
}

/// What happened during a [`BucketStore::insert`], for the Figure 1/7
/// statistics hooks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Which bucket received the list.
    pub bucket: usize,
    /// True if the word was not in the bucket before (a "new word" from the
    /// bucket's point of view).
    pub was_new: bool,
    /// Lists evicted (in order) to resolve overflow; each becomes a long
    /// list.
    pub evicted: Vec<(WordId, PostingList)>,
}

/// The full set of buckets with the paper's modular-arithmetic hash.
///
/// ```
/// use invidx_core::bucket::BucketStore;
/// use invidx_core::postings::PostingList;
/// use invidx_core::types::{DocId, WordId};
///
/// let mut store = BucketStore::new(4, 8).unwrap();
/// let small = PostingList::from_sorted(vec![DocId(1), DocId(2)]);
/// assert!(store.insert(WordId(1), &small).unwrap().evicted.is_empty());
/// // A big list overflows its bucket; the longest list is evicted and
/// // must be promoted to a long list by the caller.
/// let big = PostingList::from_sorted((1..=9).map(DocId).collect());
/// let outcome = store.insert(WordId(5), &big).unwrap();
/// assert_eq!(outcome.evicted[0].0, WordId(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketStore {
    buckets: Vec<Bucket>,
    capacity_units: u64,
}

impl BucketStore {
    /// Create `n` empty buckets of `capacity_units` each.
    pub fn new(n: usize, capacity_units: u64) -> Result<Self> {
        if n == 0 {
            return Err(IndexError::InvalidConfig("bucket count must be positive".into()));
        }
        if capacity_units < 2 {
            return Err(IndexError::InvalidConfig(
                "bucket capacity must hold at least one word and one posting".into(),
            ));
        }
        Ok(Self { buckets: vec![Bucket::new(); n], capacity_units })
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Per-bucket capacity in units.
    pub fn capacity_units(&self) -> u64 {
        self.capacity_units
    }

    /// The paper's `h(w)`: "we use a modular arithmetic hash function".
    pub fn bucket_of(&self, word: WordId) -> usize {
        (word.0 % self.buckets.len() as u64) as usize
    }

    /// Access a bucket by index (statistics hooks).
    pub fn bucket(&self, idx: usize) -> &Bucket {
        &self.buckets[idx]
    }

    /// The short list for a word, if present.
    pub fn get(&self, word: WordId) -> Option<&PostingList> {
        self.buckets[self.bucket_of(word)].get(word)
    }

    /// Insert an in-memory list, resolving overflow by evicting longest
    /// lists. The returned outcome carries the evictions, which the caller
    /// must promote to long lists.
    pub fn insert(&mut self, word: WordId, list: &PostingList) -> Result<InsertOutcome> {
        let idx = self.bucket_of(word);
        let bucket = &mut self.buckets[idx];
        let was_new = bucket.get(word).is_none();
        bucket.insert(word, list)?;
        let mut evicted = Vec::new();
        while bucket.units() > self.capacity_units {
            match bucket.remove_longest() {
                Some(entry) => evicted.push(entry),
                None => break,
            }
        }
        Ok(InsertOutcome { bucket: idx, was_new, evicted })
    }

    /// Remove a word's short list (sweep support).
    pub fn remove(&mut self, word: WordId) -> Option<PostingList> {
        let idx = self.bucket_of(word);
        self.buckets[idx].remove(word)
    }

    /// Total units across all buckets.
    pub fn total_units(&self) -> u64 {
        self.buckets.iter().map(Bucket::units).sum()
    }

    /// Total postings across all buckets.
    pub fn total_postings(&self) -> u64 {
        self.buckets.iter().map(Bucket::postings).sum()
    }

    /// Total distinct words across all buckets.
    pub fn total_words(&self) -> u64 {
        self.buckets.iter().map(Bucket::words).sum()
    }

    /// Iterate all `(word, list)` pairs across buckets.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &PostingList)> {
        self.buckets.iter().flat_map(Bucket::iter)
    }

    /// Serialize bucket `idx` into a buffer of exactly `bytes` bytes
    /// (padded with zeros). Fails if the bucket does not fit.
    pub fn serialize_bucket(&self, idx: usize, bytes: usize) -> Result<Vec<u8>> {
        let mut data = self.buckets[idx].serialize();
        if data.len() > bytes {
            return Err(IndexError::InvalidConfig(format!(
                "bucket {idx} serializes to {} bytes, exceeding its {bytes}-byte region",
                data.len()
            )));
        }
        data.resize(bytes, 0);
        Ok(data)
    }

    /// Replace bucket `idx` from serialized bytes (recovery path).
    pub fn load_bucket(&mut self, idx: usize, bytes: &[u8]) -> Result<()> {
        self.buckets[idx] = Bucket::deserialize(bytes)?;
        Ok(())
    }

    /// Worst-case serialized size of a bucket at full capacity: every unit
    /// a word costs 12 bytes of header; every unit a posting costs 4.
    pub fn worst_case_bucket_bytes(&self) -> usize {
        4 + self.capacity_units as usize * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pl(ids: &[u32]) -> PostingList {
        PostingList::from_sorted(ids.iter().map(|&i| DocId(i)).collect())
    }

    #[test]
    fn unit_accounting() {
        let mut b = Bucket::new();
        b.insert(WordId(1), &pl(&[1, 2, 3])).unwrap();
        b.insert(WordId(2), &pl(&[1])).unwrap();
        // 2 words + 4 postings.
        assert_eq!(b.units(), 6);
        b.insert(WordId(1), &pl(&[9])).unwrap();
        assert_eq!(b.units(), 7);
        assert_eq!(b.words(), 2);
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut b = Bucket::new();
        b.insert(WordId(1), &PostingList::new()).unwrap();
        assert_eq!(b.units(), 0);
        assert!(b.get(WordId(1)).is_none());
    }

    #[test]
    fn remove_longest_is_deterministic() {
        let mut b = Bucket::new();
        b.insert(WordId(5), &pl(&[1, 2])).unwrap();
        b.insert(WordId(3), &pl(&[1, 2])).unwrap();
        b.insert(WordId(9), &pl(&[1])).unwrap();
        let (w, l) = b.remove_longest().unwrap();
        // Tie between words 3 and 5: lowest word wins.
        assert_eq!(w, WordId(3));
        assert_eq!(l.len(), 2);
        // 2 words + 3 postings remain.
        assert_eq!(b.units(), 5);
    }

    #[test]
    fn store_insert_overflow_evicts_longest() {
        let mut s = BucketStore::new(1, 10).unwrap();
        s.insert(WordId(1), &pl(&[1, 2, 3])).unwrap(); // units 4
        s.insert(WordId(2), &pl(&[1, 2])).unwrap(); // units 7
        let out = s.insert(WordId(3), &pl(&[1, 2, 3, 4])).unwrap(); // 12 > 10
        assert_eq!(out.evicted.len(), 1);
        // Word 3's list (4 postings) is the longest and is evicted — the
        // paper's Figure 1 "downward spike" where a freshly inserted long
        // in-memory list immediately overflows out.
        assert_eq!(out.evicted[0].0, WordId(3));
        assert!(s.get(WordId(3)).is_none());
        assert!(s.bucket(0).units() <= 10);
    }

    #[test]
    fn store_insert_appends_to_existing() {
        let mut s = BucketStore::new(4, 100).unwrap();
        s.insert(WordId(6), &pl(&[1])).unwrap();
        let out = s.insert(WordId(6), &pl(&[5, 7])).unwrap();
        assert!(!out.was_new);
        assert_eq!(s.get(WordId(6)).unwrap().docs().len(), 3);
    }

    #[test]
    fn one_eviction_always_suffices() {
        // Invariant: the evicted longest list is at least as large as the
        // list just inserted, so a single eviction always restores the
        // capacity bound (matching the paper's single-eviction narrative).
        let mut s = BucketStore::new(1, 8).unwrap();
        s.insert(WordId(1), &pl(&[1, 2])).unwrap();
        s.insert(WordId(2), &pl(&[1, 2])).unwrap();
        let out = s.insert(WordId(3), &pl(&[1, 2, 3, 4, 5])).unwrap();
        assert_eq!(out.evicted.len(), 1);
        assert!(s.bucket(0).units() <= 8);
        // Appending to an existing word and overflowing also needs one.
        let mut s = BucketStore::new(1, 8).unwrap();
        s.insert(WordId(1), &pl(&[1, 2, 3])).unwrap();
        s.insert(WordId(2), &pl(&[1, 2])).unwrap();
        let out = s.insert(WordId(1), &pl(&[4, 5, 6, 7, 8])).unwrap();
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(out.evicted[0].0, WordId(1));
        assert_eq!(out.evicted[0].1.len(), 8);
        assert!(s.bucket(0).units() <= 8);
    }

    #[test]
    fn modular_hash_spreads_words() {
        let s = BucketStore::new(7, 100).unwrap();
        assert_eq!(s.bucket_of(WordId(3)), 3);
        assert_eq!(s.bucket_of(WordId(10)), 3);
        assert_eq!(s.bucket_of(WordId(13)), 6);
    }

    #[test]
    fn serialize_round_trip() {
        let mut b = Bucket::new();
        b.insert(WordId(42), &pl(&[1, 5, 1000])).unwrap();
        b.insert(WordId(7), &pl(&[3])).unwrap();
        let bytes = b.serialize();
        let restored = Bucket::deserialize(&bytes).unwrap();
        assert_eq!(restored, b);
    }

    #[test]
    fn serialize_with_padding_round_trip() {
        let mut s = BucketStore::new(2, 50).unwrap();
        s.insert(WordId(0), &pl(&[1, 2])).unwrap();
        s.insert(WordId(1), &pl(&[4])).unwrap();
        let bytes = s.serialize_bucket(0, 512).unwrap();
        assert_eq!(bytes.len(), 512);
        let mut s2 = BucketStore::new(2, 50).unwrap();
        s2.load_bucket(0, &bytes).unwrap();
        assert_eq!(s2.bucket(0), s.bucket(0));
    }

    #[test]
    fn serialize_rejects_overflowing_region() {
        let mut s = BucketStore::new(1, 1000).unwrap();
        s.insert(WordId(0), &pl(&(1..100u32).collect::<Vec<_>>())).unwrap();
        assert!(s.serialize_bucket(0, 16).is_err());
    }

    #[test]
    fn deserialize_rejects_corruption() {
        assert!(Bucket::deserialize(&[1, 0, 0, 0]).is_err()); // claims 1 word, no data
        let mut b = Bucket::new();
        b.insert(WordId(1), &pl(&[1, 2])).unwrap();
        let mut bytes = b.serialize();
        // Corrupt the posting order: swap the two doc ids.
        let n = bytes.len();
        bytes.swap(n - 8, n - 4);
        bytes.swap(n - 7, n - 3);
        bytes.swap(n - 6, n - 2);
        bytes.swap(n - 5, n - 1);
        assert!(Bucket::deserialize(&bytes).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(BucketStore::new(0, 10).is_err());
        assert!(BucketStore::new(4, 1).is_err());
    }

    #[test]
    fn store_totals() {
        let mut s = BucketStore::new(3, 100).unwrap();
        s.insert(WordId(1), &pl(&[1, 2])).unwrap();
        s.insert(WordId(2), &pl(&[1])).unwrap();
        assert_eq!(s.total_words(), 2);
        assert_eq!(s.total_postings(), 3);
        assert_eq!(s.total_units(), 5);
        assert_eq!(s.iter().count(), 2);
    }
}
