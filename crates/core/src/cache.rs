//! Sharded block cache (buffer pool) between the read path and the disk
//! array.
//!
//! The paper charges every long-list query with one physical read per
//! chunk (§5.4's *average disk reads per long list*). Under the Zipf skew
//! the corpus reproduces, a small head of hot words absorbs most of those
//! reads — serving the same chunk bytes over and over between flushes.
//! [`BlockCache`] keeps those bytes memory-resident:
//!
//! * **Budget** — a fixed number of device blocks, split across N shards.
//! * **Sharding** — frames are keyed by `(disk, block)`; a Fibonacci hash
//!   picks the shard, so one hot list spreads across shards and readers
//!   contend only on short per-shard mutexes.
//! * **Eviction** — per-shard CLOCK: every hit re-arms a reference bit,
//!   the hand clears bits until it finds an unreferenced, unpinned frame.
//! * **Pinning** — a multi-chunk long-list read pins each chunk's frames
//!   via a [`PinGuard`] until the whole list is assembled, so chunk *k*'s
//!   insertion can never evict chunk *k−1* mid-read. An insert that finds
//!   only pinned frames is counted as a **bypass** and skipped — which is
//!   why a budget smaller than one long list still serves the list
//!   correctly (just without retaining it).
//! * **Invalidation** — the cache registers as the array's
//!   [`WriteObserver`]; every write that lands on a device drops exactly
//!   the frames it overwrote. Captured batches notify at
//!   `end_capture` — the commit point — so a snapshot reader at epoch E
//!   never observes bytes from batch E+1.
//!
//! Accounting rule: a **hit** means every block of the requested range was
//! resident — no `read_op` is issued, so the disk model and the I/O trace
//! are not charged. Any absent block makes the whole range a **miss**,
//! charged exactly as an uncached read. The paper's I/O numbers therefore
//! stay meaningful: they count real device reads, while hits/misses are
//! reported separately through `invidx-obs`.

use invidx_disk::WriteObserver;
use invidx_obs::names;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One resident device block.
struct Frame {
    key: (u16, u64),
    data: Arc<[u8]>,
    /// CLOCK reference bit; re-armed on every hit.
    referenced: bool,
    /// Active [`PinGuard`] holds; pinned frames are never evicted.
    pins: u32,
    /// Invalidated while pinned: already unmapped, slot freed at unpin.
    doomed: bool,
}

/// One shard: an index over a bounded slab of frames plus a CLOCK hand.
struct Shard {
    map: HashMap<(u16, u64), usize>,
    frames: Vec<Option<Frame>>,
    free: Vec<usize>,
    hand: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            frames: Vec::new(),
            free: Vec::new(),
            hand: 0,
            capacity,
        }
    }

    fn release(&mut self, idx: usize) {
        self.frames[idx] = None;
        self.free.push(idx);
    }

    /// Find a slot for a new frame: spare capacity first, then CLOCK.
    /// `None` means every frame is pinned — the caller bypasses.
    fn find_slot(&mut self) -> SlotOutcome {
        if let Some(idx) = self.free.pop() {
            return SlotOutcome::Free(idx);
        }
        if self.frames.len() < self.capacity {
            self.frames.push(None);
            return SlotOutcome::Free(self.frames.len() - 1);
        }
        if self.frames.is_empty() {
            return SlotOutcome::AllPinned;
        }
        // Two full sweeps: the first may only clear reference bits.
        for _ in 0..2 * self.frames.len() {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            match &mut self.frames[idx] {
                None => {
                    // Freed concurrently with the scan (doomed unpin).
                    self.free.retain(|&f| f != idx);
                    return SlotOutcome::Free(idx);
                }
                Some(f) if f.pins > 0 => {}
                Some(f) if f.referenced => f.referenced = false,
                Some(f) => {
                    let key = f.key;
                    self.map.remove(&key);
                    self.frames[idx] = None;
                    return SlotOutcome::Evicted(idx);
                }
            }
        }
        SlotOutcome::AllPinned
    }
}

enum SlotOutcome {
    Free(usize),
    Evicted(usize),
    AllPinned,
}

/// A snapshot of the cache's counters and gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Range lookups answered entirely from resident frames.
    pub hits: u64,
    /// Range lookups with at least one absent block (full device read).
    pub misses: u64,
    /// Frames evicted by CLOCK under budget pressure.
    pub evictions: u64,
    /// Inserts skipped because every candidate frame was pinned.
    pub bypasses: u64,
    /// Resident frames dropped by write-through invalidation.
    pub invalidations: u64,
    /// Blocks currently resident.
    pub resident_blocks: u64,
    /// Bytes currently resident (`resident_blocks * block_size`).
    pub resident_bytes: u64,
    /// Highest simultaneous pinned-frame count observed.
    pub pinned_high_water: u64,
    /// Configured budget in blocks.
    pub budget_blocks: u64,
}

impl CacheStats {
    /// Hits over lookups, `0.0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded, pinnable, write-through-invalidated block cache.
///
/// All methods take `&self`; internal state lives behind per-shard
/// mutexes, so concurrent readers (the serving layer's reader pool) probe
/// different shards without contention.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    block_size: usize,
    budget_blocks: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
    invalidations: AtomicU64,
    resident: AtomicU64,
    pinned: AtomicU64,
    pinned_high_water: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("budget_blocks", &self.budget_blocks)
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl BlockCache {
    /// A cache holding at most `budget_blocks` device blocks of
    /// `block_size` bytes, split over `shards` shards (clamped so every
    /// shard holds at least one block).
    pub fn new(budget_blocks: usize, shards: usize, block_size: usize) -> Self {
        assert!(budget_blocks > 0, "budget must be at least one block");
        assert!(block_size > 0, "block size must be positive");
        let shards = shards.clamp(1, budget_blocks);
        let base = budget_blocks / shards;
        let extra = budget_blocks % shards;
        let shards = (0..shards)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < extra))))
            .collect();
        Self {
            shards,
            block_size,
            budget_blocks,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            pinned: AtomicU64::new(0),
            pinned_high_water: AtomicU64::new(0),
        }
    }

    /// Device block size this cache was built for.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Configured budget in blocks.
    pub fn budget_blocks(&self) -> usize {
        self.budget_blocks
    }

    fn shard_of(&self, disk: u16, block: u64) -> usize {
        // Fibonacci hashing over the packed key — same multiplier as the
        // ingest word shards.
        let key = ((disk as u64) << 48) ^ block;
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.shards.len()
    }

    fn pin_one(&self) {
        let now = self.pinned.fetch_add(1, Ordering::Relaxed) + 1;
        let hw = self.pinned_high_water.fetch_max(now, Ordering::Relaxed).max(now);
        invidx_obs::gauge!(names::CACHE_PINNED_HIGH_WATER).set(hw as i64);
    }

    fn unpin_one(&self) {
        self.pinned.fetch_sub(1, Ordering::Relaxed);
    }

    fn resident_delta(&self, added: i64) {
        let now = if added >= 0 {
            self.resident.fetch_add(added as u64, Ordering::Relaxed) + added as u64
        } else {
            self.resident.fetch_sub((-added) as u64, Ordering::Relaxed) - (-added) as u64
        };
        invidx_obs::gauge!(names::CACHE_BYTES_RESIDENT)
            .set((now as usize * self.block_size) as i64);
    }

    /// Copy blocks `[start, start + blocks)` of `disk` into `buf` if — and
    /// only if — **every** one is resident; the touched frames stay pinned
    /// in `guard` until the guard drops. Returns `false` (and pins
    /// nothing) when any block is absent: the caller issues the full
    /// device read, exactly as it would without a cache.
    pub fn read_pinned(
        &self,
        disk: u16,
        start: u64,
        blocks: u64,
        buf: &mut [u8],
        guard: &mut PinGuard<'_>,
    ) -> bool {
        debug_assert_eq!(buf.len(), blocks as usize * self.block_size);
        debug_assert!(std::ptr::eq(guard.cache, self), "guard belongs to another cache");
        let mut copied: Vec<(u64, usize, usize, Arc<[u8]>)> =
            Vec::with_capacity(blocks as usize);
        for b in start..start + blocks {
            let shard_no = self.shard_of(disk, b);
            let mut shard = self.shards[shard_no].lock();
            let frame = shard.map.get(&(disk, b)).copied().and_then(|idx| {
                let f = shard.frames[idx].as_mut()?;
                f.referenced = true;
                f.pins += 1;
                Some((idx, Arc::clone(&f.data)))
            });
            drop(shard);
            match frame {
                Some((idx, data)) => {
                    self.pin_one();
                    copied.push((b, shard_no, idx, data));
                }
                None => {
                    for &(_, shard_no, idx, _) in &copied {
                        self.unpin(shard_no, idx);
                    }
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    invidx_obs::counter!(names::CACHE_MISSES).inc();
                    return false;
                }
            }
        }
        for (b, shard_no, idx, data) in copied {
            let off = (b - start) as usize * self.block_size;
            buf[off..off + self.block_size].copy_from_slice(&data);
            guard.pins.push((shard_no, idx));
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        invidx_obs::counter!(names::CACHE_HITS).inc();
        true
    }

    /// Insert the freshly-read bytes for `[start, start + blocks)` and pin
    /// them in `guard`. A block whose shard has only pinned frames is
    /// skipped (a *bypass*) — the read still succeeded, the bytes just are
    /// not retained.
    pub fn insert_pinned(
        &self,
        disk: u16,
        start: u64,
        blocks: u64,
        data: &[u8],
        guard: &mut PinGuard<'_>,
    ) {
        debug_assert_eq!(data.len(), blocks as usize * self.block_size);
        debug_assert!(std::ptr::eq(guard.cache, self), "guard belongs to another cache");
        for b in start..start + blocks {
            let off = (b - start) as usize * self.block_size;
            let bytes: Arc<[u8]> = Arc::from(&data[off..off + self.block_size]);
            let shard_no = self.shard_of(disk, b);
            let mut shard = self.shards[shard_no].lock();
            if let Some(&idx) = shard.map.get(&(disk, b)) {
                // Already resident (another reader raced us): refresh and
                // pin the existing frame.
                if let Some(f) = shard.frames[idx].as_mut() {
                    f.data = bytes;
                    f.referenced = true;
                    f.pins += 1;
                    drop(shard);
                    self.pin_one();
                    guard.pins.push((shard_no, idx));
                    continue;
                }
            }
            let slot = shard.find_slot();
            let (idx, evicted) = match slot {
                SlotOutcome::Free(idx) => (idx, false),
                SlotOutcome::Evicted(idx) => (idx, true),
                SlotOutcome::AllPinned => {
                    drop(shard);
                    self.bypasses.fetch_add(1, Ordering::Relaxed);
                    invidx_obs::counter!(names::CACHE_BYPASSES).inc();
                    continue;
                }
            };
            // New frames start unreferenced — only a subsequent hit arms
            // the bit. Arming at insert would let one sweep clear every
            // bit and evict in slot order, ignoring recency entirely.
            shard.frames[idx] = Some(Frame {
                key: (disk, b),
                data: bytes,
                referenced: false,
                pins: 1,
                doomed: false,
            });
            shard.map.insert((disk, b), idx);
            drop(shard);
            if evicted {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                invidx_obs::counter!(names::CACHE_EVICTIONS).inc();
            } else {
                self.resident_delta(1);
            }
            self.pin_one();
            guard.pins.push((shard_no, idx));
        }
    }

    /// Release one pin on slot `idx` of shard `shard_no`. Pinned slots are
    /// stable (eviction and release both skip them), so the identity
    /// recorded at pin time is still the same frame — even if its key was
    /// invalidated and re-inserted elsewhere in the meantime.
    fn unpin(&self, shard_no: usize, idx: usize) {
        let mut shard = self.shards[shard_no].lock();
        if let Some(f) = shard.frames[idx].as_mut() {
            debug_assert!(f.pins > 0, "unpin without pin");
            f.pins -= 1;
            if f.pins == 0 && f.doomed {
                shard.release(idx);
                drop(shard);
                self.resident_delta(-1);
                self.unpin_one();
                return;
            }
        }
        drop(shard);
        self.unpin_one();
    }

    /// Drop every resident copy of `[start, start + blocks)` on `disk`.
    /// This is the write-through hook: [`WriteObserver::wrote`] routes
    /// here, so device writes — sequential immediately, captured batches
    /// at their commit point — drop exactly the frames they overwrote.
    pub fn invalidate(&self, disk: u16, start: u64, blocks: u64) {
        for b in start..start + blocks {
            let mut shard = self.shards[self.shard_of(disk, b)].lock();
            if let Some(idx) = shard.map.remove(&(disk, b)) {
                let Some(f) = shard.frames[idx].as_mut() else { continue };
                if f.pins > 0 {
                    // A reader still holds this frame; the slot is
                    // reclaimed at its final unpin.
                    f.doomed = true;
                } else {
                    shard.release(idx);
                    drop(shard);
                    self.resident_delta(-1);
                }
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                invidx_obs::counter!(names::CACHE_INVALIDATIONS).inc();
            }
        }
    }

    /// Drop everything (recovery paths rebuild indexes from device bytes;
    /// any resident frame could be stale).
    pub fn clear(&self) {
        let mut dropped = 0i64;
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.clear();
            for idx in 0..s.frames.len() {
                if let Some(f) = &s.frames[idx] {
                    assert!(f.pins == 0, "clear with active pins");
                    s.release(idx);
                    dropped += 1;
                }
            }
        }
        self.resident_delta(-dropped);
    }

    /// Open a pin scope; frames touched through it stay resident until it
    /// drops.
    pub fn pin_scope(&self) -> PinGuard<'_> {
        PinGuard { cache: self, pins: Vec::new() }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        let resident = self.resident.load(Ordering::Relaxed);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            resident_blocks: resident,
            resident_bytes: resident * self.block_size as u64,
            pinned_high_water: self.pinned_high_water.load(Ordering::Relaxed),
            budget_blocks: self.budget_blocks as u64,
        }
    }
}

impl WriteObserver for BlockCache {
    fn wrote(&self, disk: u16, start: u64, blocks: u64) {
        self.invalidate(disk, start, blocks);
    }
}

/// Scope holding pins on behalf of one logical read; dropping it unpins
/// everything it touched.
pub struct PinGuard<'a> {
    cache: &'a BlockCache,
    /// `(shard, slot)` of every pinned frame — slot identity, not key,
    /// because a pinned frame's key can be invalidated and re-inserted.
    pins: Vec<(usize, usize)>,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        for &(shard_no, idx) in &self.pins {
            self.cache.unpin(shard_no, idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BS: usize = 64;

    fn block(fill: u8) -> Vec<u8> {
        vec![fill; BS]
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let cache = BlockCache::new(8, 2, BS);
        let mut buf = vec![0u8; BS];
        {
            let mut g = cache.pin_scope();
            assert!(!cache.read_pinned(0, 5, 1, &mut buf, &mut g));
            cache.insert_pinned(0, 5, 1, &block(7), &mut g);
        }
        let mut g = cache.pin_scope();
        assert!(cache.read_pinned(0, 5, 1, &mut buf, &mut g));
        assert_eq!(buf, block(7));
        drop(g);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.resident_blocks), (1, 1, 1));
        assert_eq!(s.resident_bytes, BS as u64);
    }

    #[test]
    fn partial_residency_is_a_full_miss() {
        let cache = BlockCache::new(8, 4, BS);
        {
            let mut g = cache.pin_scope();
            cache.insert_pinned(0, 10, 1, &block(1), &mut g);
        }
        let mut buf = vec![0u8; 2 * BS];
        let mut g = cache.pin_scope();
        // Block 11 absent: the 2-block range must miss as a whole.
        assert!(!cache.read_pinned(0, 10, 2, &mut buf, &mut g));
        drop(g);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().pinned_high_water, 1);
    }

    #[test]
    fn clock_evicts_unreferenced_first() {
        let cache = BlockCache::new(2, 1, BS);
        {
            let mut g = cache.pin_scope();
            cache.insert_pinned(0, 1, 1, &block(1), &mut g);
            cache.insert_pinned(0, 2, 1, &block(2), &mut g);
        }
        // Touch block 1 so its reference bit is armed; block 2's decays
        // on the first sweep.
        let mut buf = vec![0u8; BS];
        {
            let mut g = cache.pin_scope();
            assert!(cache.read_pinned(0, 1, 1, &mut buf, &mut g));
        }
        {
            let mut g = cache.pin_scope();
            cache.insert_pinned(0, 3, 1, &block(3), &mut g);
        }
        let mut g = cache.pin_scope();
        assert!(cache.read_pinned(0, 1, 1, &mut buf, &mut g), "re-armed frame survives");
        assert!(cache.read_pinned(0, 3, 1, &mut buf, &mut g), "new frame resident");
        drop(g);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().resident_blocks, 2);
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        let cache = BlockCache::new(2, 1, BS);
        let mut g = cache.pin_scope();
        cache.insert_pinned(0, 1, 1, &block(1), &mut g);
        cache.insert_pinned(0, 2, 1, &block(2), &mut g);
        // Shard full of pinned frames: the insert bypasses, nothing is
        // evicted, and the pinned bytes stay readable.
        cache.insert_pinned(0, 3, 1, &block(3), &mut g);
        let mut buf = vec![0u8; BS];
        assert!(cache.read_pinned(0, 1, 1, &mut buf, &mut g));
        assert_eq!(buf, block(1));
        drop(g);
        let s = cache.stats();
        assert_eq!(s.bypasses, 1);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.pinned_high_water, 3);
        // Unpinned now: the next insert may evict normally.
        let mut g = cache.pin_scope();
        cache.insert_pinned(0, 4, 1, &block(4), &mut g);
        drop(g);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidate_drops_exactly_the_written_range() {
        let cache = BlockCache::new(8, 3, BS);
        {
            let mut g = cache.pin_scope();
            for b in 0..4 {
                cache.insert_pinned(0, b, 1, &block(b as u8), &mut g);
            }
        }
        cache.invalidate(0, 1, 2);
        let mut buf = vec![0u8; BS];
        let mut g = cache.pin_scope();
        assert!(cache.read_pinned(0, 0, 1, &mut buf, &mut g));
        assert!(!cache.read_pinned(0, 1, 1, &mut buf, &mut g));
        assert!(!cache.read_pinned(0, 2, 1, &mut buf, &mut g));
        assert!(cache.read_pinned(0, 3, 1, &mut buf, &mut g));
        drop(g);
        let s = cache.stats();
        assert_eq!(s.invalidations, 2);
        assert_eq!(s.resident_blocks, 2);
    }

    #[test]
    fn invalidate_while_pinned_dooms_until_unpin() {
        let cache = BlockCache::new(4, 1, BS);
        let mut g = cache.pin_scope();
        cache.insert_pinned(0, 7, 1, &block(9), &mut g);
        cache.invalidate(0, 7, 1);
        // Unmapped immediately: a fresh lookup misses even while the old
        // reader still holds its pin.
        let mut buf = vec![0u8; BS];
        {
            let mut g2 = cache.pin_scope();
            assert!(!cache.read_pinned(0, 7, 1, &mut buf, &mut g2));
        }
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().resident_blocks, 1, "slot reclaimed only at unpin");
        drop(g);
        assert_eq!(cache.stats().resident_blocks, 0);
    }

    #[test]
    fn write_observer_routes_to_invalidate() {
        let cache = BlockCache::new(4, 2, BS);
        {
            let mut g = cache.pin_scope();
            cache.insert_pinned(1, 3, 1, &block(5), &mut g);
        }
        WriteObserver::wrote(&cache, 1, 3, 1);
        let mut buf = vec![0u8; BS];
        let mut g = cache.pin_scope();
        assert!(!cache.read_pinned(1, 3, 1, &mut buf, &mut g));
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = BlockCache::new(16, 4, BS);
        {
            let mut g = cache.pin_scope();
            for b in 0..10 {
                cache.insert_pinned(0, b, 1, &block(b as u8), &mut g);
            }
        }
        cache.clear();
        assert_eq!(cache.stats().resident_blocks, 0);
        let mut buf = vec![0u8; BS];
        let mut g = cache.pin_scope();
        for b in 0..10 {
            assert!(!cache.read_pinned(0, b, 1, &mut buf, &mut g));
        }
    }

    #[test]
    fn budget_splits_across_shards_with_remainder() {
        let cache = BlockCache::new(5, 3, BS);
        let caps: Vec<usize> = cache.shards.iter().map(|s| s.lock().capacity).collect();
        assert_eq!(caps.iter().sum::<usize>(), 5);
        assert!(caps.iter().all(|&c| c >= 1));
        // More shards than budget: clamped so every shard holds a block.
        let small = BlockCache::new(2, 8, BS);
        assert_eq!(small.shards.len(), 2);
    }
}
