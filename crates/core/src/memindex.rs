//! The in-memory inverted index that accumulates one batch.
//!
//! "We assume that when a new document arrives it is parsed and its words
//! are inserted into an in-memory inverted index. At some point the
//! in-memory inverted index must be written to disk. Collecting many
//! documents into an in-memory inverted index before writing the index to
//! disk amortizes the cost of storing a posting." (§2)

use crate::postings::PostingList;
use crate::types::{DocId, IndexError, Result, WordId};
use std::collections::BTreeMap;

/// The per-batch in-memory inverted index.
#[derive(Debug, Clone, Default)]
pub struct MemIndex {
    lists: BTreeMap<WordId, PostingList>,
    postings: u64,
    documents: u64,
    last_doc: Option<DocId>,
}

impl MemIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index one document: each distinct word gains one posting. Documents
    /// must arrive in increasing id order (§3's numbering assumption);
    /// duplicate words within the document are tolerated and deduplicated.
    pub fn add_document<I>(&mut self, doc: DocId, words: I) -> Result<()>
    where
        I: IntoIterator<Item = WordId>,
    {
        if let Some(last) = self.last_doc {
            if doc <= last {
                return Err(IndexError::OutOfOrderDocument { have: last, new: doc });
            }
        }
        let mut distinct: Vec<WordId> = words.into_iter().collect();
        distinct.sort_unstable();
        distinct.dedup();
        for w in distinct {
            if w == WordId(0) {
                return Err(IndexError::InvalidConfig("word id 0 is reserved".into()));
            }
            self.lists.entry(w).or_default().push(w, doc)?;
            self.postings += 1;
        }
        self.documents += 1;
        self.last_doc = Some(doc);
        Ok(())
    }

    /// Insert a pre-built in-memory list for a word (used by the pipeline
    /// replaying word-occurrence traces). The list must continue the
    /// word's existing in-memory list in document order.
    pub fn add_list(&mut self, word: WordId, list: &PostingList) -> Result<()> {
        if list.is_empty() {
            return Ok(());
        }
        self.lists.entry(word).or_default().append(word, list)?;
        self.postings += list.len() as u64;
        Ok(())
    }

    /// Assemble an index from pre-merged shard output (the parallel
    /// inversion path). The caller guarantees the lists are in document
    /// order and the counts match.
    pub(crate) fn from_parts(
        lists: BTreeMap<WordId, PostingList>,
        postings: u64,
        documents: u64,
        last_doc: Option<DocId>,
    ) -> Self {
        Self { lists, postings, documents, last_doc }
    }

    /// Merge another index whose documents all follow this one's. Per-word
    /// lists are appended (document-order checked per word); counts and the
    /// ordering floor carry over.
    pub fn absorb(&mut self, other: MemIndex) -> Result<()> {
        if let (Some(last), Some(first)) = (self.last_doc, other_first_doc(&other)) {
            if first <= last {
                return Err(IndexError::OutOfOrderDocument { have: last, new: first });
            }
        }
        for (w, list) in other.lists {
            self.lists.entry(w).or_default().append(w, &list)?;
        }
        self.postings += other.postings;
        self.documents += other.documents;
        self.last_doc = match (self.last_doc, other.last_doc) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        Ok(())
    }

    /// The in-memory list for a word, if any.
    pub fn get(&self, word: WordId) -> Option<&PostingList> {
        self.lists.get(&word)
    }

    /// Distinct words currently held.
    pub fn words(&self) -> usize {
        self.lists.len()
    }

    /// Total postings currently held.
    pub fn postings(&self) -> u64 {
        self.postings
    }

    /// Documents added since the last drain.
    pub fn documents(&self) -> u64 {
        self.documents
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The highest document id ever accepted (survives drains) — the
    /// ordering floor for future documents.
    pub fn last_doc(&self) -> Option<DocId> {
        self.last_doc
    }

    /// Set the ordering floor (crash-recovery support): future documents
    /// must have ids greater than `doc`.
    pub fn set_floor(&mut self, doc: DocId) {
        self.last_doc = Some(self.last_doc.map_or(doc, |d| d.max(doc)));
    }

    /// Take all lists (in word order), leaving the index empty but
    /// remembering the last document id so ordering is still enforced
    /// across batches.
    pub fn drain(&mut self) -> Vec<(WordId, PostingList)> {
        self.postings = 0;
        self.documents = 0;
        std::mem::take(&mut self.lists).into_iter().collect()
    }

    /// Iterate the buffered lists (word order) without draining — the
    /// write-ahead log records a batch's pairs before they are applied.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &PostingList)> {
        self.lists.iter().map(|(&w, l)| (w, l))
    }
}

/// Smallest document id present in an index's lists (None when empty).
fn other_first_doc(m: &MemIndex) -> Option<DocId> {
    m.lists.values().filter_map(|l| l.docs().first().copied()).min()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_build_sorted_lists() {
        let mut m = MemIndex::new();
        m.add_document(DocId(1), [WordId(5), WordId(2)]).unwrap();
        m.add_document(DocId(2), [WordId(2)]).unwrap();
        assert_eq!(m.get(WordId(2)).unwrap().docs(), &[DocId(1), DocId(2)]);
        assert_eq!(m.get(WordId(5)).unwrap().docs(), &[DocId(1)]);
        assert_eq!(m.postings(), 3);
        assert_eq!(m.documents(), 2);
    }

    #[test]
    fn duplicate_words_in_document_deduplicated() {
        let mut m = MemIndex::new();
        m.add_document(DocId(1), [WordId(7), WordId(7), WordId(7)]).unwrap();
        assert_eq!(m.postings(), 1);
    }

    #[test]
    fn document_order_enforced_across_drain() {
        let mut m = MemIndex::new();
        m.add_document(DocId(5), [WordId(1)]).unwrap();
        assert!(m.add_document(DocId(5), [WordId(2)]).is_err());
        assert!(m.add_document(DocId(4), [WordId(2)]).is_err());
        let drained = m.drain();
        assert_eq!(drained.len(), 1);
        assert!(m.is_empty());
        // Still enforced after drain.
        assert!(m.add_document(DocId(5), [WordId(1)]).is_err());
        m.add_document(DocId(6), [WordId(1)]).unwrap();
    }

    #[test]
    fn word_zero_reserved() {
        let mut m = MemIndex::new();
        assert!(m.add_document(DocId(1), [WordId(0)]).is_err());
    }

    #[test]
    fn drain_yields_word_order() {
        let mut m = MemIndex::new();
        m.add_document(DocId(1), [WordId(9), WordId(3), WordId(6)]).unwrap();
        let words: Vec<WordId> = m.drain().into_iter().map(|(w, _)| w).collect();
        assert_eq!(words, vec![WordId(3), WordId(6), WordId(9)]);
    }

    #[test]
    fn out_of_order_documents_use_dedicated_error() {
        let mut m = MemIndex::new();
        m.add_document(DocId(5), [WordId(1)]).unwrap();
        match m.add_document(DocId(3), [WordId(1)]) {
            Err(IndexError::OutOfOrderDocument { have, new }) => {
                assert_eq!(have, DocId(5));
                assert_eq!(new, DocId(3));
            }
            other => panic!("expected OutOfOrderDocument, got {other:?}"),
        }
    }

    #[test]
    fn absorb_merges_lists_and_counts() {
        let mut a = MemIndex::new();
        a.add_document(DocId(1), [WordId(2), WordId(5)]).unwrap();
        let mut b = MemIndex::new();
        b.add_document(DocId(2), [WordId(2), WordId(9)]).unwrap();
        a.absorb(b).unwrap();
        assert_eq!(a.get(WordId(2)).unwrap().docs(), &[DocId(1), DocId(2)]);
        assert_eq!(a.postings(), 4);
        assert_eq!(a.documents(), 2);
        assert_eq!(a.last_doc(), Some(DocId(2)));
        // Absorbing documents at or below the floor is rejected.
        let mut c = MemIndex::new();
        c.add_document(DocId(2), [WordId(1)]).unwrap();
        assert!(matches!(
            a.absorb(c),
            Err(IndexError::OutOfOrderDocument { have: DocId(2), new: DocId(2) })
        ));
    }

    #[test]
    fn add_list_appends() {
        let mut m = MemIndex::new();
        let a = PostingList::from_sorted(vec![DocId(1), DocId(2)]);
        let b = PostingList::from_sorted(vec![DocId(3)]);
        m.add_list(WordId(1), &a).unwrap();
        m.add_list(WordId(1), &b).unwrap();
        assert_eq!(m.get(WordId(1)).unwrap().len(), 3);
        let bad = PostingList::from_sorted(vec![DocId(2)]);
        assert!(m.add_list(WordId(1), &bad).is_err());
    }
}
