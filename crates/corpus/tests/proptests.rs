//! Property-based tests for the corpus substrate: lexer algebraic
//! properties, vocabulary injectivity, batch-format round trips, and Zipf
//! sampler range/monotonicity checks.

use invidx_corpus::batch::{batches_from_trace_text, batches_to_trace_text, BatchUpdate};
use invidx_corpus::lexer;
use invidx_corpus::vocab::word_string;
use invidx_corpus::zipf::{ZipfRejection, ZipfTable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tokens_are_lowercase_single_class_runs(text in ".{0,300}") {
        for tok in lexer::tokenize_document(&text) {
            prop_assert!(!tok.is_empty());
            let all_alpha = tok.bytes().all(|b| b.is_ascii_lowercase());
            let all_digit = tok.bytes().all(|b| b.is_ascii_digit());
            prop_assert!(all_alpha || all_digit, "mixed token {tok:?}");
        }
    }

    #[test]
    fn document_words_is_sorted_dedup_of_tokens(text in "[a-zA-Z0-9 .,\n]{0,300}") {
        let words = lexer::document_words(&text);
        let set: BTreeSet<String> = lexer::tokenize_document(&text).into_iter().collect();
        prop_assert_eq!(words, set.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn lexing_is_idempotent(text in ".{0,300}") {
        // Lexing the space-joined token stream yields the same tokens.
        let once = lexer::tokenize_document(&text);
        let joined = once.join(" ");
        let twice = lexer::tokenize_document(&joined);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn vocabulary_is_injective_on_sampled_ranks(ranks in prop::collection::btree_set(1u64..10_000_000, 2..60)) {
        let words: Vec<String> = ranks.iter().map(|&r| word_string(r)).collect();
        let unique: BTreeSet<&String> = words.iter().collect();
        prop_assert_eq!(unique.len(), words.len());
        // Every word survives the lexer as exactly one token.
        for w in &words {
            let toks: Vec<String> = lexer::tokenize_line(w).collect();
            prop_assert_eq!(toks, vec![w.clone()], "word {} split by lexer", w);
        }
    }

    #[test]
    fn batch_trace_round_trips(pairs in prop::collection::btree_map(1u64..1_000_000, 1u32..10_000, 0..80)) {
        let batch = BatchUpdate { day: 0, pairs: pairs.into_iter().collect() };
        let text = batch.to_trace_text();
        let (parsed, consumed) = BatchUpdate::parse_trace_text(&text, 0).expect("parse");
        prop_assert_eq!(parsed, batch);
        prop_assert_eq!(consumed, text.len());
    }

    #[test]
    fn multi_batch_trace_round_trips(batches in prop::collection::vec(
        prop::collection::btree_map(1u64..100_000, 1u32..500, 0..20), 0..6)
    ) {
        let batches: Vec<BatchUpdate> = batches
            .into_iter()
            .enumerate()
            .map(|(day, pairs)| BatchUpdate { day, pairs: pairs.into_iter().collect() })
            .collect();
        let text = batches_to_trace_text(&batches);
        let parsed = batches_from_trace_text(&text).expect("parse");
        prop_assert_eq!(parsed, batches);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn zipf_samplers_agree_on_head_mass(s in 0.8f64..1.6, seed in any::<u64>()) {
        let n = 5_000usize;
        let table = ZipfTable::new(n, s);
        let rej = ZipfRejection::new(n as u64, s);
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 30_000;
        let mut head_t = 0u32;
        let mut head_r = 0u32;
        for _ in 0..trials {
            if table.sample(&mut rng) <= 10 {
                head_t += 1;
            }
            if rej.sample(&mut rng) <= 10 {
                head_r += 1;
            }
        }
        let ft = head_t as f64 / trials as f64;
        let fr = head_r as f64 / trials as f64;
        prop_assert!((ft - fr).abs() < 0.03, "table {ft} vs rejection {fr} at s={s}");
    }
}
