//! Deterministic vocabulary: mapping Zipf ranks to word strings.
//!
//! The evaluation pipeline mostly works with integer word identifiers ("all
//! words in batch updates are converted to unique integers to simplify the
//! remaining computations", paper §4.2), but Table 1 reports raw-text sizes
//! and the lexer needs real text, so every rank has a reproducible surface
//! form.
//!
//! Words are pronounceable pseudo-English built from consonant-vowel units;
//! the mapping is **injective by construction**: ranks are partitioned into
//! length classes (frequent words are short, like natural language) and the
//! index within each class is scrambled by a unit-modulus-coprime multiplier,
//! which is a bijection of the class. A slice of the deep tail is rendered
//! as digit strings (the paper's lexer treats digit runs as tokens) and
//! another slice as "misspellings" — common words with one corrupted letter
//! (the paper notes misspellings end up in batch updates too); both carry a
//! rank-derived suffix placing them in disjoint string classes.

/// Ranks in the tail divisible by this become digit-run tokens.
const DIGIT_TOKEN_MODULUS: u64 = 23;
/// Ranks in the tail divisible by this become misspellings.
const MISSPELL_MODULUS: u64 = 17;
/// Ranks at or below this are never digit tokens or misspellings.
const COMMON_RANK_CUTOFF: u64 = 2_000;

const ONSETS: [&str; 24] = [
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z",
    "st", "tr", "ch", "sh", "pl", "gr",
];
const VOWELS: [&str; 10] = ["a", "e", "i", "o", "u", "ai", "ea", "ou", "io", "oo"];

/// Number of distinct consonant-vowel units.
const UNITS: u64 = (ONSETS.len() * VOWELS.len()) as u64;

/// Class scrambler: any prime that does not divide `UNITS` is coprime with
/// every power of `UNITS`, so multiplication mod the class size is bijective.
const SCRAMBLE: u64 = 1_000_003;

/// Render the word for a 0-based index within the `len`-unit class.
fn render_units(mut idx: u64, len: u32) -> String {
    let mut units = Vec::with_capacity(len as usize);
    for _ in 0..len {
        units.push(idx % UNITS);
        idx /= UNITS;
    }
    let mut w = String::with_capacity(len as usize * 3);
    for u in units {
        w.push_str(ONSETS[(u / VOWELS.len() as u64) as usize]);
        w.push_str(VOWELS[(u % VOWELS.len() as u64) as usize]);
    }
    w
}

/// Map a 0-based "plain word" ordinal to its string, shortest classes first.
fn plain_word(ordinal: u64) -> String {
    let mut class_start = 0u64;
    let mut class_size = UNITS;
    let mut len = 1u32;
    loop {
        if ordinal < class_start + class_size {
            let within = ordinal - class_start;
            let scrambled = (within.wrapping_mul(SCRAMBLE)) % class_size;
            return render_units(scrambled, len);
        }
        class_start += class_size;
        class_size = class_size.saturating_mul(UNITS);
        len += 1;
        assert!(len <= 10, "vocabulary ordinal out of representable range");
    }
}

/// The surface string for a vocabulary rank (1-based; rank 1 is the most
/// frequent word). Deterministic and injective: distinct ranks always yield
/// distinct strings.
pub fn word_string(rank: u64) -> String {
    assert!(rank >= 1, "ranks are 1-based");
    if rank > COMMON_RANK_CUTOFF {
        if rank.is_multiple_of(DIGIT_TOKEN_MODULUS) {
            // Digit-run token, e.g. a year, message number, or address.
            // Injective: the digits encode the rank itself.
            return format!("{}", 1_000_000 + rank);
        }
        if rank.is_multiple_of(MISSPELL_MODULUS) {
            // A misspelling: corrupt one letter of a common word, then tag
            // with 'q' plus a base-25 rank suffix. Plain words never contain
            // 'q' (it is in no onset or vowel) and the corruption step skips
            // 'q', so the first 'q' uniquely delimits the suffix — making
            // misspellings injective and disjoint from every other class.
            // All-letter output keeps the lexer round-trip exact.
            let base_rank = 1 + (rank / MISSPELL_MODULUS) % COMMON_RANK_CUTOFF;
            let mut base = word_string(base_rank).into_bytes();
            let pos = (rank as usize / 7) % base.len();
            // Advance one letter in the 25-letter alphabet without 'q'.
            let next = (base[pos] - b'a' + 1) % 26;
            base[pos] = b'a' + if next == (b'q' - b'a') { next + 1 } else { next };
            let mut s = String::from_utf8(base).expect("ascii");
            s.push('q');
            let mut n = rank;
            while n > 0 {
                let d = (n % 25) as u8;
                s.push(if b'a' + d >= b'q' { b'a' + d + 1 } else { b'a' + d } as char);
                n /= 25;
            }
            return s;
        }
    }
    // Plain pseudo-words: compress out the tail slots taken by digit tokens
    // and misspellings so plain ordinals stay dense. Exact density is not
    // important; injectivity is, and distinct ranks map to distinct ordinals.
    plain_word(rank - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(word_string(1), word_string(1));
        assert_eq!(word_string(123_456), word_string(123_456));
    }

    #[test]
    fn lowercase_alnum_only() {
        for rank in [1u64, 2, 57, 2_001, 2_300, 46_000, 999_999, 5_000_000] {
            let w = word_string(rank);
            assert!(!w.is_empty());
            assert!(
                w.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()),
                "word {w:?} for rank {rank} has non-alnum bytes"
            );
        }
    }

    #[test]
    fn frequent_words_are_short() {
        // The first length class is one consonant-vowel unit: at most a
        // 2-char onset plus a 2-char vowel.
        for rank in 1..=240u64 {
            let w = word_string(rank);
            assert!(w.len() <= 4, "rank {rank} word {w:?} too long");
        }
    }

    #[test]
    fn plain_words_never_contain_q() {
        for rank in 1..=2_000u64 {
            assert!(!word_string(rank).contains('q'), "rank {rank}");
        }
    }

    #[test]
    fn misspellings_are_all_letters() {
        for rank in (2_001..10_000u64).filter(|r| r % MISSPELL_MODULUS == 0) {
            let w = word_string(rank);
            if w.contains('q') {
                assert!(w.bytes().all(|b| b.is_ascii_lowercase()), "{w:?}");
            }
        }
    }

    #[test]
    fn unique_over_prefix() {
        let mut seen = HashSet::new();
        for rank in 1..=300_000u64 {
            let w = word_string(rank);
            assert!(seen.insert(w.clone()), "duplicate word {w:?} at rank {rank}");
        }
    }

    #[test]
    fn digit_tokens_exist_in_tail() {
        let any_digit =
            (2_001..4_000u64).any(|r| word_string(r).bytes().all(|b| b.is_ascii_digit()));
        assert!(any_digit, "expected some digit-run tokens in the tail");
    }

    #[test]
    fn misspellings_exist_in_tail() {
        let any_misspelled = (2_001..4_000u64).any(|r| word_string(r).contains('q'));
        assert!(any_misspelled, "expected some misspelling tokens in the tail");
    }

    #[test]
    fn render_units_is_injective_per_class() {
        let mut seen = HashSet::new();
        for idx in 0..UNITS {
            assert!(seen.insert(render_units(idx, 1)));
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn rank_zero_rejected() {
        word_string(0);
    }
}
