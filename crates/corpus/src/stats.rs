//! Corpus statistics: the paper's Table 1.
//!
//! Table 1 reports, for the News abstracts database: total raw text size,
//! total distinct words, total postings, document count, average postings
//! per word, and the frequent/infrequent split — where "a frequent word
//! ranks in the top 0.2 % of all words (in order of frequency)" and the
//! table shows that frequent words account for the vast majority of all
//! postings.

use crate::batch::BatchUpdate;
use crate::doc::DayDocs;
use std::collections::HashMap;

/// Fraction of the vocabulary counted as "frequent" (paper: top 0.2 %).
pub const FREQUENT_FRACTION: f64 = 0.002;

/// Accumulates Table 1 statistics over a streamed corpus.
#[derive(Debug, Clone, Default)]
pub struct StatsCollector {
    raw_text_bytes: u64,
    documents: u64,
    rejected: u64,
    postings_per_word: HashMap<u64, u64>,
}

impl StatsCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one day's documents into the statistics.
    pub fn add_day(&mut self, day: &DayDocs) {
        self.rejected += day.rejected as u64;
        for doc in &day.docs {
            self.documents += 1;
            self.raw_text_bytes += doc.char_len as u64;
            for &rank in &doc.word_ranks {
                *self.postings_per_word.entry(rank).or_insert(0) += 1;
            }
        }
    }

    /// Fold a batch update (word-occurrence pairs) into the statistics.
    /// Useful when only batches, not documents, are available; raw-text and
    /// document counts are then not accumulated.
    pub fn add_batch(&mut self, batch: &BatchUpdate) {
        for &(w, c) in &batch.pairs {
            *self.postings_per_word.entry(w).or_insert(0) += c as u64;
        }
    }

    /// Finish and compute the Table 1 summary.
    pub fn finish(&self) -> CorpusStats {
        let total_words = self.postings_per_word.len() as u64;
        let total_postings: u64 = self.postings_per_word.values().sum();
        let mut counts: Vec<u64> = self.postings_per_word.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let frequent_words = ((total_words as f64 * FREQUENT_FRACTION).ceil() as usize)
            .min(counts.len())
            .max(usize::from(!counts.is_empty()));
        let frequent_postings: u64 = counts[..frequent_words].iter().sum();
        CorpusStats {
            raw_text_bytes: self.raw_text_bytes,
            total_words,
            total_postings,
            documents: self.documents,
            rejected_documents: self.rejected,
            frequent_words: frequent_words as u64,
            infrequent_words: total_words - frequent_words as u64,
            frequent_postings,
        }
    }
}

/// The paper's Table 1 row set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CorpusStats {
    /// Rendered size of all admitted documents, in bytes.
    pub raw_text_bytes: u64,
    /// Distinct words.
    pub total_words: u64,
    /// Total postings (document-word pairs).
    pub total_postings: u64,
    /// Admitted documents.
    pub documents: u64,
    /// Documents rejected by the admission filter.
    pub rejected_documents: u64,
    /// Words in the top [`FREQUENT_FRACTION`] by posting count.
    pub frequent_words: u64,
    /// Words outside the frequent set.
    pub infrequent_words: u64,
    /// Postings belonging to frequent words.
    pub frequent_postings: u64,
}

impl CorpusStats {
    /// Mean postings per distinct word (a Table 1 row).
    pub fn avg_postings_per_word(&self) -> f64 {
        if self.total_words == 0 {
            0.0
        } else {
            self.total_postings as f64 / self.total_words as f64
        }
    }

    /// Percentage of all postings belonging to frequent words.
    pub fn frequent_posting_pct(&self) -> f64 {
        if self.total_postings == 0 {
            0.0
        } else {
            100.0 * self.frequent_postings as f64 / self.total_postings as f64
        }
    }

    /// Render Table 1 in the paper's layout.
    pub fn render_table(&self) -> String {
        format!(
            "Text Document Database          News (synthetic)\n\
             Total Raw Text                  {:.1} MB\n\
             Total Words                     {}\n\
             Total Postings                  {}\n\
             Documents                       {}\n\
             Average Postings per Word       {:.1}\n\
             Frequent Words (top {:.1}%)     {}\n\
             Infrequent Words                {}\n\
             Postings for Frequent Words     {:.1}%\n\
             Postings for Infrequent Words   {:.1}%\n",
            self.raw_text_bytes as f64 / 1e6,
            self.total_words,
            self.total_postings,
            self.documents,
            self.avg_postings_per_word(),
            FREQUENT_FRACTION * 100.0,
            self.frequent_words,
            self.infrequent_words,
            self.frequent_posting_pct(),
            100.0 - self.frequent_posting_pct(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{CorpusGenerator, CorpusParams};

    fn collect(params: CorpusParams) -> CorpusStats {
        let mut c = StatsCollector::new();
        for day in CorpusGenerator::new(params) {
            c.add_day(&day);
        }
        c.finish()
    }

    #[test]
    fn empty_stats() {
        let s = StatsCollector::new().finish();
        assert_eq!(s.total_words, 0);
        assert_eq!(s.avg_postings_per_word(), 0.0);
        assert_eq!(s.frequent_posting_pct(), 0.0);
    }

    #[test]
    fn zipf_skew_shows_in_frequent_split() {
        let s = collect(CorpusParams::tiny());
        assert!(s.total_words > 1_000);
        // The defining property reproduced from Table 1: a tiny fraction of
        // words holds a grossly disproportionate share of the postings. On
        // the tiny corpus we assert the share is at least 25x the uniform
        // share; the full-scale corpus reaches a strong majority (reported
        // by the table1 bench binary).
        let word_share = s.frequent_words as f64 / s.total_words as f64;
        let posting_share = s.frequent_posting_pct() / 100.0;
        assert!(
            posting_share > 25.0 * word_share,
            "frequent words are {:.4}% of vocab but only {:.2}% of postings",
            100.0 * word_share,
            s.frequent_posting_pct()
        );
        assert!(s.frequent_words < s.total_words / 100);
    }

    #[test]
    fn day_and_batch_paths_agree_on_postings() {
        let params = CorpusParams::tiny();
        let mut by_day = StatsCollector::new();
        let mut by_batch = StatsCollector::new();
        for day in CorpusGenerator::new(params) {
            by_day.add_day(&day);
            by_batch.add_batch(&crate::batch::BatchUpdate::from_day(&day));
        }
        let a = by_day.finish();
        let b = by_batch.finish();
        assert_eq!(a.total_words, b.total_words);
        assert_eq!(a.total_postings, b.total_postings);
        assert_eq!(a.frequent_postings, b.frequent_postings);
    }

    #[test]
    fn table_renders() {
        let s = collect(CorpusParams::tiny());
        let t = s.render_table();
        assert!(t.contains("Total Postings"));
        assert!(t.contains("MB"));
    }
}
