//! Batch updates: the paper's "invert index" process output (§4.2).
//!
//! "A batch update contains a list of words that appear in the documents of
//! the batch and the number of times each word occurs in the batch. A word
//! and its frequency of occurrence is termed a *word-occurrence pair*."
//!
//! The count for a word is the number of *documents* the word occurs in
//! (duplicate tokens per document are dropped first — Table 3's caption),
//! i.e. exactly the number of postings that the in-memory inverted index
//! would accumulate for that word in the batch.

use crate::doc::DayDocs;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A word identifier: in this substrate, the vocabulary rank itself.
/// ("At this point all words in batch updates are converted to unique
/// integers to simplify the remaining computations" — we use the Zipf rank,
/// which is unique per word.)
pub type WordRank = u64;

/// One day's batch update: sorted `(word, postings)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchUpdate {
    /// Batch (day) index.
    pub day: usize,
    /// Sorted by word; `count >= 1`.
    pub pairs: Vec<(WordRank, u32)>,
}

impl BatchUpdate {
    /// Build a batch update from one day's documents.
    pub fn from_day(day: &DayDocs) -> Self {
        let mut counts: BTreeMap<WordRank, u32> = BTreeMap::new();
        for doc in &day.docs {
            for &rank in &doc.word_ranks {
                *counts.entry(rank).or_insert(0) += 1;
            }
        }
        Self { day: day.day, pairs: counts.into_iter().collect() }
    }

    /// Total postings in this batch (sum of counts).
    pub fn postings(&self) -> u64 {
        self.pairs.iter().map(|&(_, c)| c as u64).sum()
    }

    /// Number of distinct words in this batch.
    pub fn words(&self) -> usize {
        self.pairs.len()
    }

    /// Serialize in the paper's Figure 5 trace format: one `word count`
    /// line per pair, terminated by the `0 0` end-of-batch marker.
    pub fn to_trace_text(&self) -> String {
        let mut s = String::with_capacity(self.pairs.len() * 12 + 8);
        for &(w, c) in &self.pairs {
            let _ = writeln!(s, "{w} {c}");
        }
        s.push_str("0 0\n");
        s
    }

    /// Parse one batch back from Figure 5 trace text. Returns the batch and
    /// the number of bytes consumed (so multiple batches can be streamed
    /// from one file). The `day` field is taken from the argument since the
    /// format does not carry it.
    pub fn parse_trace_text(text: &str, day: usize) -> Result<(Self, usize), BatchParseError> {
        let mut pairs = Vec::new();
        let mut consumed = 0usize;
        for line in text.lines() {
            // +1 for the newline; the final line may lack one, handled below.
            let line_len = line.len() + 1;
            let mut it = line.split_ascii_whitespace();
            let w: u64 = it
                .next()
                .ok_or(BatchParseError::Malformed)?
                .parse()
                .map_err(|_| BatchParseError::Malformed)?;
            let c: u32 = it
                .next()
                .ok_or(BatchParseError::Malformed)?
                .parse()
                .map_err(|_| BatchParseError::Malformed)?;
            if it.next().is_some() {
                return Err(BatchParseError::Malformed);
            }
            consumed += line_len.min(text.len() - (consumed));
            if w == 0 && c == 0 {
                return Ok((Self { day, pairs }, consumed));
            }
            if w == 0 || c == 0 {
                return Err(BatchParseError::Malformed);
            }
            pairs.push((w, c));
        }
        Err(BatchParseError::MissingTerminator)
    }
}

/// Errors from [`BatchUpdate::parse_trace_text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchParseError {
    /// A line did not contain exactly two non-negative integers.
    Malformed,
    /// The `0 0` end-of-batch marker never appeared.
    MissingTerminator,
}

impl std::fmt::Display for BatchParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed => write!(f, "malformed word-occurrence line"),
            Self::MissingTerminator => write!(f, "missing 0 0 end-of-batch marker"),
        }
    }
}

impl std::error::Error for BatchParseError {}

/// Serialize a whole sequence of batches to one trace file body.
pub fn batches_to_trace_text(batches: &[BatchUpdate]) -> String {
    batches.iter().map(BatchUpdate::to_trace_text).collect()
}

/// Parse a whole trace file body into batches.
pub fn batches_from_trace_text(text: &str) -> Result<Vec<BatchUpdate>, BatchParseError> {
    let mut out = Vec::new();
    let mut rest = text;
    let mut day = 0usize;
    while !rest.trim().is_empty() {
        let (batch, consumed) = BatchUpdate::parse_trace_text(rest, day)?;
        out.push(batch);
        rest = &rest[consumed.min(rest.len())..];
        day += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{CorpusGenerator, CorpusParams};

    fn one_day() -> DayDocs {
        let params = CorpusParams {
            days: 1,
            docs_per_weekday: 20,
            vocab_ranks: 2_000,
            tokens_per_doc_median: 30.0,
            min_doc_chars: 100,
            interrupted_day: None,
            ..CorpusParams::default()
        };
        CorpusGenerator::new(params).next_day().unwrap()
    }

    #[test]
    fn counts_are_document_frequencies() {
        let day = one_day();
        let batch = BatchUpdate::from_day(&day);
        // Postings must equal the sum of per-document distinct word counts.
        let expected: u64 = day.docs.iter().map(|d| d.word_ranks.len() as u64).sum();
        assert_eq!(batch.postings(), expected);
        // Every count is bounded by the number of documents.
        for &(_, c) in &batch.pairs {
            assert!(c as usize <= day.docs.len());
        }
    }

    #[test]
    fn pairs_sorted_by_word() {
        let batch = BatchUpdate::from_day(&one_day());
        assert!(batch.pairs.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn trace_text_round_trip() {
        let batch = BatchUpdate::from_day(&one_day());
        let text = batch.to_trace_text();
        let (parsed, consumed) = BatchUpdate::parse_trace_text(&text, batch.day).unwrap();
        assert_eq!(parsed, batch);
        assert_eq!(consumed, text.len());
    }

    #[test]
    fn multi_batch_round_trip() {
        let params = CorpusParams {
            days: 3,
            docs_per_weekday: 10,
            vocab_ranks: 1_000,
            tokens_per_doc_median: 20.0,
            min_doc_chars: 50,
            interrupted_day: None,
            ..CorpusParams::default()
        };
        let batches: Vec<BatchUpdate> =
            CorpusGenerator::new(params).map(|d| BatchUpdate::from_day(&d)).collect();
        let text = batches_to_trace_text(&batches);
        let parsed = batches_from_trace_text(&text).unwrap();
        assert_eq!(parsed, batches);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            BatchUpdate::parse_trace_text("1 2\nnot numbers\n0 0\n", 0),
            Err(BatchParseError::Malformed)
        );
        assert_eq!(
            BatchUpdate::parse_trace_text("1 2\n", 0),
            Err(BatchParseError::MissingTerminator)
        );
        assert_eq!(
            BatchUpdate::parse_trace_text("1 0\n0 0\n", 0),
            Err(BatchParseError::Malformed)
        );
    }

    #[test]
    fn figure5_shape() {
        // The format matches Figure 5: "word occurrence" pairs, one per
        // line, with the `0 0` end-of-batch marker.
        let batch = BatchUpdate { day: 0, pairs: vec![(172_921, 1013), (355_315, 1115)] };
        assert_eq!(batch.to_trace_text(), "172921 1013\n355315 1115\n0 0\n");
    }
}
