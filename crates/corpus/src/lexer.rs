//! The paper's document lexer (§4.2).
//!
//! "Each document in the batch is lexically analyzed to produce a token
//! stream. Sequences of letters and sequences of numbers are tokens — all
//! other characters are ignored. Certain lines of a document (such as
//! `Date:` lines) are also ignored. Finally, duplicate tokens for a document
//! are dropped. [...] Tokens are converted to words by converting upper case
//! letters to lower case."

use std::collections::BTreeSet;

/// Header-line prefixes that are ignored entirely (compared
/// case-insensitively). Modeled on NetNews/RFC-1036 headers; the paper
/// names `Date:` lines explicitly.
pub const IGNORED_LINE_PREFIXES: [&str; 8] = [
    "date:",
    "message-id:",
    "path:",
    "references:",
    "xref:",
    "lines:",
    "nntp-posting-host:",
    "organization:",
];

/// Returns true when the line should be skipped by the lexer.
pub fn is_ignored_line(line: &str) -> bool {
    // Byte-wise comparison: prefix lengths may fall inside a multi-byte
    // character of arbitrary input, so string slicing would panic.
    let bytes = line.trim_start().as_bytes();
    IGNORED_LINE_PREFIXES
        .iter()
        .any(|p| bytes.len() >= p.len() && bytes[..p.len()].eq_ignore_ascii_case(p.as_bytes()))
}

/// Tokenize one line into lowercase letter-run and digit-run tokens.
///
/// A letter run ends where a non-letter begins and vice versa, so
/// `"rs6000"` yields `["rs", "6000"]` — sequences of letters and sequences
/// of numbers are *separate* tokens, exactly as in the paper.
pub fn tokenize_line(line: &str) -> impl Iterator<Item = String> + '_ {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    std::iter::from_fn(move || {
        while i < bytes.len() {
            let b = bytes[i];
            if b.is_ascii_alphabetic() {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
                    i += 1;
                }
                return Some(line[start..i].to_ascii_lowercase());
            } else if b.is_ascii_digit() {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                return Some(line[start..i].to_string());
            } else {
                i += 1;
            }
        }
        None
    })
}

/// Tokenize a whole document: header-aware, line by line.
pub fn tokenize_document(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in text.lines() {
        if is_ignored_line(line) {
            continue;
        }
        out.extend(tokenize_line(line));
    }
    out
}

/// Tokenize a document keeping token *positions* (0-based ordinals in the
/// token stream) — the paper's §1 postings "may include the word offset
/// (within the document) where w occurs"; proximity queries ("cat and dog
/// within so many words of each other") consume these.
pub fn tokenize_with_positions(text: &str) -> Vec<(String, u32)> {
    tokenize_document(text)
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t, i as u32))
        .collect()
}

/// The positions at which each distinct word occurs, sorted by word.
pub fn document_word_positions(text: &str) -> Vec<(String, Vec<u32>)> {
    let mut map: std::collections::BTreeMap<String, Vec<u32>> = Default::default();
    for (tok, pos) in tokenize_with_positions(text) {
        map.entry(tok).or_default().push(pos);
    }
    map.into_iter().collect()
}

/// The word *set* of a document: tokenized, lowercased, deduplicated, and
/// sorted — the form shown in the paper's Figure 4(b).
///
/// ```
/// use invidx_corpus::lexer::document_words;
///
/// let words = document_words("Date: skipped\nThe RS6000, the IBM box");
/// assert_eq!(words, ["6000", "box", "ibm", "rs", "the"]);
/// ```
pub fn document_words(text: &str) -> Vec<String> {
    let set: BTreeSet<String> = tokenize_document(text).into_iter().collect();
    set.into_iter().collect()
}

/// Document admission filters from §4.1.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionFilter {
    /// "News documents less than 1000 characters in length were eliminated".
    pub min_chars: usize,
    /// Reject documents whose non-ASCII-printable fraction exceeds this —
    /// the paper's filter for "non-English language documents (e.g., encoded
    /// binaries and pictures)".
    pub max_binary_fraction: f64,
}

impl Default for AdmissionFilter {
    fn default() -> Self {
        Self { min_chars: 1000, max_binary_fraction: 0.10 }
    }
}

impl AdmissionFilter {
    /// Should this document be admitted to the batch?
    pub fn admits(&self, text: &str) -> bool {
        if text.len() < self.min_chars {
            return false;
        }
        let binary = text
            .bytes()
            .filter(|&b| !(b.is_ascii_graphic() || b == b' ' || b == b'\n' || b == b'\t' || b == b'\r'))
            .count();
        (binary as f64) <= self.max_binary_fraction * text.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_4_example() {
        // Figure 4(a)/(b) of the paper: the fragment and its token set.
        let fragment = "for years. And it was a total flop, in all the years it was available\n\
                        very few people ever took advantage of it so it was dropped.";
        let words = document_words(fragment);
        let expected: Vec<&str> = vec![
            "a", "advantage", "all", "and", "available", "dropped", "ever", "few", "flop",
            "for", "in", "it", "of", "people", "so", "the", "took", "total", "very", "was",
            "years",
        ];
        assert_eq!(words, expected);
    }

    #[test]
    fn letters_and_digits_are_separate_tokens() {
        let toks: Vec<String> = tokenize_line("IBM RS6000 Model-530, 1994!").collect();
        assert_eq!(toks, vec!["ibm", "rs", "6000", "model", "530", "1994"]);
    }

    #[test]
    fn date_lines_are_ignored() {
        let doc = "Date: Mon, 15 Nov 1993\nSubject: cats and dogs\ncat dog";
        let words = document_words(doc);
        assert!(!words.contains(&"nov".to_string()));
        assert!(words.contains(&"cat".to_string()));
        assert!(words.contains(&"subject".to_string()));
    }

    #[test]
    fn header_prefix_match_is_case_insensitive() {
        assert!(is_ignored_line("DATE: whenever"));
        assert!(is_ignored_line("  Message-ID: <x@y>"));
        assert!(!is_ignored_line("dates are fruit"));
        assert!(!is_ignored_line("update: news"));
    }

    #[test]
    fn duplicates_dropped_and_sorted() {
        let words = document_words("b b a a c a");
        assert_eq!(words, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_document() {
        assert!(document_words("").is_empty());
        assert!(tokenize_document("!!! ---").is_empty());
    }

    #[test]
    fn admission_filter_min_length() {
        let f = AdmissionFilter::default();
        assert!(!f.admits("short doc"));
        let long = "word ".repeat(300);
        assert!(f.admits(&long));
    }

    #[test]
    fn admission_filter_binary() {
        let f = AdmissionFilter::default();
        let mut binary = String::from_utf8(vec![b'x'; 500]).unwrap();
        binary.push_str(&"\u{00}".repeat(600));
        assert!(!f.admits(&binary));
    }

    #[test]
    fn tokenize_unicode_passthrough_is_ignored() {
        // Non-ASCII characters are "other characters" and are ignored.
        let toks: Vec<String> = tokenize_line("caf\u{e9} na\u{ef}ve 42").collect();
        assert_eq!(toks, vec!["caf", "na", "ve", "42"]);
    }
}
