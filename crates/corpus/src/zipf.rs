//! Zipf-distributed rank sampling.
//!
//! The paper observes (§2) that inverted-list lengths for a text database
//! follow "a roughly exponential distribution (the Zipf curve)". Everything
//! in the evaluation — which words overflow buckets, how long lists grow,
//! how much reserved space pays off — is driven by this skew, so the
//! synthetic corpus must reproduce it.
//!
//! Two samplers are provided:
//!
//! * [`ZipfTable`] — exact inverse-CDF sampling via a precomputed cumulative
//!   table and binary search. O(n) memory, O(log n) per sample, numerically
//!   exact. The default for corpus generation.
//! * [`ZipfRejection`] — the rejection-inversion sampler of Hörmann &
//!   Derflinger, O(1) memory and amortized O(1) per sample. Used when the
//!   rank space is too large to tabulate.
//!
//! Both sample ranks in `1..=n` with `P(rank = k) ∝ k^{-s}`.

use rand::Rng;

/// Exact Zipf sampler backed by a cumulative-probability table.
///
/// Sampling draws a uniform variate and binary-searches the table, so two
/// samplers with the same `(n, s)` and the same RNG stream produce identical
/// rank sequences — which keeps corpus generation deterministic.
/// ```
/// use invidx_corpus::zipf::ZipfTable;
/// use rand::SeedableRng;
///
/// let zipf = ZipfTable::new(1000, 1.1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1000).contains(&rank));
/// // Rank 1 is the most probable.
/// assert!(zipf.pmf(1) > zipf.pmf(2));
/// ```
#[derive(Debug, Clone)]
pub struct ZipfTable {
    /// `cdf[k-1]` = P(rank <= k), with `cdf[n-1] == 1.0` exactly.
    cdf: Vec<f64>,
    s: f64,
}

impl ZipfTable {
    /// Build a sampler over ranks `1..=n` with exponent `s > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfTable requires n > 0");
        assert!(s.is_finite() && s > 0.0, "ZipfTable requires finite s > 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf, s }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Probability of drawing exactly `rank` (1-based).
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!((1..=self.n()).contains(&rank), "rank out of range");
        let lo = if rank == 1 { 0.0 } else { self.cdf[rank - 2] };
        self.cdf[rank - 1] - lo
    }

    /// Draw one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        // partition_point returns the count of entries < u, i.e. the 0-based
        // index of the first cdf entry >= u; +1 converts to a 1-based rank.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }
}

/// Rejection-inversion Zipf sampler (Hörmann & Derflinger 1996).
///
/// Supports arbitrarily large `n` without tabulating probabilities. The
/// acceptance rate is bounded below by a constant for all `n` and `s`, so
/// sampling is amortized O(1).
#[derive(Debug, Clone, Copy)]
pub struct ZipfRejection {
    n: u64,
    s: f64,
    /// `H(1.5) - 1`, the lower endpoint of the uniform envelope.
    h_x1: f64,
    /// `H(n + 0.5)`, the upper endpoint.
    h_n: f64,
    /// Acceptance threshold shortcut `s_cut = 2 - H_inv(H(2.5) - 2^{-s})`.
    cut: f64,
}

impl ZipfRejection {
    /// Build a sampler over ranks `1..=n` with exponent `s > 0`, `s != 1`
    /// handled together with `s == 1` via the generalized harmonic integral.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "ZipfRejection requires n > 0");
        assert!(s.is_finite() && s > 0.0, "ZipfRejection requires finite s > 0");
        let h_x1 = Self::h(1.5, s) - 1.0;
        let h_n = Self::h(n as f64 + 0.5, s);
        let cut = 2.0 - Self::h_inv(Self::h(2.5, s) - (2.0f64).powf(-s), s);
        Self { n, s, h_x1, h_n, cut }
    }

    /// `H(x) = ∫ t^{-s} dt`, the antiderivative used for envelope inversion.
    fn h(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    /// Inverse of [`Self::h`].
    fn h_inv(y: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            y.exp()
        } else {
            (1.0 + (1.0 - s) * y).powf(1.0 / (1.0 - s))
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.random::<f64>() * (self.h_x1 - self.h_n);
            let x = Self::h_inv(u, self.s);
            let k = x.clamp(1.0, self.n as f64).round();
            if k - x <= self.cut || u >= Self::h(k + 0.5, self.s) - k.powf(-self.s) {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_pmf_sums_to_one() {
        let z = ZipfTable::new(100, 1.1);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12, "pmf sum = {total}");
    }

    #[test]
    fn table_pmf_is_monotone_decreasing() {
        let z = ZipfTable::new(50, 0.8);
        for k in 1..50 {
            assert!(z.pmf(k) >= z.pmf(k + 1), "pmf not monotone at {k}");
        }
    }

    #[test]
    fn table_sample_in_range() {
        let z = ZipfTable::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let r = z.sample(&mut rng);
            assert!((1..=10).contains(&r));
        }
    }

    #[test]
    fn table_rank1_frequency_matches_pmf() {
        let z = ZipfTable::new(1000, 1.05);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 200_000;
        let ones = (0..trials).filter(|_| z.sample(&mut rng) == 1).count();
        let observed = ones as f64 / trials as f64;
        let expected = z.pmf(1);
        assert!(
            (observed - expected).abs() < 0.01,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn rejection_sample_in_range() {
        let z = ZipfRejection::new(1_000_000, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!((1..=1_000_000).contains(&r));
        }
    }

    #[test]
    fn rejection_matches_table_distribution() {
        // Compare empirical top-rank frequencies of the two samplers.
        let n = 10_000;
        let s = 1.1;
        let table = ZipfTable::new(n, s);
        let rej = ZipfRejection::new(n as u64, s);
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 300_000;
        let mut counts_rej = [0u64; 5];
        for _ in 0..trials {
            let r = rej.sample(&mut rng) as usize;
            if r <= 5 {
                counts_rej[r - 1] += 1;
            }
        }
        for k in 1..=5 {
            let observed = counts_rej[k - 1] as f64 / trials as f64;
            let expected = table.pmf(k);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {k}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn rejection_handles_s_equal_one() {
        let z = ZipfRejection::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 100_000;
        let ones = (0..trials).filter(|_| z.sample(&mut rng) == 1).count();
        let observed = ones as f64 / trials as f64;
        // Harmonic number H_1000 ~= 7.485; P(1) = 1/H_1000 ~= 0.1336.
        assert!((observed - 0.1336).abs() < 0.01, "observed {observed}");
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn table_rejects_zero_n() {
        ZipfTable::new(0, 1.0);
    }
}
