//! # invidx-corpus — synthetic text-document substrate
//!
//! The paper's evaluation is driven by 73 days of NetNews articles gathered
//! in 1993/94 (§4.1) — data we do not have. This crate builds the closest
//! synthetic equivalent: a deterministic, parameterized NetNews-like corpus
//! whose statistical properties (Zipf-skewed inverted-list lengths,
//! continuous new-word arrival, weekly volume seasonality, ≥1000-character
//! documents) match the drivers of every figure in the paper. See DESIGN.md
//! for the substitution argument.
//!
//! The crate provides:
//!
//! * [`zipf`] — exact and rejection-based Zipf rank samplers;
//! * [`vocab`] — a deterministic, injective rank → word-string mapping;
//! * [`lexer`] — the paper's tokenizer (letter runs, digit runs, header-line
//!   skipping, lowercasing, per-document dedup) and admission filters;
//! * [`doc`] — the streaming corpus generator and text renderer;
//! * [`batch`] — batch updates (word-occurrence pairs) and the Figure 5
//!   trace text format;
//! * [`stats`] — Table 1 statistics.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod batch;
pub mod doc;
pub mod lexer;
pub mod stats;
pub mod vocab;
pub mod zipf;

pub use batch::{BatchUpdate, WordRank};
pub use doc::{CorpusGenerator, CorpusParams, DayDocs, GeneratedDoc};
pub use stats::{CorpusStats, StatsCollector};

/// Generate all batch updates for a parameter set, plus Table 1 statistics.
///
/// This is the "News → Invert Index" front of the paper's Figure 3 pipeline
/// in one call. Memory stays bounded: documents are dropped as soon as their
/// batch update is folded in.
pub fn generate_batches(params: CorpusParams) -> (Vec<BatchUpdate>, CorpusStats) {
    let mut stats = StatsCollector::new();
    let mut batches = Vec::with_capacity(params.days);
    for day in CorpusGenerator::new(params) {
        stats.add_day(&day);
        batches.push(BatchUpdate::from_day(&day));
    }
    (batches, stats.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_batches_end_to_end() {
        let (batches, stats) = generate_batches(CorpusParams::tiny());
        assert_eq!(batches.len(), 12);
        let total: u64 = batches.iter().map(|b| b.postings()).sum();
        assert_eq!(total, stats.total_postings);
        assert!(stats.documents > 100);
    }
}
