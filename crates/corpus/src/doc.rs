//! Synthetic NetNews-like document generation.
//!
//! The paper's corpus is 73 days of NetNews articles (Nov 18 1993 – Jan 31
//! 1994, Dec 25 missing), filtered to documents of at least 1000 characters
//! (§4.1). We reproduce the *statistical drivers* of the evaluation:
//!
//! * word choice is Zipf-distributed over a large rank space, so inverted
//!   lists have the skewed length distribution of Table 1;
//! * the vocabulary is effectively unbounded, so new words keep arriving in
//!   every batch (the "new words" curve of Figure 7);
//! * daily volume has a weekly profile with a Saturday dip — the source of
//!   the 7-day periodicity the paper observes in Figure 7 — plus one
//!   designated "interrupted" tiny day (the paper's update 21 spike).
//!
//! Documents are generated as *rank multisets*; rendering to text (headers +
//! body) is a separate, optional, pure function so that large parameter
//! sweeps never pay for string construction. `render` and the lexer
//! round-trip exactly: lexing a rendered document recovers precisely the
//! document's word set.

use crate::lexer;
use crate::vocab::word_string;
use crate::zipf::ZipfTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Parameters controlling corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusParams {
    /// Number of daily batches (the paper uses 73).
    pub days: usize,
    /// Documents *generated* per full-volume weekday, before admission
    /// filtering.
    pub docs_per_weekday: usize,
    /// Volume multiplier per day of week, `[Mon..Sun]`. Saturday is the
    /// weekly minimum in the paper's data.
    pub weekly_profile: [f64; 7],
    /// Day of week of batch 0 (0 = Monday). Nov 18 1993 was a Thursday.
    pub start_weekday: usize,
    /// Zipf rank-space size (the potential vocabulary).
    pub vocab_ranks: usize,
    /// Zipf exponent.
    pub zipf_s: f64,
    /// Median token occurrences per document (before dedup).
    pub tokens_per_doc_median: f64,
    /// Lognormal spread of the token count.
    pub tokens_per_doc_sigma: f64,
    /// Admission filter (minimum length, binary fraction).
    pub min_doc_chars: usize,
    /// `Some((day, factor))` marks one interrupted gathering day whose
    /// volume is scaled down by `factor` (the paper's update-21 spike).
    pub interrupted_day: Option<(usize, f64)>,
    /// RNG seed; the whole corpus is a pure function of the parameters.
    pub seed: u64,
}

impl Default for CorpusParams {
    /// Full-scale parameters targeting the magnitude of the paper's News
    /// database: ~75 k admitted documents, ~9 M postings, several hundred
    /// thousand distinct words over 73 batches.
    fn default() -> Self {
        Self {
            days: 73,
            docs_per_weekday: 1150,
            weekly_profile: [1.0, 0.98, 1.02, 1.0, 0.95, 0.45, 0.62],
            start_weekday: 3,
            vocab_ranks: 1_500_000,
            zipf_s: 1.1,
            tokens_per_doc_median: 165.0,
            tokens_per_doc_sigma: 0.55,
            min_doc_chars: 1000,
            interrupted_day: Some((21, 0.08)),
            seed: 0x5eed_1994,
        }
    }
}

impl CorpusParams {
    /// A reduced corpus for unit/integration tests: same shape, ~100× less
    /// data.
    pub fn tiny() -> Self {
        Self {
            days: 12,
            docs_per_weekday: 40,
            vocab_ranks: 20_000,
            tokens_per_doc_median: 60.0,
            min_doc_chars: 200,
            interrupted_day: Some((7, 0.1)),
            ..Self::default()
        }
    }

    /// Day-of-week (0 = Monday) of a batch index.
    pub fn weekday(&self, day: usize) -> usize {
        (self.start_weekday + day) % 7
    }

    /// Number of documents generated (pre-filter) on a given day.
    pub fn docs_on_day(&self, day: usize) -> usize {
        let mut v = self.docs_per_weekday as f64 * self.weekly_profile[self.weekday(day)];
        if let Some((d, f)) = self.interrupted_day {
            if d == day {
                v *= f;
            }
        }
        v.round().max(1.0) as usize
    }
}

/// One generated document, in rank form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedDoc {
    /// Globally unique, monotonically increasing document identifier —
    /// the paper assumes "new documents are numbered with identifiers in
    /// increasing order" (§3).
    pub id: u32,
    /// Batch (day) index this document belongs to.
    pub day: usize,
    /// The token occurrence sequence (with repetitions), as sampled.
    pub occurrences: Vec<u64>,
    /// The deduplicated, sorted word-rank set.
    pub word_ranks: Vec<u64>,
    /// Rendered character length (headers + body), computed without
    /// rendering.
    pub char_len: usize,
}

/// One day's admitted documents.
#[derive(Debug, Clone)]
pub struct DayDocs {
    /// Batch (day) index.
    pub day: usize,
    /// The admitted documents, in id order.
    pub docs: Vec<GeneratedDoc>,
    /// Documents generated but rejected by the admission filter.
    pub rejected: usize,
}

/// Streaming corpus generator: yields one [`DayDocs`] per day.
pub struct CorpusGenerator {
    params: CorpusParams,
    zipf: ZipfTable,
    rng: StdRng,
    next_id: u32,
    day: usize,
    /// rank -> rendered length cache for cheap char-length estimation.
    len_cache: HashMap<u64, usize>,
}

impl CorpusGenerator {
    /// Create a generator; the corpus is a pure function of the params.
    pub fn new(params: CorpusParams) -> Self {
        let zipf = ZipfTable::new(params.vocab_ranks, params.zipf_s);
        let rng = StdRng::seed_from_u64(params.seed);
        Self { params, zipf, rng, next_id: 0, day: 0, len_cache: HashMap::new() }
    }

    /// The parameters in force.
    pub fn params(&self) -> &CorpusParams {
        &self.params
    }

    /// Standard-normal variate via Box–Muller (keeps us off rand_distr).
    fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn word_len(&mut self, rank: u64) -> usize {
        *self.len_cache.entry(rank).or_insert_with(|| word_string(rank).len())
    }

    fn generate_doc(&mut self, day: usize) -> GeneratedDoc {
        let z = self.std_normal();
        let n = (self.params.tokens_per_doc_median * (self.params.tokens_per_doc_sigma * z).exp())
            .round()
            .clamp(8.0, 4000.0) as usize;
        let mut occurrences = Vec::with_capacity(n);
        for _ in 0..n {
            occurrences.push(self.zipf.sample(&mut self.rng));
        }
        let mut word_ranks = occurrences.clone();
        word_ranks.sort_unstable();
        word_ranks.dedup();
        // Body length: each word plus exactly one separator character
        // (space or newline), plus the fixed header overhead of `render`.
        let mut body = 0usize;
        for &r in &occurrences {
            body += 1 + self.word_len(r);
        }
        let char_len = RENDER_HEADER_LEN + body;
        let id = self.next_id;
        self.next_id += 1;
        GeneratedDoc { id, day, occurrences, word_ranks, char_len }
    }

    /// Generate the next day, or `None` when the corpus is complete.
    pub fn next_day(&mut self) -> Option<DayDocs> {
        if self.day >= self.params.days {
            return None;
        }
        let day = self.day;
        self.day += 1;
        let total = self.params.docs_on_day(day);
        let mut docs = Vec::with_capacity(total);
        let mut rejected = 0usize;
        for _ in 0..total {
            let doc = self.generate_doc(day);
            if doc.char_len >= self.params.min_doc_chars {
                docs.push(doc);
            } else {
                rejected += 1;
            }
        }
        Some(DayDocs { day, docs, rejected })
    }
}

impl Iterator for CorpusGenerator {
    type Item = DayDocs;

    fn next(&mut self) -> Option<DayDocs> {
        self.next_day()
    }
}

/// Fixed character overhead of the rendered header block.
const RENDER_HEADER_LEN: usize = 144;

/// Render a document to NetNews-ish text. Pure: depends only on the
/// document. Lexing the result recovers exactly `doc.word_ranks` (headers
/// use only lexer-ignored lines).
pub fn render(doc: &GeneratedDoc) -> String {
    let mut s = String::with_capacity(doc.char_len + 64);
    // All header lines are lexer-ignored prefixes, so the token set of the
    // rendered document is exactly the body's.
    s.push_str(&format!(
        "Date: day {:>4} of the collection period\n",
        doc.day
    ));
    s.push_str(&format!("Message-ID: <{:0>10}@news.example>\n", doc.id));
    s.push_str("Path: news.example!not-for-mail\n");
    s.push_str("Organization: synthetic news feed\n");
    debug_assert_eq!(s.len(), RENDER_HEADER_LEN);
    for (i, &rank) in doc.occurrences.iter().enumerate() {
        s.push_str(&word_string(rank));
        if (i + 1) % 12 == 0 {
            s.push('\n');
        } else {
            s.push(' ');
        }
    }
    s
}

/// Lex a rendered document back to word strings and verify the round trip.
/// Returns the recovered word set (sorted, deduplicated).
pub fn lex_rendered(doc: &GeneratedDoc) -> Vec<String> {
    lexer::document_words(&render(doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn small_params() -> CorpusParams {
        CorpusParams {
            days: 4,
            docs_per_weekday: 10,
            vocab_ranks: 5_000,
            tokens_per_doc_median: 40.0,
            min_doc_chars: 100,
            interrupted_day: None,
            ..CorpusParams::default()
        }
    }

    #[test]
    fn deterministic_generation() {
        let a: Vec<DayDocs> = CorpusGenerator::new(small_params()).collect();
        let b: Vec<DayDocs> = CorpusGenerator::new(small_params()).collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.docs, y.docs);
        }
    }

    #[test]
    fn doc_ids_are_globally_increasing() {
        let mut last = None;
        for day in CorpusGenerator::new(small_params()) {
            for doc in &day.docs {
                if let Some(prev) = last {
                    assert!(doc.id > prev);
                }
                last = Some(doc.id);
            }
        }
    }

    #[test]
    fn word_ranks_sorted_dedup_subset_of_occurrences() {
        for day in CorpusGenerator::new(small_params()) {
            for doc in &day.docs {
                let set: BTreeSet<u64> = doc.occurrences.iter().copied().collect();
                let expect: Vec<u64> = set.into_iter().collect();
                assert_eq!(doc.word_ranks, expect);
            }
        }
    }

    #[test]
    fn render_lex_round_trip() {
        let mut generator = CorpusGenerator::new(small_params());
        let day = generator.next_day().expect("one day");
        for doc in day.docs.iter().take(5) {
            let recovered = lex_rendered(doc);
            let expected: Vec<String> =
                doc.word_ranks.iter().map(|&r| word_string(r)).collect();
            let mut expected_sorted = expected.clone();
            expected_sorted.sort();
            assert_eq!(recovered, expected_sorted);
        }
    }

    #[test]
    fn char_len_matches_rendered_length() {
        let mut generator = CorpusGenerator::new(small_params());
        let day = generator.next_day().expect("one day");
        let doc = &day.docs[0];
        assert_eq!(render(doc).len(), doc.char_len);
    }

    #[test]
    fn weekly_profile_shapes_volume() {
        let p = CorpusParams { days: 14, ..CorpusParams::default() };
        // Saturday (weekday 5) must be the weekly minimum.
        let sat_day = (0..7).find(|&d| p.weekday(d) == 5).unwrap();
        let mon_day = (0..7).find(|&d| p.weekday(d) == 0).unwrap();
        assert!(p.docs_on_day(sat_day) < p.docs_on_day(mon_day));
    }

    #[test]
    fn interrupted_day_is_tiny() {
        let p = CorpusParams::default();
        let (d, _) = p.interrupted_day.unwrap();
        assert!(p.docs_on_day(d) < p.docs_on_day(d + 7) / 5);
    }

    #[test]
    fn generator_ends_after_days() {
        let mut generator = CorpusGenerator::new(small_params());
        for _ in 0..4 {
            assert!(generator.next_day().is_some());
        }
        assert!(generator.next_day().is_none());
    }

    #[test]
    fn admission_filter_rejects_short_docs() {
        let p = CorpusParams {
            min_doc_chars: 10_000, // nothing passes
            ..small_params()
        };
        let day = CorpusGenerator::new(p).next_day().unwrap();
        assert!(day.docs.is_empty());
        assert!(day.rejected > 0);
    }
}
