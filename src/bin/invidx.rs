//! `invidx` — a persistent command-line search engine over the
//! dual-structure incremental inverted index.
//!
//! ```sh
//! invidx init  ./myindex --policy "whole z prop 1.2" --disks 4
//! invidx init  ./lsm --engine segmented --l0-budget 1048576 --fanout 4
//! invidx add   ./myindex docs/*.txt            # each invocation = one batch
//! invidx search ./myindex "(cat and dog) or mouse"
//! invidx search ./myindex --stdin < queries.txt   # one engine, many queries
//! invidx phrase ./myindex "inverted lists"
//! invidx near  ./myindex cat dog 5
//! invidx like  ./myindex "incremental index updates" 5
//! invidx rank  ./myindex "incremental index updates" 5   # BM25 top-k
//! invidx show  ./myindex 3
//! invidx checkpoint ./myindex
//! invidx recover ./myindex
//! invidx stats ./myindex
//! invidx serve ./myindex --addr 127.0.0.1:7700   # TCP query server
//! ```
//!
//! New indexes are **durable**: the directory holds one file per simulated
//! disk (`disk-<N>.dat`), a write-ahead log (`wal.log`), an atomically
//! renamed checkpoint (`index.ckpt`), and a plain-text config
//! (`invidx.conf`). Every `add` is one WAL-committed batch — kill the
//! process at any point and the next command recovers to the last
//! committed batch. `init --legacy` produces the old volatile layout
//! (`disk<N>.bin` + `engine.meta` rewritten after every mutating command),
//! which existing index directories keep using.

use invidx::core::codec::PostingsCodec;
use invidx::core::index::{DualIndex, EngineKind, IndexConfig};
use invidx::core::policy::Policy;
use invidx::core::types::DocId;
use invidx::disk::{BlockDevice, Disk, DiskArray, FileDevice, FitStrategy, FreeList};
use invidx::durable::{DurableOptions, StoreGeometry};
use invidx::ir::{Bm25Params, DurableEngine, SearchEngine};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Conf {
    policy: Policy,
    disks: u16,
    blocks: u64,
    block_size: usize,
    num_buckets: usize,
    bucket_units: u64,
    block_postings: u64,
    /// Block-cache budget in device blocks (0 = cache off).
    cache_blocks: usize,
    /// Ingest worker threads used when a command doesn't override them.
    ingest_threads: usize,
    /// Storage engine: in-place dual-structure or segment-tiered.
    engine: EngineKind,
    /// Long-list postings codec (fixed at init; the superblock rejects a
    /// mismatched reopen).
    codec: PostingsCodec,
}

impl Conf {
    fn defaults() -> Self {
        Self {
            policy: Policy::balanced(),
            disks: 2,
            blocks: 250_000,
            block_size: 1024,
            num_buckets: 512,
            bucket_units: 400,
            block_postings: 50,
            cache_blocks: 0,
            ingest_threads: 1,
            engine: EngineKind::InPlace,
            codec: PostingsCodec::Plain,
        }
    }

    fn index_config(&self) -> Result<IndexConfig, String> {
        IndexConfig::builder()
            .num_buckets(self.num_buckets)
            .bucket_capacity_units(self.bucket_units)
            .block_postings(self.block_postings)
            .policy(self.policy)
            .materialize_buckets(true)
            .cache_blocks(self.cache_blocks)
            .ingest_threads(self.ingest_threads)
            .engine(self.engine)
            .postings_codec(self.codec)
            .build()
            .map_err(|e| format!("bad index configuration: {e}"))
    }

    fn geometry(&self) -> StoreGeometry {
        StoreGeometry {
            disks: self.disks,
            blocks_per_disk: self.blocks,
            block_size: self.block_size as u32,
        }
    }

    fn save(&self, dir: &Path) -> std::io::Result<()> {
        let mut text = format!(
            "policy={}\ndisks={}\nblocks={}\nblock_size={}\nnum_buckets={}\n\
             bucket_units={}\nblock_postings={}\ncache_blocks={}\ningest_threads={}\ncodec={}\n",
            self.policy.label(),
            self.disks,
            self.blocks,
            self.block_size,
            self.num_buckets,
            self.bucket_units,
            self.block_postings,
            self.cache_blocks,
            self.ingest_threads,
            self.codec
        );
        match self.engine {
            EngineKind::InPlace => text.push_str("engine=inplace\n"),
            EngineKind::Segmented { l0_budget, fanout } => {
                text.push_str(&format!("engine=segmented\nl0_budget={l0_budget}\nfanout={fanout}\n"));
            }
        }
        std::fs::write(dir.join("invidx.conf"), text)
    }

    fn load(dir: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(dir.join("invidx.conf"))
            .map_err(|e| format!("not an index directory ({e})"))?;
        let mut conf = Self::defaults();
        for line in text.lines() {
            let Some((k, v)) = line.split_once('=') else { continue };
            match k {
                "policy" => conf.policy = v.parse()?,
                "disks" => conf.disks = v.parse().map_err(|e| format!("disks: {e}"))?,
                "blocks" => conf.blocks = v.parse().map_err(|e| format!("blocks: {e}"))?,
                "block_size" => {
                    conf.block_size = v.parse().map_err(|e| format!("block_size: {e}"))?
                }
                "num_buckets" => {
                    conf.num_buckets = v.parse().map_err(|e| format!("num_buckets: {e}"))?
                }
                "bucket_units" => {
                    conf.bucket_units = v.parse().map_err(|e| format!("bucket_units: {e}"))?
                }
                "block_postings" => {
                    conf.block_postings = v.parse().map_err(|e| format!("block_postings: {e}"))?
                }
                "cache_blocks" => {
                    conf.cache_blocks = v.parse().map_err(|e| format!("cache_blocks: {e}"))?
                }
                "ingest_threads" => {
                    conf.ingest_threads = v.parse().map_err(|e| format!("ingest_threads: {e}"))?
                }
                "codec" => {
                    conf.codec = PostingsCodec::parse(v).map_err(|e| format!("codec: {e}"))?
                }
                "engine" => {
                    conf.engine = match v {
                        "inplace" => EngineKind::InPlace,
                        "segmented" => EngineKind::segmented(),
                        other => return Err(format!("unknown engine {other:?}")),
                    }
                }
                "l0_budget" => {
                    let budget: u64 = v.parse().map_err(|e| format!("l0_budget: {e}"))?;
                    match &mut conf.engine {
                        EngineKind::Segmented { l0_budget, .. } => *l0_budget = budget,
                        EngineKind::InPlace => {
                            return Err("l0_budget requires engine=segmented".into())
                        }
                    }
                }
                "fanout" => {
                    let n: u32 = v.parse().map_err(|e| format!("fanout: {e}"))?;
                    match &mut conf.engine {
                        EngineKind::Segmented { fanout, .. } => *fanout = n,
                        EngineKind::InPlace => {
                            return Err("fanout requires engine=segmented".into())
                        }
                    }
                }
                _ => return Err(format!("unknown config key {k:?}")),
            }
        }
        Ok(conf)
    }
}

/// A durable store directory carries its checkpoint file; the legacy
/// layout never has one.
fn is_durable(dir: &Path) -> bool {
    dir.join("index.ckpt").exists()
}

fn device_array(dir: &Path, conf: &Conf, create: bool) -> Result<DiskArray, String> {
    let disks = (0..conf.disks)
        .map(|d| {
            let path = dir.join(format!("disk{d}.bin"));
            let device: Box<dyn BlockDevice> = if create {
                Box::new(
                    FileDevice::create(&path, conf.blocks, conf.block_size)
                        .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
                )
            } else {
                Box::new(
                    FileDevice::open(&path, conf.block_size)
                        .map_err(|e| format!("cannot open {}: {e}", path.display()))?,
                )
            };
            Ok(Disk {
                device,
                alloc: Box::new(FreeList::new(conf.blocks, FitStrategy::FirstFit)),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(DiskArray::new(disks))
}

/// The engine behind a CLI index directory: WAL-backed for durable stores,
/// `engine.meta`-backed for legacy ones.
enum Engine {
    Legacy(Box<SearchEngine>),
    Durable(Box<DurableEngine>),
}

impl Engine {
    fn add_document(&mut self, text: &str) -> Result<DocId, String> {
        match self {
            Self::Legacy(e) => e.add_document(text).map_err(|e| e.to_string()),
            Self::Durable(e) => e.add_document(text).map_err(|e| e.to_string()),
        }
    }

    fn add_documents(&mut self, texts: &[&str]) -> Result<Vec<DocId>, String> {
        match self {
            Self::Legacy(e) => e.add_documents(texts).map_err(|e| e.to_string()),
            Self::Durable(e) => e.add_documents(texts).map_err(|e| e.to_string()),
        }
    }

    fn flush(&mut self) -> Result<invidx::core::index::BatchReport, String> {
        match self {
            Self::Legacy(e) => e.flush().map_err(|e| e.to_string()),
            Self::Durable(e) => e.flush().map_err(|e| e.to_string()),
        }
    }

    fn boolean_str(&self, query: &str) -> Result<invidx::core::postings::PostingList, String> {
        match self {
            Self::Legacy(e) => e.boolean_str(query).map_err(|e| e.to_string()),
            Self::Durable(e) => e.boolean_str(query).map_err(|e| e.to_string()),
        }
    }

    fn phrase(&self, phrase: &str) -> Result<invidx::core::postings::PostingList, String> {
        match self {
            Self::Legacy(e) => e.phrase(phrase).map_err(|e| e.to_string()),
            Self::Durable(e) => e.phrase(phrase).map_err(|e| e.to_string()),
        }
    }

    fn within(
        &self,
        w1: &str,
        w2: &str,
        window: u32,
    ) -> Result<invidx::core::postings::PostingList, String> {
        match self {
            Self::Legacy(e) => e.within(w1, w2, window).map_err(|e| e.to_string()),
            Self::Durable(e) => e.within(w1, w2, window).map_err(|e| e.to_string()),
        }
    }

    fn more_like_this(&self, text: &str, k: usize) -> Result<Vec<invidx::ir::Hit>, String> {
        match self {
            Self::Legacy(e) => e.more_like_this(text, k).map_err(|e| e.to_string()),
            Self::Durable(e) => e.more_like_this(text, k).map_err(|e| e.to_string()),
        }
    }

    fn rank(&self, text: &str, k: usize, params: Bm25Params) -> Result<Vec<invidx::ir::Hit>, String> {
        match self {
            Self::Legacy(e) => e.rank(text, k, params).map_err(|e| e.to_string()),
            Self::Durable(e) => e.rank(text, k, params).map_err(|e| e.to_string()),
        }
    }

    fn document(&self, doc: DocId) -> Result<Option<String>, String> {
        match self {
            Self::Legacy(e) => e.document(doc).map_err(|e| e.to_string()),
            Self::Durable(e) => e.document(doc).map_err(|e| e.to_string()),
        }
    }

    fn compact(&mut self) -> Result<invidx::core::index::CompactReport, String> {
        match self {
            Self::Legacy(e) => e.index_mut().compact().map_err(|e| e.to_string()),
            Self::Durable(e) => e.compact().map_err(|e| e.to_string()),
        }
    }

    fn total_docs(&self) -> u64 {
        match self {
            Self::Legacy(e) => e.total_docs(),
            Self::Durable(e) => e.total_docs(),
        }
    }

    fn vocabulary_size(&self) -> usize {
        match self {
            Self::Legacy(e) => e.vocabulary_size(),
            Self::Durable(e) => e.vocabulary_size(),
        }
    }

    /// The core dual-structure index (stats, gauges). For segmented
    /// engines this is the L0 index; sealed segments live above it.
    fn core_index(&self) -> &DualIndex {
        match self {
            Self::Legacy(e) => e.index(),
            Self::Durable(e) => e.index().inner(),
        }
    }

    /// Tiered-store summary; `None` on in-place engines.
    fn segment_stats(&self) -> Option<invidx::segment::SegmentStats> {
        match self {
            Self::Legacy(e) => e.segment_stats(),
            Self::Durable(e) => e.segment_stats(),
        }
    }
}

fn open_engine(dir: &Path) -> Result<(Engine, Conf), String> {
    open_engine_with(dir, DurableOptions::default(), None)
}

fn open_engine_with(
    dir: &Path,
    options: DurableOptions,
    ingest_threads: Option<usize>,
) -> Result<(Engine, Conf), String> {
    let mut conf = Conf::load(dir)?;
    if let Some(threads) = ingest_threads {
        conf.ingest_threads = threads;
    }
    if is_durable(dir) {
        let engine = DurableEngine::open(dir, conf.index_config()?, options)
            .map_err(|e| format!("cannot recover index: {e}"))?;
        return Ok((Engine::Durable(Box::new(engine)), conf));
    }
    let meta = std::fs::read(dir.join("engine.meta"))
        .map_err(|e| format!("cannot read engine.meta: {e}"))?;
    let array = device_array(dir, &conf, false)?;
    let engine = SearchEngine::open(array, conf.index_config()?, &meta)
        .map_err(|e| format!("cannot open index: {e}"))?;
    Ok((Engine::Legacy(Box::new(engine)), conf))
}

/// Make the engine state survive the process: legacy engines rewrite
/// `engine.meta`; durable engines already committed through the WAL.
fn persist(dir: &Path, engine: &Engine) -> Result<(), String> {
    match engine {
        Engine::Legacy(e) => std::fs::write(dir.join("engine.meta"), e.save_meta())
            .map_err(|e| format!("cannot write engine.meta: {e}")),
        Engine::Durable(_) => Ok(()),
    }
}

/// A CLI index directory wired into the serving layer: queries fan out to
/// whichever engine variant lives in the directory, and every served
/// `FLUSH` also persists legacy metadata so the TCP write path offers the
/// same durability as the corresponding CLI command.
struct ServedEngine {
    engine: Engine,
    dir: PathBuf,
}

impl invidx::serve::ServeEngine for ServedEngine {
    fn execute(
        &self,
        query: &invidx::ir::EngineQuery,
    ) -> invidx::core::Result<invidx::ir::QueryOutput> {
        match &self.engine {
            Engine::Legacy(e) => e.execute(query),
            Engine::Durable(e) => e.execute(query),
        }
    }

    fn add_document(&mut self, text: &str) -> Result<DocId, String> {
        self.engine.add_document(text)
    }

    fn flush(&mut self) -> Result<invidx::core::index::BatchReport, String> {
        let report = self.engine.flush()?;
        persist(&self.dir, &self.engine)?;
        Ok(report)
    }

    fn checkpoint(&mut self) -> Result<Option<u64>, String> {
        match &mut self.engine {
            Engine::Legacy(_) => Ok(None),
            Engine::Durable(e) => e.checkpoint().map(Some).map_err(|e| e.to_string()),
        }
    }

    fn block_cache_stats(&self) -> Option<invidx::core::cache::CacheStats> {
        match &self.engine {
            Engine::Legacy(e) => e.cache_stats(),
            Engine::Durable(e) => e.cache_stats(),
        }
    }

    fn wal_bytes(&self) -> Option<u64> {
        match &self.engine {
            Engine::Legacy(_) => None,
            Engine::Durable(e) => Some(e.index().wal_size()),
        }
    }

    fn batches(&self) -> u64 {
        self.engine.core_index().batches()
    }

    fn snapshot(
        &mut self,
        prev: Option<&invidx::ir::EngineSnapshot>,
    ) -> Result<invidx::ir::EngineSnapshot, String> {
        match &mut self.engine {
            Engine::Legacy(e) => e.snapshot(prev).map_err(|e| e.to_string()),
            Engine::Durable(e) => e.snapshot(prev).map_err(|e| e.to_string()),
        }
    }

    fn total_docs(&self) -> u64 {
        self.engine.total_docs()
    }

    fn vocabulary_size(&self) -> usize {
        self.engine.vocabulary_size()
    }
}

/// Serve the index over TCP until killed: line protocol, bounded admission
/// queue, epoch-invalidated result cache (see `crates/serve`).
fn cmd_serve(dir: &Path, args: &[String]) -> Result<(), String> {
    use invidx::serve::{QueryService, ServeConfig, Server};
    let mut addr = "127.0.0.1:7700".to_string();
    let mut builder = ServeConfig::builder();
    let mut events: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |flag: &str| {
            args.get(i + 1).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match args[i].as_str() {
            "--addr" => addr = value("--addr")?,
            "--readers" => {
                builder = builder
                    .readers(value("--readers")?.parse().map_err(|e| format!("readers: {e}"))?)
            }
            "--high-water" => {
                builder = builder.high_water(
                    value("--high-water")?.parse().map_err(|e| format!("high-water: {e}"))?,
                )
            }
            "--deadline-ms" => {
                let ms: u64 =
                    value("--deadline-ms")?.parse().map_err(|e| format!("deadline-ms: {e}"))?;
                builder = builder.deadline(std::time::Duration::from_millis(ms));
            }
            "--cache" => {
                builder = builder.result_cache_capacity(
                    value("--cache")?.parse().map_err(|e| format!("cache: {e}"))?,
                )
            }
            "--trace-sample" => {
                builder = builder.trace_sample(
                    value("--trace-sample")?
                        .parse()
                        .map_err(|e| format!("trace-sample: {e}"))?,
                )
            }
            "--slow-ms" => {
                builder = builder
                    .slow_query_ms(value("--slow-ms")?.parse().map_err(|e| format!("slow-ms: {e}"))?)
            }
            "--slo-target-ms" => {
                builder = builder.slo_target_ms(
                    value("--slo-target-ms")?
                        .parse()
                        .map_err(|e| format!("slo-target-ms: {e}"))?,
                )
            }
            "--slo-objective-ppm" => {
                builder = builder.slo_objective_ppm(
                    value("--slo-objective-ppm")?
                        .parse()
                        .map_err(|e| format!("slo-objective-ppm: {e}"))?,
                )
            }
            "--events" => events = Some(PathBuf::from(value("--events")?)),
            other => return Err(format!("unknown serve option {other:?}")),
        }
        i += 2;
    }
    if let Some(path) = &events {
        invidx::obs::init_event_sink(path)
            .map_err(|e| format!("cannot open event sink {}: {e}", path.display()))?;
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let (engine, _) = open_engine(dir)?;
    let durability = match &engine {
        Engine::Legacy(_) => "legacy: engine.meta rewritten on every FLUSH",
        Engine::Durable(_) => "durable: WAL + CHECKPOINT verb available",
    };
    let served = ServedEngine { engine, dir: dir.to_path_buf() };
    println!(
        "serving {} ({} docs, {} words; {durability})",
        dir.display(),
        invidx::serve::ServeEngine::total_docs(&served),
        invidx::serve::ServeEngine::vocabulary_size(&served),
    );
    // Anchor serving epochs at the store's committed batch count so they
    // stay comparable across restarts (and with any replica tailing us).
    let epoch = invidx::serve::ServeEngine::batches(&served);
    let service = std::sync::Arc::new(
        QueryService::with_config_at(served, config, epoch).map_err(|e| e.to_string())?,
    );
    let server = Server::bind(&addr, service, config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "listening on {} ({} readers, high-water {}, deadline {} ms, cache {})",
        server.addr(),
        config.readers,
        config.high_water,
        config.deadline.as_millis(),
        config.result_cache_capacity,
    );
    println!(
        "telemetry: trace 1/{} (0 = off), slow-query {} ms, SLO {} ms @ {} ppm{}",
        config.trace_sample,
        config.slow_query_ms,
        config.slo_target_ms,
        config.slo_objective_ppm,
        events.as_deref().map(|p| format!(", events -> {}", p.display())).unwrap_or_default(),
    );
    println!("protocol: QUERY | PHRASE | NEAR | LIKE | RANK | DOC | STATS | METRICS | PING | ADD | FLUSH | CHECKPOINT | QUIT");
    println!(
        "try:      printf 'QUERY cat and dog\\nQUIT\\n' | nc {} {}",
        server.addr().ip(),
        server.addr().port()
    );
    // Serve until the process is killed; connection threads do the work.
    loop {
        std::thread::park();
    }
}

/// Create a sharded deployment: a `router.conf` naming the partitioner
/// plus one full durable index directory per shard under `shard-<N>/`.
fn cmd_shard_init(dir: &Path, args: &[String]) -> Result<(), String> {
    use invidx::router::Partitioner;
    let mut conf = Conf::defaults();
    let mut shards = 2usize;
    let mut scheme = "range".to_string();
    let mut chunk = 1u64;
    let mut i = 0;
    while i < args.len() {
        let value = |flag: &str| {
            args.get(i + 1).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match args[i].as_str() {
            "--shards" => {
                shards = value("--shards")?.parse().map_err(|e| format!("shards: {e}"))?
            }
            "--partition" => scheme = value("--partition")?,
            "--chunk" => chunk = value("--chunk")?.parse().map_err(|e| format!("chunk: {e}"))?,
            "--policy" => conf.policy = value("--policy")?.parse()?,
            "--disks" => {
                conf.disks = value("--disks")?.parse().map_err(|e| format!("disks: {e}"))?
            }
            "--blocks" => {
                conf.blocks = value("--blocks")?.parse().map_err(|e| format!("blocks: {e}"))?
            }
            "--block-size" => {
                conf.block_size =
                    value("--block-size")?.parse().map_err(|e| format!("block-size: {e}"))?
            }
            "--codec" => {
                conf.codec =
                    PostingsCodec::parse(&value("--codec")?).map_err(|e| format!("codec: {e}"))?
            }
            other => return Err(format!("unknown shard-init option {other:?}")),
        }
        i += 2;
    }
    let partitioner = match scheme.as_str() {
        "range" => Partitioner::Range { shards, chunk },
        "hash" => Partitioner::Hash { shards },
        other => return Err(format!("unknown partition scheme {other:?} (range | hash)")),
    };
    partitioner.validate().map_err(|e| e.to_string())?;
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    if dir.join("router.conf").exists() {
        return Err(format!("{} is already a sharded deployment", dir.display()));
    }
    for shard in 0..shards {
        let shard_dir = dir.join(format!("shard-{shard}"));
        std::fs::create_dir_all(&shard_dir).map_err(|e| e.to_string())?;
        DurableEngine::create(
            &shard_dir,
            conf.index_config()?,
            conf.geometry(),
            DurableOptions::default(),
        )
        .map_err(|e| format!("cannot create shard {shard}: {e}"))?;
        conf.save(&shard_dir).map_err(|e| e.to_string())?;
    }
    std::fs::write(dir.join("router.conf"), format!("partition={}\n", partitioner.to_wire()))
        .map_err(|e| e.to_string())?;
    println!(
        "initialized {} ({shards} shards, '{}' partitioning, durable stores under shard-N/)",
        dir.display(),
        partitioner.to_wire(),
    );
    Ok(())
}

/// Serve a sharded deployment until killed: per-shard durable primaries
/// shipping their WAL to in-process read replicas, fronted by the
/// scatter-gather router speaking the routed line protocol
/// (`OK <e0,e1,...> <payload>`).
fn cmd_route(dir: &Path, args: &[String]) -> Result<(), String> {
    use invidx::router::{
        LocalShard, Partitioner, ReadPolicy, ReplicaSet, ReplicaTailer, Router, RouterServer,
        ShardBackend, TailerOptions,
    };
    use invidx::serve::{QueryService, ServeConfig, ServeEngine, Server};
    use std::sync::Arc;
    use std::time::Duration;
    let mut addr = "127.0.0.1:7800".to_string();
    let mut replicas = 1usize;
    let mut deadline_ms = 2_000u64;
    let mut hedge_ms = 250u64;
    let mut attempts = 2usize;
    let mut poll_ms = 20u64;
    let mut cache = 1024usize;
    let mut i = 0;
    while i < args.len() {
        let value = |flag: &str| {
            args.get(i + 1).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match args[i].as_str() {
            "--addr" => addr = value("--addr")?,
            "--replicas" => {
                replicas = value("--replicas")?.parse().map_err(|e| format!("replicas: {e}"))?
            }
            "--deadline-ms" => {
                deadline_ms =
                    value("--deadline-ms")?.parse().map_err(|e| format!("deadline-ms: {e}"))?
            }
            "--hedge-ms" => {
                hedge_ms = value("--hedge-ms")?.parse().map_err(|e| format!("hedge-ms: {e}"))?
            }
            "--attempts" => {
                attempts = value("--attempts")?.parse().map_err(|e| format!("attempts: {e}"))?
            }
            "--poll-ms" => {
                poll_ms = value("--poll-ms")?.parse().map_err(|e| format!("poll-ms: {e}"))?
            }
            "--cache" => cache = value("--cache")?.parse().map_err(|e| format!("cache: {e}"))?,
            other => return Err(format!("unknown route option {other:?}")),
        }
        i += 2;
    }
    let spec = std::fs::read_to_string(dir.join("router.conf"))
        .map_err(|e| format!("not a sharded deployment ({e})"))?;
    let partitioner = spec
        .lines()
        .find_map(|line| line.strip_prefix("partition="))
        .ok_or_else(|| "router.conf has no partition= line".to_string())
        .and_then(|v| Partitioner::parse(v).map_err(|e| e.to_string()))?;
    let shards = partitioner.shards();
    let config =
        ServeConfig::builder().result_cache_capacity(cache).build().map_err(|e| e.to_string())?;
    // Primaries ship their WAL, so checkpoints stay off while routing —
    // a checkpoint would reset the log the replicas tail.
    let ship = DurableOptions { checkpoint_every: 0, ..DurableOptions::default() };
    let mut writers = Vec::with_capacity(shards);
    let mut primary_servers = Vec::with_capacity(shards);
    for shard in 0..shards {
        let shard_dir = dir.join(format!("shard-{shard}"));
        let conf = Conf::load(&shard_dir)?;
        let engine = DurableEngine::open(&shard_dir, conf.index_config()?, ship)
            .map_err(|e| format!("cannot open shard {shard}: {e}"))?;
        let epoch = ServeEngine::batches(&engine);
        let service = Arc::new(
            QueryService::with_config_at(engine, config, epoch).map_err(|e| e.to_string())?,
        );
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service), config)
            .map_err(|e| format!("shard {shard} primary server: {e}"))?;
        writers.push(service);
        primary_servers.push(server);
    }
    // Each replica is its own durable store under the shard directory,
    // kept caught up by tailing the primary's WALTAIL endpoint; the
    // primary itself closes every replica set as the fallback read.
    let mut tailers = Vec::new();
    let mut readers = Vec::with_capacity(shards);
    for shard in 0..shards {
        let shard_dir = dir.join(format!("shard-{shard}"));
        let conf = Conf::load(&shard_dir)?;
        let mut backends: Vec<Arc<dyn ShardBackend>> = Vec::new();
        for r in 0..replicas {
            let rdir = shard_dir.join(format!("replica-{r}"));
            let engine = if is_durable(&rdir) {
                DurableEngine::open(&rdir, conf.index_config()?, ship)
            } else {
                std::fs::create_dir_all(&rdir).map_err(|e| e.to_string())?;
                DurableEngine::create(&rdir, conf.index_config()?, conf.geometry(), ship)
            }
            .map_err(|e| format!("shard {shard} replica {r}: {e}"))?;
            let epoch = ServeEngine::batches(&engine);
            let service = Arc::new(
                QueryService::with_config_at(engine, config, epoch).map_err(|e| e.to_string())?,
            );
            tailers.push(ReplicaTailer::start(
                Arc::clone(&service),
                primary_servers[shard].addr(),
                TailerOptions {
                    poll: Duration::from_millis(poll_ms),
                    timeout: Duration::from_secs(2),
                    shard,
                },
            ));
            backends.push(Arc::new(LocalShard::new(service, format!("shard-{shard}/replica-{r}"))));
        }
        backends.push(Arc::new(LocalShard::new(
            Arc::clone(&writers[shard]),
            format!("shard-{shard}/primary"),
        )));
        readers.push(ReplicaSet::new(backends).map_err(|e| e.to_string())?);
    }
    let policy = ReadPolicy {
        deadline: Duration::from_millis(deadline_ms),
        hedge_after: (hedge_ms > 0).then(|| Duration::from_millis(hedge_ms)),
        max_attempts: attempts,
    };
    let router =
        Arc::new(Router::new(writers, readers, partitioner, policy).map_err(|e| e.to_string())?);
    println!(
        "routing {} ({shards} shards x {replicas} replica(s), '{}' partitioning, {} docs)",
        dir.display(),
        partitioner.to_wire(),
        router.total_docs(),
    );
    let server =
        RouterServer::bind(&addr, router).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "listening on {} (deadline {deadline_ms} ms, hedge {} , attempts {attempts})",
        server.addr(),
        if hedge_ms > 0 { format!("{hedge_ms} ms") } else { "off".into() },
    );
    println!("protocol: QUERY | PHRASE | NEAR | LIKE | RANK | DF | WLIKE | WRANK | DOC | STATS | METRICS | PING | ADD | FLUSH | QUIT");
    println!(
        "try:      printf 'QUERY cat and dog\\nQUIT\\n' | nc {} {}",
        server.addr().ip(),
        server.addr().port()
    );
    // Route until the process is killed; `tailers` stays alive here so
    // the replicas keep catching up in the background.
    let _tailers = tailers;
    loop {
        std::thread::park();
    }
}

fn cmd_init(dir: &Path, args: &[String]) -> Result<(), String> {
    let mut conf = Conf::defaults();
    let mut legacy = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--policy" => {
                conf.policy = args.get(i + 1).ok_or("--policy needs a value")?.parse()?;
                i += 2;
            }
            "--disks" => {
                conf.disks =
                    args.get(i + 1).ok_or("--disks needs a value")?.parse().map_err(|e| {
                        format!("disks: {e}")
                    })?;
                i += 2;
            }
            "--blocks" => {
                conf.blocks = args
                    .get(i + 1)
                    .ok_or("--blocks needs a value")?
                    .parse()
                    .map_err(|e| format!("blocks: {e}"))?;
                i += 2;
            }
            "--block-size" => {
                conf.block_size = args
                    .get(i + 1)
                    .ok_or("--block-size needs a value")?
                    .parse()
                    .map_err(|e| format!("block-size: {e}"))?;
                i += 2;
            }
            "--cache-blocks" => {
                conf.cache_blocks = args
                    .get(i + 1)
                    .ok_or("--cache-blocks needs a value")?
                    .parse()
                    .map_err(|e| format!("cache-blocks: {e}"))?;
                i += 2;
            }
            "--ingest-threads" => {
                conf.ingest_threads = args
                    .get(i + 1)
                    .ok_or("--ingest-threads needs a value")?
                    .parse()
                    .map_err(|e| format!("ingest-threads: {e}"))?;
                i += 2;
            }
            "--codec" => {
                conf.codec =
                    PostingsCodec::parse(args.get(i + 1).ok_or("--codec needs a value")?)
                        .map_err(|e| format!("codec: {e}"))?;
                i += 2;
            }
            "--engine" => {
                conf.engine = match args.get(i + 1).ok_or("--engine needs a value")?.as_str() {
                    "inplace" => EngineKind::InPlace,
                    "segmented" => match conf.engine {
                        seg @ EngineKind::Segmented { .. } => seg,
                        EngineKind::InPlace => EngineKind::segmented(),
                    },
                    other => {
                        return Err(format!("unknown engine {other:?} (inplace | segmented)"))
                    }
                };
                i += 2;
            }
            "--l0-budget" => {
                let budget: u64 = args
                    .get(i + 1)
                    .ok_or("--l0-budget needs a byte count")?
                    .parse()
                    .map_err(|e| format!("l0-budget: {e}"))?;
                conf.engine = match conf.engine {
                    EngineKind::Segmented { fanout, .. } => {
                        EngineKind::Segmented { l0_budget: budget, fanout }
                    }
                    EngineKind::InPlace => EngineKind::Segmented {
                        l0_budget: budget,
                        fanout: EngineKind::DEFAULT_FANOUT,
                    },
                };
                i += 2;
            }
            "--fanout" => {
                let n: u32 = args
                    .get(i + 1)
                    .ok_or("--fanout needs a segment count")?
                    .parse()
                    .map_err(|e| format!("fanout: {e}"))?;
                conf.engine = match conf.engine {
                    EngineKind::Segmented { l0_budget, .. } => {
                        EngineKind::Segmented { l0_budget, fanout: n }
                    }
                    EngineKind::InPlace => EngineKind::Segmented {
                        l0_budget: EngineKind::DEFAULT_L0_BUDGET,
                        fanout: n,
                    },
                };
                i += 2;
            }
            "--legacy" => {
                legacy = true;
                i += 1;
            }
            other => return Err(format!("unknown init option {other:?}")),
        }
    }
    if legacy && matches!(conf.engine, EngineKind::Segmented { .. }) {
        return Err("the segmented engine needs the durable layout; drop --legacy".into());
    }
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    if dir.join("invidx.conf").exists() {
        return Err(format!("{} is already an index", dir.display()));
    }
    let mode = if legacy {
        let array = device_array(dir, &conf, true)?;
        let mut engine = SearchEngine::create(array, conf.index_config()?)
            .map_err(|e| format!("cannot create index: {e}"))?;
        // An empty first flush establishes the superblock/recovery point.
        engine.flush().map_err(|e| format!("initial flush: {e}"))?;
        persist(dir, &Engine::Legacy(Box::new(engine)))?;
        "legacy (engine.meta)"
    } else {
        // Creation writes the batch-0 checkpoint, so the store is already
        // recoverable before the first add.
        DurableEngine::create(dir, conf.index_config()?, conf.geometry(), DurableOptions::default())
            .map_err(|e| format!("cannot create index: {e}"))?;
        "durable (WAL + checkpoints)"
    };
    conf.save(dir).map_err(|e| e.to_string())?;
    let engine = match conf.engine {
        EngineKind::InPlace => "in-place".to_string(),
        EngineKind::Segmented { l0_budget, fanout } => {
            format!("segmented, l0 {l0_budget} B, fanout {fanout}")
        }
    };
    println!(
        "initialized {} ({} disks x {} blocks x {} B, policy '{}', {engine}, {mode})",
        dir.display(),
        conf.disks,
        conf.blocks,
        conf.block_size,
        conf.policy
    );
    Ok(())
}

fn cmd_add(dir: &Path, args: &[String]) -> Result<(), String> {
    let mut threads =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let mut files: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ingest-threads" => {
                threads = args
                    .get(i + 1)
                    .ok_or("--ingest-threads needs a value")?
                    .parse()
                    .map_err(|e| format!("ingest-threads: {e}"))?;
                if threads == 0 {
                    return Err("--ingest-threads must be at least 1".into());
                }
                i += 2;
            }
            f => {
                files.push(&args[i]);
                let _ = f;
                i += 1;
            }
        }
    }
    if files.is_empty() {
        return Err("add needs at least one file".into());
    }
    // Parallel batches overlap the WAL fsync with the in-place apply; a
    // single-threaded add keeps the fully sequential commit path.
    let options = DurableOptions::builder()
        .pipelined_wal(threads > 1)
        .build()
        .map_err(|e| format!("durable options: {e}"))?;
    let (mut engine, _) = open_engine_with(dir, options, Some(threads))?;
    let mut texts = Vec::with_capacity(files.len());
    for f in files.iter() {
        texts.push(std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?);
    }
    let refs: Vec<&str> = texts.iter().map(|t| t.as_str()).collect();
    let docs = engine.add_documents(&refs).map_err(|e| e.to_string())?;
    for (f, doc) in files.iter().zip(&docs) {
        println!("{f} -> doc {}", doc.0);
    }
    let report = engine.flush().map_err(|e| format!("flush: {e}"))?;
    persist(dir, &engine)?;
    println!(
        "batch {}: {} words ({} new), {} postings, {} evictions to long lists",
        report.batch, report.words, report.new_words, report.postings, report.evictions
    );
    Ok(())
}

fn cmd_search(dir: &Path, query: &str) -> Result<(), String> {
    let (engine, _) = open_engine(dir)?;
    let hits = engine.boolean_str(query).map_err(|e| format!("query: {e}"))?;
    print_docs(hits.docs());
    Ok(())
}

/// Batch query mode: recover/open the engine once, then run every line of
/// stdin as a boolean query against it. Opening the engine dominates the
/// cost of a single query, so this is the way to run query workloads from
/// the shell; one result line per query, tab-separated for scripting.
fn cmd_search_stdin(dir: &Path) -> Result<(), String> {
    use std::io::BufRead;
    let (engine, _) = open_engine(dir)?;
    let started = std::time::Instant::now();
    let mut queries = 0u64;
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let query = line.trim();
        if query.is_empty() || query.starts_with('#') {
            continue;
        }
        queries += 1;
        match engine.boolean_str(query) {
            Ok(hits) if hits.docs().is_empty() => println!("{query}\t-"),
            Ok(hits) => println!(
                "{query}\t{}",
                hits.docs().iter().map(|d| d.0.to_string()).collect::<Vec<_>>().join(",")
            ),
            Err(e) => println!("{query}\terror: {e}"),
        }
    }
    eprintln!(
        "{queries} queries in {:.1} ms (one engine open)",
        started.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn cmd_phrase(dir: &Path, phrase: &str) -> Result<(), String> {
    let (engine, _) = open_engine(dir)?;
    let hits = engine.phrase(phrase).map_err(|e| format!("query: {e}"))?;
    print_docs(hits.docs());
    Ok(())
}

fn cmd_near(dir: &Path, w1: &str, w2: &str, window: &str) -> Result<(), String> {
    let window: u32 = window.parse().map_err(|e| format!("window: {e}"))?;
    let (engine, _) = open_engine(dir)?;
    let hits = engine.within(w1, w2, window).map_err(|e| format!("query: {e}"))?;
    print_docs(hits.docs());
    Ok(())
}

fn cmd_like(dir: &Path, text: &str, k: Option<&String>) -> Result<(), String> {
    let k: usize = k.map(|s| s.parse()).transpose().map_err(|e| format!("k: {e}"))?.unwrap_or(10);
    let (engine, _) = open_engine(dir)?;
    let hits = engine.more_like_this(text, k).map_err(|e| format!("query: {e}"))?;
    if hits.is_empty() {
        println!("no matches");
    }
    for h in hits {
        println!("doc {}\tscore {:.3}", h.doc.0, h.score);
    }
    Ok(())
}

/// BM25 ranked top-k (WAND early termination; see `crates/ir/src/rank.rs`).
fn cmd_rank(dir: &Path, text: &str, k: Option<&String>) -> Result<(), String> {
    let k: usize = k.map(|s| s.parse()).transpose().map_err(|e| format!("k: {e}"))?.unwrap_or(10);
    let (engine, _) = open_engine(dir)?;
    let hits = engine.rank(text, k, Bm25Params::default()).map_err(|e| format!("query: {e}"))?;
    if hits.is_empty() {
        println!("no matches");
    }
    for h in hits {
        println!("doc {}\tscore {:.3}", h.doc.0, h.score);
    }
    Ok(())
}

fn cmd_show(dir: &Path, id: &str) -> Result<(), String> {
    let id: u32 = id.parse().map_err(|e| format!("doc id: {e}"))?;
    let (engine, _) = open_engine(dir)?;
    match engine.document(DocId(id)).map_err(|e| format!("load: {e}"))? {
        Some(text) => println!("{text}"),
        None => println!("doc {id} not found"),
    }
    Ok(())
}

fn cmd_compact(dir: &Path) -> Result<(), String> {
    let (mut engine, _) = open_engine(dir)?;
    let report = engine.compact().map_err(|e| format!("compact: {e}"))?;
    persist(dir, &engine)?;
    println!(
        "compacted {} long lists: {} -> {} chunks, {} blocks freed",
        report.lists_rewritten, report.chunks_before, report.chunks_after, report.blocks_freed
    );
    Ok(())
}

/// Force a checkpoint now: snapshot the index + engine state and reset the
/// WAL, so the next open restores without replay.
fn cmd_checkpoint(dir: &Path) -> Result<(), String> {
    let (engine, _) = open_engine(dir)?;
    let Engine::Durable(mut engine) = engine else {
        return Err("legacy index: checkpoints need a durable store (re-init without --legacy)"
            .into());
    };
    let bytes = engine.checkpoint().map_err(|e| format!("checkpoint: {e}"))?;
    println!(
        "checkpoint at batch {} ({bytes} B); WAL reset to {} B",
        engine.index().last_checkpoint_batch(),
        engine.index().wal_size()
    );
    Ok(())
}

/// Run recovery explicitly and report what it did. Every command on a
/// durable store recovers on open; this one just shows the numbers — after
/// a crash, `invidx recover` tells you how much WAL was replayed and
/// whether a torn tail was truncated.
fn cmd_recover(dir: &Path) -> Result<(), String> {
    let (engine, _) = open_engine(dir)?;
    let Engine::Durable(engine) = engine else {
        return Err("legacy index: nothing to recover (no WAL); durable stores only".into());
    };
    let info = engine.recovery().copied().unwrap_or_default();
    println!("checkpoint batch    {}", info.checkpoint_batch);
    println!("replayed records    {}", info.replayed_records);
    println!("skipped records     {}", info.skipped_records);
    println!("truncated bytes     {}", info.truncated_bytes);
    println!(
        "recovered: {} docs, {} words, batch {}",
        engine.total_docs(),
        engine.vocabulary_size(),
        engine.index().inner().batches()
    );
    Ok(())
}

fn cmd_stats(dir: &Path, metrics: bool) -> Result<(), String> {
    let (engine, conf) = open_engine(dir)?;
    let ix = engine.core_index();
    let d = ix.directory();
    println!("policy              {}", conf.policy);
    match conf.engine {
        EngineKind::InPlace => println!("engine              in-place"),
        EngineKind::Segmented { l0_budget, fanout } => {
            println!("engine              segmented (l0 budget {l0_budget} B, fanout {fanout})")
        }
    }
    match &engine {
        Engine::Legacy(_) => println!("durability          legacy (engine.meta)"),
        Engine::Durable(e) => {
            println!("durability          WAL + checkpoints");
            println!("wal size            {} B", e.index().wal_size());
            println!("last checkpoint     batch {}", e.index().last_checkpoint_batch());
        }
    }
    if let Some(ss) = engine.segment_stats() {
        println!("manifest generation {}", ss.generation);
        println!("sealed segments     {}", ss.segments);
        for (level, count, blocks) in &ss.levels {
            println!("  level {level:<3}         {count} segments, {blocks} blocks");
        }
        println!("segment postings    {}", ss.segment_postings);
        println!("segment blocks      {}", ss.segment_blocks);
        println!("l0 stored bytes     {}", ss.l0_bytes);
        println!("seals / merges      {} / {}", ss.seals, ss.merges);
        println!(
            "write amplification {:.2}",
            ss.write_amplification(conf.block_size)
        );
    }
    println!("documents           {}", engine.total_docs());
    println!("vocabulary          {}", engine.vocabulary_size());
    println!("batches flushed     {}", ix.batches());
    println!("short words         {}", ix.buckets().total_words());
    println!("short postings      {}", ix.buckets().total_postings());
    println!("long words          {}", d.num_words());
    println!("long postings       {}", d.total_postings());
    println!("long chunks         {}", d.total_chunks());
    println!("postings codec      {}", conf.codec);
    let raw = d.total_postings() * 4;
    let stored = d.total_stored_bytes();
    println!(
        "postings bytes      {raw} raw / {stored} stored ({:.2}x)",
        raw as f64 / stored.max(1) as f64
    );
    println!("avg reads/long list {:.2}", d.avg_reads_per_long_list());
    println!("long utilization    {:.2}", d.utilization(conf.block_postings));
    let (free, total) = ix
        .array()
        .per_disk_usage()
        .iter()
        .fold((0u64, 0u64), |(f, t), &(df, dt)| (f + df, t + dt));
    println!("disk usage          {} / {} blocks", total - free, total);
    match ix.cache_stats() {
        Some(cs) => {
            println!("block cache         {} blocks budget", cs.budget_blocks);
            println!("cache hit rate      {:.2}", cs.hit_rate());
            println!(
                "cache hits/misses   {} / {} ({} evictions, {} invalidations)",
                cs.hits, cs.misses, cs.evictions, cs.invalidations
            );
            println!("cache resident      {} B", cs.resident_bytes);
        }
        None => println!("block cache         off"),
    }
    if metrics {
        publish_index_gauges(&engine, &conf);
        println!();
        print!("{}", invidx::obs::snapshot().to_prometheus());
    }
    Ok(())
}

/// Publish the opened index's state into the metric registry as gauges, so
/// the rendered registry describes the on-disk index and not just whatever
/// counters this process happened to touch.
fn publish_index_gauges(engine: &Engine, conf: &Conf) {
    use invidx::obs::gauge;
    let ix = engine.core_index();
    let d = ix.directory();
    gauge!("index_documents").set(engine.total_docs() as i64);
    gauge!("index_vocabulary").set(engine.vocabulary_size() as i64);
    gauge!("index_batches_flushed").set(ix.batches() as i64);
    gauge!("index_short_words").set(ix.buckets().total_words() as i64);
    gauge!("index_short_postings").set(ix.buckets().total_postings() as i64);
    gauge!("index_bucket_units").set(ix.buckets().total_units() as i64);
    gauge!("index_long_words").set(d.num_words() as i64);
    gauge!("index_long_postings").set(d.total_postings() as i64);
    gauge!("index_long_chunks").set(d.total_chunks() as i64);
    gauge!("index_long_blocks").set(d.total_blocks() as i64);
    gauge!("index_long_raw_bytes").set((d.total_postings() * 4) as i64);
    gauge!("index_long_stored_bytes").set(d.total_stored_bytes() as i64);
    if let Engine::Durable(e) = engine {
        gauge!("index_wal_bytes").set(e.index().wal_size() as i64);
        gauge!("index_last_checkpoint_batch").set(e.index().last_checkpoint_batch() as i64);
    }
    if let Some(ss) = engine.segment_stats() {
        gauge!("index_segments").set(ss.segments as i64);
        gauge!("index_segment_blocks").set(ss.segment_blocks as i64);
        gauge!("index_segment_postings").set(ss.segment_postings as i64);
        gauge!("index_manifest_generation").set(ss.generation as i64);
    }
    // Utilization is a fraction in (0, 1]: doubling bounds 0.125..1.0.
    invidx::obs::histogram!(
        "index_long_utilization",
        invidx::obs::Buckets::exponential(0.125, 2.0, 4)
    )
    .record(d.utilization(conf.block_postings));
    for (disk, &(free, total)) in ix.array().per_disk_usage().iter().enumerate() {
        let used = invidx::obs::registry()
            .gauge(&invidx::obs::names::per_disk("disk_used_blocks", disk as u16));
        used.set((total - free) as i64);
        let cap = invidx::obs::registry()
            .gauge(&invidx::obs::names::per_disk("disk_total_blocks", disk as u16));
        cap.set(total as i64);
    }
}

/// Render the metric registry for an on-disk index. The gauges reflect the
/// index state; counters cover the work this process performed (directory
/// load, long-list reads when `--read <word>` is given).
fn cmd_metrics(dir: &Path, args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut watch: Option<u64> = None;
    let mut read_words: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--read" => {
                read_words.push(args.get(i + 1).ok_or("--read needs a word")?.clone());
                i += 2;
            }
            "--watch" => {
                let secs: u64 = args
                    .get(i + 1)
                    .ok_or("--watch needs a period in seconds")?
                    .parse()
                    .map_err(|e| format!("watch: {e}"))?;
                if secs == 0 {
                    return Err("--watch period must be at least 1 second".into());
                }
                watch = Some(secs);
                i += 2;
            }
            other => return Err(format!("unknown metrics option {other:?}")),
        }
    }
    loop {
        // Reopen per tick: another process (an `add`, the server) may have
        // moved the on-disk index since the last render.
        let (engine, conf) = open_engine(dir)?;
        // Optional read traffic so counter/histogram metrics show live
        // values.
        for w in &read_words {
            let hits = engine.boolean_str(w).map_err(|e| format!("read {w:?}: {e}"))?;
            invidx::obs::log_progress("invidx", &format!("{w:?}: {} match(es)", hits.docs().len()));
        }
        publish_index_gauges(&engine, &conf);
        let snap = invidx::obs::snapshot();
        let Some(secs) = watch else {
            if json {
                println!("{}", snap.to_json());
            } else {
                print!("{}", snap.to_prometheus());
            }
            return Ok(());
        };
        // Watch mode: clear the terminal and redraw, `watch(1)`-style.
        print!("\x1b[2J\x1b[H");
        println!("# invidx metrics {} — every {secs}s, ctrl-c to stop", dir.display());
        if json {
            println!("{}", snap.to_json());
        } else {
            print!("{}", snap.to_prometheus());
        }
        use std::io::Write as _;
        std::io::stdout().flush().map_err(|e| e.to_string())?;
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }
}

/// One poll of a running server: scrape the `METRICS` and `STATS` verbs
/// over an existing connection.
fn poll_server(
    mut stream: &std::net::TcpStream,
    reader: &mut std::io::BufReader<std::net::TcpStream>,
) -> Result<(u64, invidx::obs::Snapshot, invidx::serve::ServeStats), String> {
    use std::io::{BufRead, Write};
    writeln!(stream, "METRICS").map_err(|e| format!("send METRICS: {e}"))?;
    let mut header = String::new();
    reader.read_line(&mut header).map_err(|e| format!("read METRICS header: {e}"))?;
    // `OK <epoch> METRICS <nlines>` then nlines of Prometheus text.
    let mut parts = header.split_whitespace();
    let (Some("OK"), Some(epoch), Some("METRICS"), Some(n)) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(format!("bad METRICS header: {header:?}"));
    };
    let epoch: u64 = epoch.parse().map_err(|e| format!("METRICS epoch: {e}"))?;
    let n: usize = n.parse().map_err(|e| format!("METRICS line count: {e}"))?;
    let mut text = String::new();
    for _ in 0..n {
        reader.read_line(&mut text).map_err(|e| format!("read METRICS body: {e}"))?;
    }
    let snap = invidx::obs::parse_prometheus(&text)
        .map_err(|e| format!("malformed exposition from server: {e}"))?;
    writeln!(stream, "STATS").map_err(|e| format!("send STATS: {e}"))?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("read STATS: {e}"))?;
    let resp = invidx::serve::parse_response(&line)
        .map_err(|e| format!("parse STATS: {e}"))?
        .map_err(|e| format!("STATS failed: {e}"))?;
    let invidx::serve::Payload::Stats(stats) = resp.payload else {
        return Err(format!("STATS returned a non-stats payload: {line:?}"));
    };
    Ok((epoch, snap, stats))
}

/// Live dashboard over a running `invidx serve`: polls `METRICS` + `STATS`
/// and renders qps, tail latency, cache hit rates, shedding, SLO budget,
/// and WAL lag. `--once` prints a single frame (scripts, CI smoke tests).
fn cmd_top(addr: &str, args: &[String]) -> Result<(), String> {
    let mut interval = 2u64;
    let mut once = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--interval" => {
                interval = args
                    .get(i + 1)
                    .ok_or("--interval needs seconds")?
                    .parse()
                    .map_err(|e| format!("interval: {e}"))?;
                if interval == 0 {
                    return Err("--interval must be at least 1 second".into());
                }
                i += 2;
            }
            "--once" => {
                once = true;
                i += 1;
            }
            other => return Err(format!("unknown top option {other:?}")),
        }
    }
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = std::io::BufReader::new(
        stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
    );
    let gauge = |snap: &invidx::obs::Snapshot, name: &str| -> i64 {
        snap.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    };
    let counter = |snap: &invidx::obs::Snapshot, name: &str| -> u64 {
        snap.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    };
    let rate = |hits: u64, misses: u64| -> f64 {
        let total = hits + misses;
        if total == 0 { 0.0 } else { hits as f64 / total as f64 }
    };
    let mut prev: Option<(std::time::Instant, u64)> = None;
    loop {
        let (epoch, snap, stats) = poll_server(&stream, &mut reader)?;
        let now = std::time::Instant::now();
        let queries = counter(&snap, "serve_queries_total");
        let qps = match prev {
            Some((t, q)) if now > t => (queries.saturating_sub(q)) as f64
                / now.duration_since(t).as_secs_f64(),
            _ => 0.0,
        };
        prev = Some((now, queries));
        if !once {
            print!("\x1b[2J\x1b[H");
        }
        println!("invidx top — {addr} (every {interval}s, ctrl-c to stop)");
        println!();
        println!("epoch               {epoch}");
        println!("documents           {}", stats.docs);
        println!("qps                 {qps:.1}");
        println!(
            "latency p50/p95/p99 {:.2} / {:.2} / {:.2} ms",
            gauge(&snap, "serve_latency_p50_us") as f64 / 1e3,
            gauge(&snap, "serve_latency_p95_us") as f64 / 1e3,
            gauge(&snap, "serve_latency_p99_us") as f64 / 1e3,
        );
        println!("queue depth         {}", gauge(&snap, "serve_queue_depth"));
        println!(
            "result cache        {:.1}% hit ({} hits / {} misses, {} evictions, {} stale)",
            rate(stats.cache_hits, stats.cache_misses) * 100.0,
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_evictions,
            stats.cache_stale_drops,
        );
        println!(
            "block cache         {:.1}% hit ({} hits / {} misses, {} evictions, {} B resident)",
            rate(stats.block_cache_hits, stats.block_cache_misses) * 100.0,
            stats.block_cache_hits,
            stats.block_cache_misses,
            stats.block_cache_evictions,
            gauge(&snap, "block_cache_bytes_resident"),
        );
        println!(
            "shed / timeouts     {} / {} ({:.2}% shed)",
            stats.shed,
            stats.timeouts,
            rate(stats.shed, stats.queries) * 100.0,
        );
        println!(
            "slo                 {:.1}% budget left, burn {:.2}x ({} violations / {} requests)",
            gauge(&snap, "slo_error_budget_remaining_ppm") as f64 / 1e4,
            gauge(&snap, "slo_burn_rate_x1000") as f64 / 1e3,
            counter(&snap, "slo_violations_total"),
            counter(&snap, "slo_requests_total"),
        );
        println!(
            "tracing             {} traces, {} slow queries logged",
            counter(&snap, "serve_traces_total"),
            counter(&snap, "serve_slow_queries_total"),
        );
        println!("wal lag             {} B", gauge(&snap, "index_wal_bytes"));
        if once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(interval));
    }
}

fn print_docs(docs: &[DocId]) {
    if docs.is_empty() {
        println!("no matches");
        return;
    }
    println!(
        "{} match(es): {}",
        docs.len(),
        docs.iter().map(|d| d.0.to_string()).collect::<Vec<_>>().join(", ")
    );
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  invidx init <dir> [--policy P] [--disks N] [--blocks N] [--block-size N] [--legacy]\n               \
         [--engine inplace|segmented] [--l0-budget BYTES] [--fanout N] [--codec plain|varint|bitpacked]\n  \
         invidx add <dir> [--ingest-threads N] <file...>\n  \
         invidx search <dir> <boolean query | --stdin>\n  \
         invidx phrase <dir> <phrase>\n  invidx near <dir> <w1> <w2> <window>\n  \
         invidx like <dir> <text> [k]\n  invidx rank <dir> <text> [k]\n  \
         invidx show <dir> <doc id>\n  \
         invidx compact <dir>\n  invidx checkpoint <dir>\n  invidx recover <dir>\n  \
         invidx stats <dir> [--metrics]\n  \
         invidx metrics <dir> [--json] [--read <word>]... [--watch <secs>]\n  \
         invidx serve <dir> [--addr H:P] [--readers N] [--high-water N] [--deadline-ms N] [--cache N]\n               \
         [--trace-sample N] [--slow-ms N] [--slo-target-ms N] [--slo-objective-ppm N] [--events <file>]\n  \
         invidx shard-init <dir> --shards N [--partition range|hash] [--chunk N] [--policy P] [--disks N]\n               \
         [--blocks N] [--block-size N] [--codec plain|varint|bitpacked]\n  \
         invidx route <dir> [--addr H:P] [--replicas N] [--deadline-ms N] [--hedge-ms N] [--attempts N]\n               \
         [--poll-ms N] [--cache N]\n  \
         invidx top <addr> [--interval <secs>] [--once]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let Some((dir, rest)) = rest.split_first() else {
        return usage();
    };
    let dir = PathBuf::from(dir);
    let result = match (cmd.as_str(), rest) {
        ("init", opts) => cmd_init(&dir, opts),
        ("add", files) => cmd_add(&dir, files),
        ("search", [flag]) if flag == "--stdin" => cmd_search_stdin(&dir),
        ("search", [q]) => cmd_search(&dir, q),
        ("phrase", [p]) => cmd_phrase(&dir, p),
        ("near", [a, b, w]) => cmd_near(&dir, a, b, w),
        ("like", [t]) => cmd_like(&dir, t, None),
        ("like", [t, k]) => cmd_like(&dir, t, Some(k)),
        ("rank", [t]) => cmd_rank(&dir, t, None),
        ("rank", [t, k]) => cmd_rank(&dir, t, Some(k)),
        ("show", [id]) => cmd_show(&dir, id),
        ("compact", []) => cmd_compact(&dir),
        ("checkpoint", []) => cmd_checkpoint(&dir),
        ("recover", []) => cmd_recover(&dir),
        ("stats", []) => cmd_stats(&dir, false),
        ("stats", [flag]) if flag == "--metrics" => cmd_stats(&dir, true),
        ("metrics", opts) => cmd_metrics(&dir, opts),
        ("serve", opts) => cmd_serve(&dir, opts),
        ("shard-init", opts) => cmd_shard_init(&dir, opts),
        ("route", opts) => cmd_route(&dir, opts),
        // For `top` the positional argument is a host:port, not a dir.
        ("top", opts) => cmd_top(&dir.to_string_lossy(), opts),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
