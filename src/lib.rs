//! # invidx — umbrella crate
//!
//! Re-exports the whole workspace implementing **"Incremental Updates of
//! Inverted Lists for Text Document Retrieval"** (Tomasic, Garcia-Molina &
//! Shoens, SIGMOD 1994): the dual-structure inverted index, its disk and
//! corpus substrates, the IR engine built on top, and the paper's
//! experiment pipeline.
//!
//! Start with [`core::index::DualIndex`] (the paper's contribution), the
//! `examples/` directory, or README.md.

pub use invidx_btree as btree;
pub use invidx_core as core;
pub use invidx_corpus as corpus;
pub use invidx_disk as disk;
pub use invidx_durable as durable;
pub use invidx_ir as ir;
pub use invidx_obs as obs;
pub use invidx_router as router;
pub use invidx_segment as segment;
pub use invidx_serve as serve;
pub use invidx_sim as sim;
