//! End-to-end integration: every allocation policy must produce an index
//! with *identical query results* — policies trade update time, query
//! cost, and space, never correctness. Verified against an in-memory
//! reference model over a generated corpus.

use invidx::core::index::{DualIndex, IndexConfig};
use invidx::core::policy::{Alloc, Limit, Policy, Style};
use invidx::core::types::{DocId, WordId};
use invidx::corpus::{CorpusGenerator, CorpusParams};
use invidx::disk::sparse_array;
use std::collections::{BTreeMap, BTreeSet};

fn corpus() -> CorpusParams {
    CorpusParams {
        days: 6,
        docs_per_weekday: 60,
        vocab_ranks: 10_000,
        tokens_per_doc_median: 50.0,
        min_doc_chars: 150,
        interrupted_day: None,
        ..CorpusParams::default()
    }
}

fn all_policies() -> Vec<Policy> {
    let mut v = Policy::style_comparison_set();
    v.extend([
        Policy::balanced(),
        Policy::query_optimized(),
        Policy::new(Style::New, Limit::Fits, Alloc::Block { k: 3 }),
        Policy::new(Style::New, Limit::Fits, Alloc::Constant { k: 37 }),
        Policy::new(Style::Whole, Limit::Fits, Alloc::Block { k: 2 }),
        Policy::new(Style::Fill { extent_blocks: 2 }, Limit::Fits, Alloc::Constant { k: 0 }),
    ]);
    v
}

/// Build the reference model: word -> sorted doc ids.
fn reference() -> BTreeMap<u64, Vec<u32>> {
    let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for day in CorpusGenerator::new(corpus()) {
        for doc in &day.docs {
            for &r in &doc.word_ranks {
                model.entry(r).or_default().push(doc.id + 1);
            }
        }
    }
    model
}

fn build(policy: Policy) -> DualIndex {
    let array = sparse_array(3, 500_000, 512);
    let config = IndexConfig::builder()
        .num_buckets(64)
        .bucket_capacity_units(120)
        .block_postings(25)
        .policy(policy)
        .materialize_buckets(false)
        .build()
        .expect("valid config");
    let mut index = DualIndex::create(array, config).expect("create");
    for day in CorpusGenerator::new(corpus()) {
        for doc in &day.docs {
            index
                .insert_document(DocId(doc.id + 1), doc.word_ranks.iter().map(|&r| WordId(r)))
                .expect("insert");
        }
        index.flush_batch().expect("flush");
    }
    index
}

#[test]
fn every_policy_answers_every_query_identically() {
    let model = reference();
    assert!(model.len() > 1_000, "corpus should have a real vocabulary");
    // Sample words across the frequency spectrum: the most frequent, some
    // mid-range, some singletons.
    let mut by_freq: Vec<(&u64, usize)> = model.iter().map(|(w, d)| (w, d.len())).collect();
    by_freq.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let samples: Vec<u64> = by_freq
        .iter()
        .step_by((by_freq.len() / 60).max(1))
        .map(|&(w, _)| *w)
        .collect();

    for policy in all_policies() {
        let index = build(policy);
        for &w in &samples {
            let got: Vec<u32> =
                index.postings(WordId(w)).expect("query").docs().iter().map(|d| d.0).collect();
            assert_eq!(&got, model.get(&w).expect("sampled from model"), "word {w} under {policy}");
        }
        // A word that never occurred.
        assert!(index.postings(WordId(9_999_999)).expect("query").is_empty());
    }
}

#[test]
fn no_word_is_ever_in_both_structures() {
    for policy in [Policy::update_optimized(), Policy::query_optimized()] {
        let index = build(policy);
        let short: BTreeSet<u64> = index.buckets().iter().map(|(w, _)| w.0).collect();
        let long: BTreeSet<u64> = index.directory().iter().map(|(w, _)| w.0).collect();
        assert!(short.is_disjoint(&long), "overlap under {policy}");
        assert!(!long.is_empty(), "expected some long lists under {policy}");
    }
}

#[test]
fn postings_are_conserved_across_structures() {
    let model = reference();
    let total: u64 = model.values().map(|v| v.len() as u64).sum();
    for policy in [Policy::balanced(), Policy::update_optimized()] {
        let index = build(policy);
        let stored = index.buckets().total_postings() + index.directory().total_postings();
        assert_eq!(stored, total, "posting conservation under {policy}");
    }
}

#[test]
fn deletion_is_policy_independent() {
    let model = reference();
    let victim_docs: Vec<u32> = (1..200).step_by(7).collect();
    let mut expected: BTreeMap<u64, Vec<u32>> = model.clone();
    for docs in expected.values_mut() {
        docs.retain(|d| !victim_docs.contains(d));
    }
    for policy in [Policy::update_optimized(), Policy::query_optimized()] {
        let mut index = build(policy);
        for &d in &victim_docs {
            index.delete_document(DocId(d));
        }
        index.sweep().expect("sweep");
        let mut checked = 0;
        for (&w, docs) in expected.iter().take(300) {
            let got: Vec<u32> =
                index.postings(WordId(w)).expect("query").docs().iter().map(|d| d.0).collect();
            assert_eq!(&got, docs, "word {w} after sweep under {policy}");
            checked += 1;
        }
        assert!(checked > 100);
    }
}
