//! Drives the `invidx` binary end to end: init → add → stats/metrics all
//! report a consistent story, the Prometheus exposition round-trips
//! through the parser, and `invidx serve` + `invidx top --once` make one
//! live dashboard frame from the METRICS/STATS verbs.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_invidx");

/// Unique scratch dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("invidx-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the serve child on drop so a failing assert can't leak it.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn run(args: &[&str]) -> String {
    let out = Command::new(BIN).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "invidx {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn stats_metrics_and_top_agree_end_to_end() {
    let scratch = Scratch::new("stats");
    let index = scratch.path().join("ix");
    let dir = index.to_str().unwrap();
    run(&["init", dir, "--disks", "2", "--blocks", "4000", "--cache-blocks", "16"]);
    let doc1 = scratch.path().join("doc1.txt");
    let doc2 = scratch.path().join("doc2.txt");
    std::fs::write(&doc1, "the quick brown fox jumps").unwrap();
    std::fs::write(&doc2, "the lazy dog sleeps all day").unwrap();
    run(&["add", dir, doc1.to_str().unwrap(), doc2.to_str().unwrap()]);

    // `stats --metrics` appends a Prometheus exposition after a blank
    // line; it must parse, and its gauges must match the human-readable
    // stats above it.
    let stats = run(&["stats", dir, "--metrics"]);
    assert!(stats.contains("documents           2"), "{stats}");
    let prom = stats.split_once("\n\n").expect("blank line before exposition").1;
    let snap = invidx::obs::parse_prometheus(prom).unwrap();
    let gauge = |name: &str| {
        snap.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    };
    assert_eq!(gauge("index_documents"), Some(2));
    assert_eq!(gauge("index_batches_flushed"), Some(1));

    // `metrics` renders the same registry standalone, with the migrated
    // exponential utilization buckets.
    let metrics = run(&["metrics", dir]);
    let snap = invidx::obs::parse_prometheus(&metrics).unwrap();
    assert!(snap.gauges.iter().any(|(n, v)| n == "index_documents" && *v == 2));
    let util = snap
        .histograms
        .iter()
        .find(|h| h.name == "index_long_utilization")
        .expect("utilization histogram");
    let bounds: Vec<f64> =
        util.buckets.iter().map(|&(le, _)| le).filter(|le| le.is_finite()).collect();
    assert_eq!(bounds, vec![0.125, 0.25, 0.5, 1.0], "Buckets::exponential(0.125, 2, 4)");

    // Serve the index with tracing on, drive a query, and render one
    // `invidx top` frame from the telemetry verbs.
    let mut child = KillOnDrop(
        Command::new(BIN)
            .args(["serve", dir, "--addr", "127.0.0.1:0", "--trace-sample", "1",
                   "--slow-ms", "1000"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap(),
    );
    let stdout = child.0.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("server exited before listening").unwrap();
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };
    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for req in ["QUERY fox", "QUERY dog"] {
        writeln!(&stream, "{req}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK "), "{req} failed: {reply}");
    }

    let top = run(&["top", &addr, "--once"]);
    assert!(top.contains("documents           2"), "{top}");
    assert!(top.contains("latency p50/p95/p99"), "{top}");
    assert!(top.contains("slo "), "{top}");
    assert!(top.contains("wal lag"), "{top}");
    // The two queries are visible in the frame's result-cache line.
    assert!(top.contains("result cache"), "{top}");
}
