//! IR engine against brute force, on generated corpus documents: boolean
//! queries, proximity, phrase, and more-like-this must agree with naive
//! scans over the rendered text.

use invidx::core::index::IndexConfig;
use invidx::core::policy::Policy;
use invidx::corpus::doc::{render, CorpusGenerator, CorpusParams};
use invidx::corpus::lexer;
use invidx::disk::sparse_array;
use invidx::ir::SearchEngine;
use std::collections::BTreeSet;

fn corpus_texts() -> Vec<String> {
    let params = CorpusParams {
        days: 2,
        docs_per_weekday: 50,
        vocab_ranks: 3_000,
        tokens_per_doc_median: 40.0,
        min_doc_chars: 150,
        interrupted_day: None,
        ..CorpusParams::default()
    };
    CorpusGenerator::new(params)
        .flat_map(|d| d.docs.into_iter())
        .map(|d| render(&d))
        .collect()
}

fn build_engine(texts: &[String]) -> SearchEngine {
    let array = sparse_array(2, 500_000, 512);
    let config = IndexConfig::builder()
        .num_buckets(64)
        .bucket_capacity_units(150)
        .block_postings(25)
        .policy(Policy::query_optimized())
        .materialize_buckets(false)
        .build()
        .expect("valid config");
    let mut engine = SearchEngine::create(array, config).expect("engine");
    for (i, t) in texts.iter().enumerate() {
        engine.add_document(t).expect("add");
        if i % 40 == 39 {
            engine.flush().expect("flush");
        }
    }
    engine.flush().expect("final flush");
    engine
}

/// Documents (1-based ids) whose word set satisfies the predicate.
fn scan<F: Fn(&BTreeSet<String>) -> bool>(texts: &[String], pred: F) -> Vec<u32> {
    texts
        .iter()
        .enumerate()
        .filter(|(_, t)| pred(&lexer::document_words(t).into_iter().collect()))
        .map(|(i, _)| i as u32 + 1)
        .collect()
}

#[test]
fn boolean_queries_match_brute_force() {
    let texts = corpus_texts();
    let engine = build_engine(&texts);
    // Pick real words from the corpus: a frequent one and two rarer ones.
    let mut freq: std::collections::HashMap<String, usize> = Default::default();
    for t in &texts {
        for w in lexer::document_words(t) {
            *freq.entry(w).or_default() += 1;
        }
    }
    let mut by_count: Vec<(&String, &usize)> = freq.iter().collect();
    by_count.sort_by_key(|&(_, c)| std::cmp::Reverse(*c));
    let a = by_count[0].0.clone(); // most frequent
    let b = by_count[by_count.len() / 4].0.clone();
    let c = by_count[by_count.len() / 2].0.clone();

    let cases = vec![
        format!("{a}"),
        format!("{a} and {b}"),
        format!("{a} or {c}"),
        format!("({a} and {b}) or {c}"),
        format!("{a} and not {b}"),
        format!("({a} or {b}) and not ({c} and {a})"),
    ];
    for q in cases {
        let got: Vec<u32> =
            engine.boolean_str(&q).expect("query").docs().iter().map(|d| d.0).collect();
        let (wa, wb, wc) = (a.clone(), b.clone(), c.clone());
        // Re-evaluate with the brute-force scan using a closure per case.
        let brute: Vec<u32> = match q.as_str() {
            s if s == wa => scan(&texts, |set| set.contains(&wa)),
            s if s == format!("{wa} and {wb}") => {
                scan(&texts, |set| set.contains(&wa) && set.contains(&wb))
            }
            s if s == format!("{wa} or {wc}") => {
                scan(&texts, |set| set.contains(&wa) || set.contains(&wc))
            }
            s if s == format!("({wa} and {wb}) or {wc}") => scan(&texts, |set| {
                (set.contains(&wa) && set.contains(&wb)) || set.contains(&wc)
            }),
            s if s == format!("{wa} and not {wb}") => {
                scan(&texts, |set| set.contains(&wa) && !set.contains(&wb))
            }
            _ => scan(&texts, |set| {
                (set.contains(&wa) || set.contains(&wb))
                    && !(set.contains(&wc) && set.contains(&wa))
            }),
        };
        assert_eq!(got, brute, "query {q:?}");
    }
}

#[test]
fn proximity_matches_brute_force() {
    let texts = corpus_texts();
    let engine = build_engine(&texts);
    // Two words that co-occur somewhere.
    let sample = lexer::document_words(&texts[0]);
    let w1 = sample[sample.len() / 3].clone();
    let w2 = sample[2 * sample.len() / 3].clone();
    for window in [1u32, 3, 10, 50] {
        let got: Vec<u32> = engine
            .within(&w1, &w2, window)
            .expect("within")
            .docs()
            .iter()
            .map(|d| d.0)
            .collect();
        let brute: Vec<u32> = texts
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                let toks: Vec<(String, u32)> = lexer::tokenize_with_positions(t);
                let pos = |w: &str| -> Vec<u32> {
                    toks.iter().filter(|(t, _)| t == w).map(|&(_, p)| p).collect()
                };
                let (p1, p2) = (pos(&w1), pos(&w2));
                p1.iter().any(|&a| p2.iter().any(|&b| a.abs_diff(b) <= window))
            })
            .map(|(i, _)| i as u32 + 1)
            .collect();
        assert_eq!(got, brute, "within({w1}, {w2}, {window})");
    }
}

#[test]
fn phrase_matches_brute_force() {
    let texts = corpus_texts();
    let engine = build_engine(&texts);
    // Take a real 3-token phrase from the middle of a document body.
    let toks = lexer::tokenize_document(&texts[3]);
    let phrase = format!("{} {} {}", toks[10], toks[11], toks[12]);
    let got: Vec<u32> =
        engine.phrase(&phrase).expect("phrase").docs().iter().map(|d| d.0).collect();
    let needle = [toks[10].clone(), toks[11].clone(), toks[12].clone()];
    let brute: Vec<u32> = texts
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            let stream = lexer::tokenize_document(t);
            stream.windows(3).any(|w| w == needle)
        })
        .map(|(i, _)| i as u32 + 1)
        .collect();
    assert!(brute.contains(&4), "document 4 must contain its own phrase");
    assert_eq!(got, brute, "phrase {phrase:?}");
}

#[test]
fn more_like_this_favours_the_source_document() {
    let texts = corpus_texts();
    let engine = build_engine(&texts);
    for probe in [0usize, 7, 42] {
        let hits = engine.more_like_this(&texts[probe], 3).expect("mlt");
        assert_eq!(
            hits[0].doc.0,
            probe as u32 + 1,
            "a document must be most similar to itself"
        );
    }
}
