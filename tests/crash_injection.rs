//! Crash injection: a device that fails after a write budget is exhausted,
//! interrupting `flush_batch` at every possible point. Shadow paging must
//! keep the previous batch fully recoverable no matter where the crash
//! lands — in-place long-list tail writes beyond the committed directory
//! counts are invisible, new-generation extents are simply unreferenced.

use invidx::core::index::{DualIndex, IndexConfig};
use invidx::core::policy::Policy;
use invidx::core::types::{DocId, WordId};
use invidx::disk::{BlockDevice, Disk, DiskArray, DiskError, FileDevice, FitStrategy, FreeList};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

const BLOCK: usize = 256;
const BLOCKS: u64 = 50_000;

/// Wraps a device; writes fail once the shared budget reaches zero.
struct FailingDevice {
    inner: FileDevice,
    budget: Arc<AtomicI64>,
}

impl BlockDevice for FailingDevice {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn read(&self, start: u64, buf: &mut [u8]) -> Result<(), DiskError> {
        self.inner.read(start, buf)
    }

    fn write(&mut self, start: u64, data: &[u8]) -> Result<(), DiskError> {
        if self.budget.fetch_sub(1, Ordering::SeqCst) <= 0 {
            return Err(DiskError::Io(std::io::Error::other("injected crash")));
        }
        self.inner.write(start, data)
    }

    fn flush(&mut self) -> Result<(), DiskError> {
        self.inner.flush()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("invidx-crash-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn array(dir: &Path, create: bool, budget: Option<Arc<AtomicI64>>) -> DiskArray {
    let disks = (0..2u16)
        .map(|d| {
            let path = dir.join(format!("disk{d}.bin"));
            let file = if create {
                FileDevice::create(&path, BLOCKS, BLOCK).expect("create")
            } else {
                FileDevice::open(&path, BLOCK).expect("open")
            };
            let device: Box<dyn BlockDevice> = match &budget {
                Some(b) => Box::new(FailingDevice { inner: file, budget: b.clone() }),
                None => Box::new(file),
            };
            Disk { device, alloc: Box::new(FreeList::new(BLOCKS, FitStrategy::FirstFit)) }
        })
        .collect();
    DiskArray::new(disks)
}

fn config(policy: Policy) -> IndexConfig {
    IndexConfig::builder()
        .num_buckets(16)
        .bucket_capacity_units(60)
        .block_postings(20)
        .policy(policy)
        .materialize_buckets(true)
        .build()
        .expect("valid config")
}

fn load_batch(index: &mut DualIndex, range: std::ops::Range<u32>) {
    for d in range {
        let words = (1..=12u64).filter(|w| (d as u64).is_multiple_of(*w)).map(WordId);
        index.insert_document(DocId(d), words).expect("insert");
    }
}

/// Run batch 1 cleanly, then batch 2 with a write budget; return whether
/// batch 2 committed.
fn run_with_budget(dir: &Path, policy: Policy, budget: i64) -> bool {
    {
        let mut index = DualIndex::create(array(dir, true, None), config(policy)).expect("create");
        load_batch(&mut index, 1..60);
        index.flush_batch().expect("first flush");
    }
    // Re-open with failing devices and try batch 2.
    let shared = Arc::new(AtomicI64::new(budget));
    let mut index =
        DualIndex::open(array(dir, false, Some(shared)), config(policy)).expect("open");
    load_batch(&mut index, 60..120);
    index.flush_batch().is_ok()
}

fn verify_recovered(dir: &Path, policy: Policy, committed: bool) {
    let mut index = DualIndex::open(array(dir, false, None), config(policy)).expect("re-open");
    let expected_batches = if committed { 2 } else { 1 };
    assert_eq!(index.batches(), expected_batches);
    let docs = if committed { 119 } else { 59 };
    for w in 1..=12u64 {
        assert_eq!(
            index.postings(WordId(w)).expect("query").len(),
            (docs / w) as usize,
            "word {w} after crash (committed={committed})"
        );
    }
    // The index continues to work after recovery.
    load_batch(&mut index, 120..150);
    index.flush_batch().expect("post-recovery flush");
    assert_eq!(index.postings(WordId(1)).expect("query").len(), docs as usize + 30);
}

#[test]
fn crash_at_every_write_budget_recovers_cleanly() {
    for policy in [Policy::update_optimized(), Policy::query_optimized(), Policy::balanced()] {
        // Budget 0 crashes on the very first write; large budgets let the
        // batch commit. Sweep through the interesting window.
        for budget in [0i64, 1, 2, 3, 5, 8, 13, 21, 34, 1000] {
            let dir = tmp_dir(&format!("{}-{budget}", policy.label().replace(' ', "_")));
            let committed = run_with_budget(&dir, policy, budget);
            verify_recovered(&dir, policy, committed);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
