//! Cross-validation of the two execution paths: the paper's staged
//! pipeline (invert → buckets → disks) must produce exactly the I/O trace
//! of the integrated `DualIndex`, for every policy; the exercise stage
//! must be deterministic; and the Figure 6 trace text format must round
//! trip whole experiment traces.

use invidx::core::policy::{Alloc, Limit, Policy, Style};
use invidx::disk::{exercise, IoTrace};
use invidx::sim::{run_dual_index, Experiment, SimParams};

fn params() -> SimParams {
    SimParams::tiny()
}

fn policies() -> Vec<Policy> {
    let mut v = Policy::style_comparison_set();
    v.extend([
        Policy::balanced(),
        Policy::query_optimized(),
        Policy::new(Style::New, Limit::Fits, Alloc::Block { k: 2 }),
        Policy::new(Style::Whole, Limit::Fits, Alloc::Constant { k: 40 }),
    ]);
    v
}

#[test]
fn staged_pipeline_matches_integrated_index_for_all_policies() {
    let params = params();
    let exp = Experiment::prepare(params.clone()).expect("prepare");
    for policy in policies() {
        let staged = exp.run_policy(policy).expect("staged");
        let (_, integrated) = run_dual_index(&params, policy, &exp.batches).expect("integrated");
        assert_eq!(staged.disks.trace.ops.len(), integrated.ops.len(), "op count under {policy}");
        assert_eq!(staged.disks.trace, integrated, "trace under {policy}");
    }
}

#[test]
fn exercise_stage_is_deterministic() {
    let params = params();
    let exp = Experiment::prepare(params.clone()).expect("prepare");
    let run = exp.run_policy(Policy::balanced()).expect("run");
    let a = exercise(&run.disks.trace, &params.exercise_config());
    let b = exercise(&run.disks.trace, &params.exercise_config());
    assert_eq!(a.batch_seconds, b.batch_seconds);
    assert_eq!(a.phys_requests, b.phys_requests);
}

#[test]
fn trace_text_round_trips_whole_experiments() {
    let params = params();
    let exp = Experiment::prepare(params.clone()).expect("prepare");
    let run = exp.run_policy(Policy::query_optimized()).expect("run");
    let text = run.disks.trace.to_text();
    let parsed = IoTrace::from_text(&text).expect("parse");
    assert_eq!(parsed, run.disks.trace);
    // And timing the parsed trace gives identical results.
    let a = exercise(&run.disks.trace, &params.exercise_config());
    let b = exercise(&parsed, &params.exercise_config());
    assert_eq!(a.cumulative_seconds, b.cumulative_seconds);
}

#[test]
fn coalescing_reduces_requests_most_for_update_optimized_policy() {
    // The paper's explanation of Figure 13: "since for long list updates
    // this policy only writes sequentially to the disk, all the write
    // operations in an update can be coalesced" — new 0 must benefit far
    // more from coalescing than whole 0.
    let params = params();
    let exp = Experiment::prepare(params.clone()).expect("prepare");
    let ratio = |policy| {
        let run = exp.run_policy(policy).expect("run");
        let logical: u64 = run.exercise.logical_ops.iter().sum();
        let physical: u64 = run.exercise.phys_requests.iter().sum();
        physical as f64 / logical as f64
    };
    let new0 = ratio(Policy::update_optimized());
    let whole0 = ratio(Policy::new(Style::Whole, Limit::Never, Alloc::Constant { k: 0 }));
    assert!(
        new0 < whole0,
        "new 0 should coalesce better: {new0:.3} vs whole 0 {whole0:.3}"
    );
}

#[test]
fn more_disks_do_not_change_logical_io_but_cut_time() {
    let base = params();
    let exp = Experiment::prepare(base.clone()).expect("prepare");
    let few = exp.run_policy(Policy::balanced()).expect("few");
    let mut many_params = base.clone();
    many_params.disks = base.disks * 2;
    let many_out = invidx::sim::compute_disks(
        &many_params,
        Policy::balanced(),
        &exp.buckets.long_updates,
    )
    .expect("disks");
    let many_time = exercise(&many_out.trace, &many_params.exercise_config());
    // Long-list logical ops are identical — disk assignment changes where
    // chunks land, not how many operations the policy performs. (Bucket
    // writes scale with the disk count: one stripe per disk.)
    let long_ops = |t: &invidx::disk::IoTrace| {
        t.count(|op| matches!(op.payload, invidx::disk::Payload::LongList { .. }))
    };
    assert_eq!(long_ops(&few.disks.trace), long_ops(&many_out.trace));
    // ...but wall time falls substantially with parallel disks.
    assert!(many_time.total_seconds() < 0.8 * few.exercise.total_seconds());
}
