//! Crash-recovery integration: the batch boundary is the durable recovery
//! point. Build on real files, "crash" (drop), re-open, verify, continue.

use invidx::core::index::{DualIndex, IndexConfig};
use invidx::core::policy::Policy;
use invidx::core::types::{DocId, WordId};
use invidx::corpus::{CorpusGenerator, CorpusParams};
use invidx::disk::{Disk, DiskArray, FileDevice, FitStrategy, FreeList};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const BLOCK: usize = 512;
const BLOCKS: u64 = 100_000;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("invidx-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn file_array(dir: &Path, n: u16, create: bool) -> DiskArray {
    let disks = (0..n)
        .map(|d| {
            let path = dir.join(format!("disk{d}.bin"));
            let device: Box<dyn invidx::disk::BlockDevice> = if create {
                Box::new(FileDevice::create(&path, BLOCKS, BLOCK).expect("create"))
            } else {
                Box::new(FileDevice::open(&path, BLOCK).expect("open"))
            };
            Disk { device, alloc: Box::new(FreeList::new(BLOCKS, FitStrategy::FirstFit)) }
        })
        .collect();
    DiskArray::new(disks)
}

fn config(policy: Policy) -> IndexConfig {
    IndexConfig::builder()
        .num_buckets(64)
        .bucket_capacity_units(100)
        .block_postings(20)
        .policy(policy)
        .materialize_buckets(true)
        .build()
        .expect("valid config")
}

fn corpus() -> CorpusParams {
    CorpusParams {
        days: 6,
        docs_per_weekday: 40,
        vocab_ranks: 5_000,
        tokens_per_doc_median: 40.0,
        min_doc_chars: 120,
        interrupted_day: None,
        ..CorpusParams::default()
    }
}

#[test]
fn recovery_preserves_all_flushed_state_under_both_extreme_policies() {
    for (tag, policy) in
        [("upd", Policy::update_optimized()), ("qry", Policy::query_optimized())]
    {
        let dir = tmp_dir(tag);
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        {
            let mut index =
                DualIndex::create(file_array(&dir, 2, true), config(policy)).expect("create");
            for day in CorpusGenerator::new(corpus()) {
                for doc in &day.docs {
                    index
                        .insert_document(
                            DocId(doc.id + 1),
                            doc.word_ranks.iter().map(|&r| WordId(r)),
                        )
                        .expect("insert");
                    if day.day < 4 {
                        for &r in &doc.word_ranks {
                            model.entry(r).or_default().push(doc.id + 1);
                        }
                    }
                }
                if day.day < 4 {
                    index.flush_batch().expect("flush");
                }
                // Days 4-5 stay unflushed: they must NOT survive the crash.
            }
        } // crash

        let index =
            DualIndex::open(file_array(&dir, 2, false), config(policy)).expect("open");
        assert_eq!(index.batches(), 4);
        let mut checked = 0usize;
        for (&w, docs) in model.iter().step_by(17) {
            let got: Vec<u32> =
                index.postings(WordId(w)).expect("query").docs().iter().map(|d| d.0).collect();
            assert_eq!(&got, docs, "word {w} after recovery ({tag})");
            checked += 1;
        }
        assert!(checked > 50);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn index_continues_correctly_after_recovery() {
    let dir = tmp_dir("continue");
    let policy = Policy::balanced();
    {
        let mut index = DualIndex::create(file_array(&dir, 2, true), config(policy)).expect("create");
        for d in 1..=100u32 {
            index.insert_document(DocId(d), (1..=15).map(WordId)).expect("insert");
        }
        index.flush_batch().expect("flush");
    }
    let mut index = DualIndex::open(file_array(&dir, 2, false), config(policy)).expect("open");
    // New documents must continue past the recovered ceiling.
    assert!(index.insert_document(DocId(100), [WordId(1)]).is_err());
    for d in 101..=200u32 {
        index.insert_document(DocId(d), (1..=15).map(WordId)).expect("insert");
    }
    index.flush_batch().expect("flush");
    assert_eq!(index.postings(WordId(1)).expect("query").len(), 200);

    // A second crash/recovery cycle still works (shadow generations were
    // freed and reallocated correctly).
    drop(index);
    let index = DualIndex::open(file_array(&dir, 2, false), config(policy)).expect("open");
    assert_eq!(index.batches(), 2);
    assert_eq!(index.postings(WordId(15)).expect("query").len(), 200);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn free_space_is_stable_across_recovery_cycles() {
    // Re-opening must reconstruct the allocators exactly: repeated
    // open/flush cycles with identical workloads must not leak blocks.
    let dir = tmp_dir("leak");
    let policy = Policy::query_optimized();
    let mut free_after: Vec<u64> = Vec::new();
    {
        let mut index = DualIndex::create(file_array(&dir, 2, true), config(policy)).expect("create");
        for d in 1..=50u32 {
            index.insert_document(DocId(d), (1..=10).map(WordId)).expect("insert");
        }
        index.flush_batch().expect("flush");
        free_after.push(index.array().free_blocks());
    }
    for cycle in 0..3u32 {
        let mut index = DualIndex::open(file_array(&dir, 2, false), config(policy)).expect("open");
        let base = 51 + cycle * 50;
        for d in base..base + 50 {
            index.insert_document(DocId(d), (1..=10).map(WordId)).expect("insert");
        }
        index.flush_batch().expect("flush");
        free_after.push(index.array().free_blocks());
    }
    // The whole-style index reaches a steady footprint: free space falls
    // only by long-list growth (10 words growing by 50 postings = at most
    // a few dozen blocks per cycle), not by leaked generations.
    for w in free_after.windows(2) {
        assert!(w[0] - w[1] < 100, "free blocks dropped {} -> {}", w[0], w[1]);
    }
    std::fs::remove_dir_all(&dir).ok();
}
