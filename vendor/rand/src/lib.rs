//! Vendored stub of `rand` 0.9.
//!
//! Provides the slice of the rand API this workspace uses: the [`Rng`] and
//! [`SeedableRng`] traits and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — a different algorithm than
//! upstream's ChaCha12, so seeded streams differ from upstream, but all
//! in-tree uses only require determinism and statistical quality.

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `Rng` — the target of
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (inclusive); `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as i128 - low as i128) as u128 + 1;
                // Modulo bias is < 2^-64 for every in-tree span; acceptable.
                let r = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a value in the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + Dec> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in random_range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Decrement helper for exclusive upper bounds.
pub trait Dec {
    /// `self - 1`.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(impl Dec for $t { fn dec(self) -> Self { self - 1 } })*};
}
impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing convenience trait (auto-implemented for every core
/// generator).
pub trait Rng: RngCore {
    /// A uniform draw of `T` (floats in `[0, 1)`, integers over the full
    /// domain).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// A biased coin flip.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (SplitMix64-expanded seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self { s: std::array::from_fn(|_| splitmix64(&mut sm)) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_inclusive_and_exclusive() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(2..=8);
            assert!((2..=8).contains(&v));
            saw_lo |= v == 2;
            saw_hi |= v == 8;
            let w: usize = rng.random_range(0..5);
            assert!(w < 5);
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
