//! Vendored stub of `serde_derive`.
//!
//! The workspace's `serde` stub defines `Serialize`/`Deserialize` as
//! marker traits with no required methods, so the derives only need to
//! emit `impl serde::Serialize for T {}` — no field inspection. Types in
//! this workspace that derive serde traits are all non-generic, which the
//! parser below relies on (it takes the first identifier after
//! `struct`/`enum`/`union`).

use proc_macro::TokenStream;

/// Extract the type name following the `struct`/`enum`/`union` keyword.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        if let proc_macro::TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_kw = true;
            }
        }
    }
    None
}

fn empty_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    let name = type_name(&input).expect("serde derive: no type name found");
    format!("impl {trait_path} for {name} {{}}").parse().expect("generated impl parses")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl("::serde::Serialize", input)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl("::serde::Deserialize", input)
}
