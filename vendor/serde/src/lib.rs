//! Vendored stub of `serde`.
//!
//! Nothing in this workspace serializes through serde (artifacts are TSV,
//! NDJSON and hand-rolled binary formats), but many types carry
//! `#[derive(Serialize, Deserialize)]` so that downstream users could.
//! This stub keeps those derives compiling: the traits are empty markers
//! and the derive macros emit empty impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
