//! Vendored stub of `criterion`: a minimal wall-clock benchmark harness
//! with the criterion API surface this workspace uses.
//!
//! Each benchmark is warmed up briefly, then timed over `sample_size`
//! samples; the median per-iteration time (and derived throughput, when
//! declared) is printed to stdout. There are no HTML reports, no
//! statistical regression analysis, and no `target/criterion` history —
//! just honest median/min/max timings good enough for relative
//! comparisons in this repo.
//!
//! CLI: any positional argument acts as a substring filter on benchmark
//! ids (`cargo bench -p invidx-bench -- zipf`). Criterion-specific flags
//! (`--bench`, `--noplot`, ...) are accepted and ignored.

use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How expensive `iter_batched` setup output is to hold in memory.
/// Accepted for API compatibility; both variants behave identically here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last run, filled by `iter*`.
    result: Option<Stats>,
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    median: Duration,
    min: Duration,
    max: Duration,
}

/// Target wall-clock time for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Warm-up budget per benchmark.
const WARMUP: Duration = Duration::from_millis(60);

impl Bencher {
    /// Benchmark `routine` by running it in timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done.max(1) as f64;
        let iters_per_sample =
            ((SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed() / iters_per_sample as u32);
        }
        self.result = Some(stats_of(&mut samples));
    }

    /// Benchmark `routine` with a fresh un-timed `setup` product per call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Setup cost is excluded by timing each routine call individually;
        // one call per sample keeps expensive setups affordable.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(start.elapsed());
        }
        self.result = Some(stats_of(&mut samples));
    }
}

fn stats_of(samples: &mut [Duration]) -> Stats {
    samples.sort();
    Stats {
        median: samples[samples.len() / 2],
        min: samples[0],
        max: samples[samples.len() - 1],
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.2} {unit}/s")
    }
}

/// Shared measurement settings.
#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    filter: Option<String>,
}

/// The benchmark manager.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { config: Config { sample_size: 20, filter: None } }
    }
}

impl Criterion {
    /// Read the id filter from the command line (positional args filter by
    /// substring; flags are ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--bench" || arg == "--test" {
                continue;
            }
            if let Some(flag) = arg.strip_prefix("--") {
                // Flags with values consume the next argument.
                if matches!(flag, "sample-size" | "warm-up-time" | "measurement-time") {
                    args.next();
                }
                continue;
            }
            self.config.filter = Some(arg);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmark outside of any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        run_one(&self.config, &id, None, f);
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        let mut config = self.criterion.config.clone();
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        run_one(&config, &full, self.throughput, f);
    }

    /// Close the group (report separator).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Config, id: &str, tp: Option<Throughput>, mut f: F) {
    if let Some(filter) = &config.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher { samples: config.sample_size, result: None };
    f(&mut bencher);
    let Some(stats) = bencher.result else {
        println!("{id:<40} (no measurement)");
        return;
    };
    let mut line = format!(
        "{id:<40} median {:>12}  [{} .. {}]",
        format_duration(stats.median),
        format_duration(stats.min),
        format_duration(stats.max),
    );
    if let Some(tp) = tp {
        let secs = stats.median.as_secs_f64();
        if secs > 0.0 {
            let rate = match tp {
                Throughput::Elements(n) => format_rate(n as f64 / secs, "elem"),
                Throughput::Bytes(n) => format_rate(n as f64 / secs, "B"),
            };
            line.push_str(&format!("  {rate}"));
        }
    }
    println!("{line}");
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        c.config.sample_size = 3;
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        let mut hits = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            hits += 1;
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
            hits += 1;
        });
        g.finish();
        assert_eq!(hits, 2);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion::default();
        c.config.filter = Some("nomatch".into());
        let mut ran = false;
        c.bench_function("something_else", |b| {
            b.iter(|| 1);
            ran = true;
        });
        assert!(!ran);
    }
}
