//! Vendored stub of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly. A poisoned std lock
//! (a panic while held) is propagated by panicking, which matches
//! parking_lot's behaviour closely enough for this workspace.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with the parking_lot API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with the parking_lot API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
