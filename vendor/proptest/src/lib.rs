//! Vendored stub of `proptest`: a miniature property-testing framework.
//!
//! Implements the slice of the proptest API this workspace uses:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * strategies for integer ranges, tuples, [`Just`], `any::<T>()`,
//!   collections ([`collection::vec`], `btree_set`, `btree_map`,
//!   `hash_map`) and a regex-subset string generator for `&str` patterns
//!   like `"[a-z]{1,6}"` or `".{0,300}"`;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros.
//!
//! Differences from the real crate: failing inputs are **not shrunk**
//! (the failing case and seed are printed instead), and
//! `proptest-regressions` files are ignored. Case counts and seeds are
//! deterministic per test name; set `PROPTEST_SEED=<n>` to perturb them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.random()
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.0.random_range(lo..=hi)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.random()
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase behind an `Arc` (cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Recursive strategies: `recurse` builds a branch strategy from a
    /// strategy for subtrees; values nest at most `depth` levels. The
    /// `desired_size`/`expected_branch_size` hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(cur.clone()).boxed();
            cur = Union { arms: vec![leaf.clone(), branch] }.boxed();
        }
        cur
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between several strategies (the engine of
/// [`prop_oneof!`]).
pub struct Union<T> {
    /// The arms; one is chosen uniformly per generated value.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from type-erased arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_inclusive(0, self.arms.len() - 1);
        self.arms[i].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ----- primitive strategies -----

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Anything `T` can be.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ----- tuples -----

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ----- regex-subset string strategies -----

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any printable ASCII character except newline.
    Any,
    /// `[...]` — an explicit set of characters.
    Class(Vec<char>),
    /// A literal character.
    Lit(char),
}

#[derive(Debug, Clone)]
struct PatternPart {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parse the supported regex subset: atoms (`.`, `[class]`, literals) each
/// optionally followed by `{n}` or `{min,max}`.
fn parse_pattern(pattern: &str) -> Vec<PatternPart> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        match chars.get(i) {
                            Some('n') => '\n',
                            Some('t') => '\t',
                            Some('r') => '\r',
                            Some(&c) => c,
                            None => panic!("dangling escape in pattern {pattern:?}"),
                        }
                    } else {
                        chars[i]
                    };
                    // A `-` between two chars denotes a range.
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        let hi = chars[i + 2];
                        for r in c..=hi {
                            set.push(r);
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                let c = match chars.get(i) {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(&c) => c,
                    None => panic!("dangling escape in pattern {pattern:?}"),
                };
                i += 1;
                Atom::Lit(c)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("quantifier min"),
                    b.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        parts.push(PatternPart { atom, min, max });
    }
    parts
}

const PRINTABLE: std::ops::RangeInclusive<u8> = 0x20..=0x7e;

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let parts = parse_pattern(self);
        let mut out = String::new();
        for part in &parts {
            let n = rng.usize_inclusive(part.min, part.max);
            for _ in 0..n {
                match &part.atom {
                    Atom::Any => {
                        let lo = *PRINTABLE.start() as usize;
                        let hi = *PRINTABLE.end() as usize;
                        out.push(rng.usize_inclusive(lo, hi) as u8 as char);
                    }
                    Atom::Class(set) => {
                        out.push(set[rng.usize_inclusive(0, set.len() - 1)]);
                    }
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

// ----- collections -----

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet, HashMap};
    use std::hash::Hash;

    /// A size specification: a count or a half-open range of counts.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_inclusive(self.min, self.max)
        }
    }

    /// Strategy for `Vec<T>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set of up to `size` elements (duplicates drawn from `element`
    /// collapse, as in real proptest).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: a narrow element domain may not have
            // `target` distinct values.
            for _ in 0..target * 4 + 8 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A map of up to `size` entries.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..target * 4 + 8 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// Strategy for `HashMap<K, V>`.
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A map of up to `size` entries.
    pub fn hash_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> HashMapStrategy<K, V>
    where
        K::Value: Eq + Hash,
    {
        HashMapStrategy { key, value, size: size.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
    where
        K::Value: Eq + Hash,
    {
        type Value = HashMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = HashMap::new();
            for _ in 0..target * 4 + 8 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

// ----- runner configuration -----

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic per-test seed (perturbed by `PROPTEST_SEED` if set).
pub fn test_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = s.parse::<u64>() {
            h = h.wrapping_add(n);
        }
    }
    h
}

/// Everything a test module typically imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

// ----- macros -----

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert within a property (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::test_seed(stringify!($name));
            let strategies = ($($strat,)+);
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::seed(seed.wrapping_add(case));
                let ($($arg,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                // The closure returns Result so bodies may `return Ok(())`
                // early, as with real proptest.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), ::std::string::String> {
                        $(let $arg = $arg.clone();)+
                        $body
                        Ok(())
                    },
                ));
                match result {
                    Ok(Ok(())) => {}
                    Ok(Err(msg)) => {
                        eprintln!(
                            "proptest failure in `{}` (case {case}, seed {seed}); inputs:",
                            stringify!($name)
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        panic!("{msg}");
                    }
                    Err(panic) => {
                        eprintln!(
                            "proptest failure in `{}` (case {case}, seed {seed}); inputs:",
                            stringify!($name)
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::seed(1);
        let s = (1u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=18).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_uses_all_arms() {
        let mut rng = TestRng::seed(2);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::seed(3);
        for _ in 0..100 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            let t = ".{0,300}".generate(&mut rng);
            assert!(t.len() <= 300);
            assert!(!t.contains('\n'));
            let u = "[a-zA-Z0-9 .,\n]{0,30}".generate(&mut rng);
            assert!(u.chars().all(|c| c.is_ascii_alphanumeric() || " .,\n".contains(c)));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::seed(4);
        for _ in 0..50 {
            let v = collection::vec(0u32..100, 3..7).generate(&mut rng);
            assert!((3..=6).contains(&v.len()));
            let s = collection::btree_set(0u32..4, 2..4).generate(&mut rng);
            assert!(s.len() <= 3);
            let m = collection::btree_map(0u32..100, any::<u8>(), 0..5).generate(&mut rng);
            assert!(m.len() <= 4);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::seed(5);
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0u32..50, b in 0u32..50) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
